"""repro — a reproduction of *Distributed Data Persistency* (MICRO 2021).

The package implements the paper's Distributed Data Persistency (DDP)
framework — the binding of memory persistency models with data
consistency models in a distributed system — together with every
substrate its evaluation needs: a discrete-event simulator, an
RDMA-style network, banked NVM/DRAM devices, key-value stores, YCSB
workloads, transactions, and crash recovery.

Quickstart::

    from repro import Consistency, Persistency, DdpModel, WORKLOADS
    from repro import run_simulation

    model = DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS)
    summary = run_simulation(model, WORKLOADS["A"])
    print(f"{model}: {summary.throughput_ops_per_s / 1e6:.2f} Mops/s")
"""

from repro.analysis import Metrics, Summary, format_figure6_table, format_summary_table
from repro.cluster import Cluster, ClusterConfig, run_simulation
from repro.core import (
    ClientContext,
    Consistency,
    DdpModel,
    Persistency,
    ProtocolConfig,
    ProtocolNode,
    TABLE4_MODELS,
    all_ddp_models,
    analyze,
    analyze_all,
)
from repro.hybrid import HybridCluster
from repro.recovery import RecoveryReplayer, recover_latest, recover_majority
from repro.workload import WORKLOADS, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClientContext",
    "Consistency",
    "DdpModel",
    "HybridCluster",
    "Metrics",
    "RecoveryReplayer",
    "Persistency",
    "ProtocolConfig",
    "ProtocolNode",
    "Summary",
    "TABLE4_MODELS",
    "WORKLOADS",
    "WorkloadSpec",
    "all_ddp_models",
    "analyze",
    "analyze_all",
    "format_figure6_table",
    "format_summary_table",
    "recover_latest",
    "recover_majority",
    "run_simulation",
    "__version__",
]
