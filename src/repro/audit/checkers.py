"""Black-box consistency checkers over recorded client histories.

Each checker judges one consistency model purely from what the clients
observed (:class:`repro.obs.history.History`) — no access to protocol
internals.  The common currency is the *version token*: the Lamport
``(seq, node_id)`` version a write was assigned and a read observed.
Client payload values are not unique, so tokens play the role of
Jepsen's unique write values.

Checker soundness contract
--------------------------

Every checker is an *under-approximation*: it never reports a violation
a correct implementation of its model could produce.  Observations it
cannot attribute unambiguously — reads of versions minted by a pending
(crash-severed) write, of versions with several candidate writers
(post-crash counter rewind), or of versions written by aborted
transaction attempts — are excluded from the strong constraints and
counted in the checker's stats instead of guessed at.

Degraded sessions (a client reconnecting after its node crash-restarted
from its own NVM image — the modeled protocols have no rejoin catch-up
sync) are excluded from cross-session constraints but still participate
in the phantom and durability checks.

The linearizability checker
---------------------------

Wing & Gong search (:mod:`repro.analysis.linearizability`) is
exponential in concurrency width; measured on this simulator a
200-op/16-client history already costs tens of seconds.  Because tokens
are unique per key (duplicates are detected and handled by exclusion),
the audit uses a polynomial formulation instead:

* Group each write ``w`` with the completed reads that observed its
  token into a *cluster*; add a virtual initial-state cluster for reads
  of ``ZERO_VERSION``.
* Per cluster compute ``lo`` = the earliest respond time of any member
  and ``hi`` = the latest invoke time of any member.
* The history is linearizable iff the constraint relation
  ``c1 -> c2  whenever  lo(c1) < hi(c2)`` (plus "initial state first")
  is acyclic.  Each such edge is a real obligation: some member of
  ``c1`` completed before some member of ``c2`` was invoked, which
  forces ``write(c1)`` before ``write(c2)`` in any linearization; and
  conversely a topological order of the clusters yields a legal
  linearization.  The quadratic edge set is encoded in near-linear size
  with a milestone chain over clusters sorted by ``lo``.

On a cycle the involved clusters' operations form the violation
witness; small witnesses are additionally shrunk through the exact
Wing & Gong checker.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.replica import Version, ZERO_VERSION
from repro.obs.history import History, HistoryOpRecord

__all__ = ["CheckResult", "PreparedHistory", "check_no_phantom",
           "check_linearizable", "check_read_enforced",
           "check_transactional", "check_causal", "check_eventual",
           "CONSISTENCY_CHECKERS"]

#: Violations recorded with full detail per check (the rest are counted).
MAX_DETAILS = 16
#: Cycle witnesses at most this large are shrunk via Wing & Gong.
_SHRINK_CAP_OPS = 40
_NEG_INF = float("-inf")


@dataclass
class CheckResult:
    """Outcome of one checker over one history."""

    name: str
    ok: bool = True
    checked: int = 0
    violations: int = 0
    details: List[Dict[str, Any]] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)
    skipped: bool = False
    wall_ms: float = 0.0

    def __bool__(self) -> bool:
        return self.ok

    def violate(self, rule: str, detail: str,
                ops: Tuple[HistoryOpRecord, ...] = ()) -> None:
        self.ok = False
        self.violations += 1
        if len(self.details) < MAX_DETAILS:
            self.details.append({
                "rule": rule, "detail": detail,
                "ops": [op.index for op in ops]})


class PreparedHistory:
    """Shared per-history indexes the checkers work from."""

    def __init__(self, history: History):
        self.history = history
        self.ops = history.ops
        # Transaction attempt outcomes as stamped by the recorder:
        # True committed, False squashed, None unknown (severed).
        self.txn_outcome: Dict[int, Optional[bool]] = {}
        self.completed_reads: List[HistoryOpRecord] = []
        self.completed_writes: List[HistoryOpRecord] = []
        self.pending_ops = 0
        # token (key, version) -> every effective write that carries it.
        self.writes_by_token: Dict[Tuple[Optional[int], Version],
                                   List[HistoryOpRecord]] = {}
        # Keys with a pending write whose version was never learned: a
        # read of an unmatched token on such a key may have observed
        # that write, so unmatched tokens there are not phantoms.
        self.unknown_token_keys: set = set()
        self.committed_scopes: set = set()
        for op in self.ops:
            if not op.ok:
                continue
            if op.txn_id is not None:
                if op.committed is not None:
                    self.txn_outcome[op.txn_id] = op.committed
                else:
                    self.txn_outcome.setdefault(op.txn_id, None)
            if op.respond_us is None:
                self.pending_ops += 1
            if op.op == "write":
                if op.version is None:
                    self.unknown_token_keys.add(op.key)
                else:
                    self.writes_by_token.setdefault(
                        (op.key, tuple(op.version)), []).append(op)
                if op.respond_us is not None:
                    self.completed_writes.append(op)
            elif op.op == "read":
                if op.respond_us is not None:
                    self.completed_reads.append(op)
            elif (op.op == "persist" and op.respond_us is not None
                    and op.committed):
                # Scope ids are client-local counters, so a post-restart
                # session can reuse a completed pre-crash id; qualify by
                # session to keep the stale verdict from leaking.
                self.committed_scopes.add((op.client, op.session,
                                           op.scope_id))
        self.recovered = history.recovered_versions()
        self.recovered_captured = bool(history.recovered)

    def write_effect(self, op: HistoryOpRecord) -> Optional[bool]:
        """Did this write take effect?  True / False / None (unknown)."""
        if op.txn_id is not None:
            return self.txn_outcome.get(op.txn_id)
        return True if op.respond_us is not None else None

    def version_effect(self, key: Optional[int],
                       version: Version) -> Optional[bool]:
        """Effect status of a token: True iff every writer of it took
        effect, False iff every writer was squashed, else None
        (unmatched, pending, or ambiguous)."""
        writers = self.writes_by_token.get((key, version))
        if not writers:
            return None
        effects = [self.write_effect(w) for w in writers]
        if all(e is True for e in effects):
            return True
        if all(e is False for e in effects):
            return False
        return None

    def observation_effect(self, op: HistoryOpRecord) -> Optional[bool]:
        """Effect status of the version a completed read observed
        (reads of the initial state count as committed)."""
        version = tuple(op.version)
        if version == ZERO_VERSION:
            return True
        return self.version_effect(op.key, version)


# ---------------------------------------------------------------------------
# shared: phantom reads
# ---------------------------------------------------------------------------

def check_no_phantom(prep: PreparedHistory) -> CheckResult:
    """Every observed version was produced by some recorded write, and
    not before that write was invoked.  Applies to all 25 models."""
    res = CheckResult("no_phantom")
    skipped = 0
    for op in prep.completed_reads:
        if op.version is None:
            continue
        version = tuple(op.version)
        if version == ZERO_VERSION:
            continue
        res.checked += 1
        writers = prep.writes_by_token.get((op.key, version))
        if not writers:
            if op.key in prep.unknown_token_keys:
                skipped += 1
                continue
            res.violate(
                "phantom-read",
                f"read of key {op.key} observed version {version} that "
                f"no write produced", (op,))
            continue
        if all(w.invoke_us > op.respond_us for w in writers):
            if op.key in prep.unknown_token_keys:
                # A version-unknown pending write on this key may have
                # produced the token before a counter rewind re-issued
                # it; the read is unattributable, not from the future.
                skipped += 1
                continue
            res.violate(
                "future-read",
                f"read of key {op.key} observed version {version} before "
                f"any write of it was invoked", (op, writers[0]))
    res.stats["unattributable_reads"] = skipped
    return res


# ---------------------------------------------------------------------------
# linearizable
# ---------------------------------------------------------------------------

def _cluster_cycle(clusters: List[Tuple[Optional[HistoryOpRecord],
                                        List[HistoryOpRecord]]],
                   ) -> Optional[List[int]]:
    """Cycle-check the cluster constraint graph for one key.

    ``clusters[0]`` is the virtual initial-state cluster (write None).
    Returns the cluster indices on a constraint cycle, or None if the
    graph is acyclic (the sub-history is linearizable).
    """
    count = len(clusters)
    lo: List[float] = []
    hi: List[float] = []
    for index, (write, reads) in enumerate(clusters):
        responds = [r.respond_us for r in reads]
        invokes = [r.invoke_us for r in reads]
        if write is not None:
            responds.append(write.respond_us)
            invokes.append(write.invoke_us)
        # The initial state "completes" before everything.
        lo.append(min(responds) if index else _NEG_INF)
        hi.append(max(invokes, default=_NEG_INF))
    order = sorted(range(count), key=lambda c: (lo[c], c))
    position = [0] * count
    for pos, cluster in enumerate(order):
        position[cluster] = pos
    sorted_lo = [lo[c] for c in order]
    # Nodes: clusters 0..count-1, then milestones count..2*count-1;
    # milestone node count+j-1 covers the first j clusters in lo order.
    total = 2 * count
    adjacency: List[List[int]] = [[] for _ in range(total)]
    predecessors: List[List[int]] = [[] for _ in range(total)]
    indegree = [0] * total

    def edge(src: int, dst: int) -> None:
        adjacency[src].append(dst)
        predecessors[dst].append(src)
        indegree[dst] += 1

    for j in range(1, count + 1):
        edge(order[j - 1], count + j - 1)
        if j > 1:
            edge(count + j - 2, count + j - 1)
    for cluster in range(1, count):
        edge(0, cluster)            # initial state precedes every write
    for cluster in range(count):
        prefix = bisect_left(sorted_lo, hi[cluster])
        if prefix <= 0:
            continue
        pos = position[cluster]
        if pos >= prefix:
            edge(count + prefix - 1, cluster)
        else:
            # The cluster sits inside its own prefix: cover the part
            # before it with a milestone and the (typically tiny)
            # remainder with direct edges.
            if pos > 0:
                edge(count + pos - 1, cluster)
            for j in range(pos + 1, prefix):
                edge(order[j], cluster)
    # Kahn's algorithm; survivors contain a cycle.
    queue = [node for node in range(total) if indegree[node] == 0]
    seen = 0
    while queue:
        node = queue.pop()
        seen += 1
        for nxt in adjacency[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                queue.append(nxt)
    if seen == total:
        return None
    remaining = {node for node in range(total) if indegree[node] > 0}
    # Every survivor keeps a surviving predecessor, so walking backward
    # must close a cycle.
    path: List[int] = []
    index_on_path: Dict[int, int] = {}
    node = min(remaining)
    while node not in index_on_path:
        index_on_path[node] = len(path)
        path.append(node)
        node = next(n for n in predecessors[node] if n in remaining)
    cycle = path[index_on_path[node]:]
    return [n for n in cycle if n < count]


def _shrink_cycle_witness(ops: List[HistoryOpRecord],
                          res: CheckResult) -> List[HistoryOpRecord]:
    """Minimize a small cycle witness with the exact Wing & Gong
    checker; fall back to the full cycle when the search is too big or
    (defensively) disagrees."""
    if len(ops) > _SHRINK_CAP_OPS:
        return ops
    from repro.analysis.linearizability import (HistoryOp,
                                                check_linearizable as _wg)
    max_states = 200_000
    sub = [HistoryOp(op_type=op.op,
                     value=tuple(op.version),
                     invoke=op.invoke_us,
                     respond=op.respond_us) for op in ops]
    result = _wg(sub, initial_value=ZERO_VERSION, max_states=max_states)
    res.stats["shrink_states"] = (res.stats.get("shrink_states", 0)
                                  + result.states_explored)
    if result.ok or result.states_explored >= max_states \
            or not result.witness_indices:
        return ops
    return [ops[i] for i in result.witness_indices]


def check_linearizable(prep: PreparedHistory) -> CheckResult:
    """Per-key (P-compositional) real-time linearizability of the
    healthy sub-history, via the unique-token cluster graph."""
    res = CheckResult("linearizable")
    writes_by_key: Dict[Optional[int], List[HistoryOpRecord]] = \
        defaultdict(list)
    reads_by_key: Dict[Optional[int], List[HistoryOpRecord]] = \
        defaultdict(list)
    excluded = 0
    for op in prep.completed_writes:
        if op.degraded or prep.write_effect(op) is not True:
            excluded += 1
            continue
        writes_by_key[op.key].append(op)
    for op in prep.completed_reads:
        if op.degraded or op.version is None:
            excluded += 1
            continue
        reads_by_key[op.key].append(op)
    keys = sorted(writes_by_key.keys() | reads_by_key.keys(),
                  key=lambda k: (k is None, k))
    for key in keys:
        writes = writes_by_key.get(key, [])
        reads = reads_by_key.get(key, [])
        res.checked += len(writes) + len(reads)
        clusters: List[Tuple[Optional[HistoryOpRecord],
                             List[HistoryOpRecord]]] = [(None, [])]
        cluster_of_token: Dict[Version, int] = {}
        duplicate_tokens: set = set()
        for write in writes:
            token = tuple(write.version)
            if token in cluster_of_token or token in duplicate_tokens:
                # Duplicate token among healthy writes (possible only
                # through a version-counter rewind): both writes stay as
                # unread clusters, their reads are unattributable.
                duplicate_tokens.add(token)
                cluster_of_token.pop(token, None)
            else:
                cluster_of_token[token] = len(clusters)
            clusters.append((write, []))
        for read in reads:
            token = tuple(read.version)
            if token == ZERO_VERSION:
                clusters[0][1].append(read)
                continue
            if token in duplicate_tokens \
                    or len(prep.writes_by_token.get((key, token), ())) > 1:
                excluded += 1        # ambiguous writer
                continue
            slot = cluster_of_token.get(token)
            if slot is None:
                # No healthy-graph writer carries this token: it came
                # from a pending write (version unknown), a squashed
                # attempt, or a degraded-era writer excluded above.
                # Truly unwritten versions are check_no_phantom's job
                # (it runs for every cell); here the read is just
                # unattributable.
                excluded += 1
                continue
            write = clusters[slot][0]
            if read.respond_us < write.invoke_us:
                res.violate(
                    "future-read",
                    f"read of key {key} returned version {token} before "
                    f"its write was invoked", (read, write))
                continue
            if write.value is not None and read.value != write.value:
                res.violate(
                    "value-mismatch",
                    f"read of key {key} version {token} returned "
                    f"{read.value!r} but the write stored "
                    f"{write.value!r}", (read, write))
            clusters[slot][1].append(read)
        cycle = _cluster_cycle(clusters)
        if cycle is None:
            continue
        witness: List[HistoryOpRecord] = []
        for cluster in cycle:
            write, rds = clusters[cluster]
            if write is not None:
                witness.append(write)
            witness.extend(rds)
        witness.sort(key=lambda op: op.index)
        witness = _shrink_cycle_witness(witness, res)
        res.violate(
            "not-linearizable",
            f"key {key}: no linearization of {len(clusters)} write "
            f"clusters satisfies the real-time order; "
            f"{len(cycle)}-cluster constraint cycle", tuple(witness))
    res.stats["excluded_observations"] = excluded
    return res


# ---------------------------------------------------------------------------
# read-enforced
# ---------------------------------------------------------------------------

def check_read_enforced(prep: PreparedHistory) -> CheckResult:
    """Reads are *enforced* at the serving node: two non-overlapping
    reads answered by the same node never step back in version order
    (the node stalls reads on pending invalidations, and its applied
    state only advances), plus read-your-writes inside each session.

    Deliberately weaker than linearizability: enforcement is local to
    the node, so a read served elsewhere before the invalidation lands
    may still be stale — such a cross-node stale read passes here but
    fails the linearizable checker, the cross-model witness separating
    the two rows.
    """
    res = CheckResult("read_enforced")
    by_node_key: Dict[Tuple[int, Optional[int]],
                      List[HistoryOpRecord]] = defaultdict(list)
    excluded = 0
    for op in prep.completed_reads:
        if op.degraded or op.version is None:
            # A crash-restarted node legitimately rewinds its applied
            # state to the recovered image; its post-restart reads are
            # a new era, not a freshness regression.
            excluded += 1
            continue
        if prep.observation_effect(op) is not True:
            excluded += 1
            continue
        by_node_key[(op.node, op.key)].append(op)
    for node, key in sorted(by_node_key,
                            key=lambda nk: (nk[0], nk[1] is None, nk[1])):
        reads = by_node_key[(node, key)]
        res.checked += len(reads)
        by_invoke = sorted(reads, key=lambda op: (op.invoke_us, op.index))
        by_respond = sorted(reads, key=lambda op: (op.respond_us, op.index))
        best: Optional[Tuple[Version, HistoryOpRecord]] = None
        done = 0
        for read in by_invoke:
            while done < len(by_respond) \
                    and by_respond[done].respond_us < read.invoke_us:
                prior = by_respond[done]
                version = tuple(prior.version)
                if best is None or version > best[0]:
                    best = (version, prior)
                done += 1
            if best is not None and tuple(read.version) < best[0]:
                res.violate(
                    "stale-read",
                    f"node {node} key {key}: read observed "
                    f"{tuple(read.version)} after an earlier read at the "
                    f"same node returned {best[0]}",
                    (best[1], read))
    # Read-your-writes within each session (any session: it is a local,
    # single-node guarantee that survives even a degraded era).
    thresholds: Dict[Tuple[int, int], Dict[Optional[int],
                                           Tuple[Version,
                                                 HistoryOpRecord]]] = \
        defaultdict(dict)
    for op in prep.ops:
        if not op.ok or op.respond_us is None:
            continue
        session = thresholds[(op.client, op.session)]
        if op.op == "write":
            if op.version is None or prep.write_effect(op) is not True:
                continue
            version = tuple(op.version)
            current = session.get(op.key)
            if current is None or version > current[0]:
                session[op.key] = (version, op)
        elif op.op == "read":
            if op.version is None \
                    or prep.observation_effect(op) is not True:
                continue
            res.checked += 1
            current = session.get(op.key)
            if current is not None and tuple(op.version) < current[0]:
                res.violate(
                    "read-your-writes",
                    f"key {op.key}: client {op.client} read "
                    f"{tuple(op.version)} after its own write "
                    f"{current[0]}", (current[1], op))
    res.stats["excluded_observations"] = excluded
    return res


# ---------------------------------------------------------------------------
# transactional
# ---------------------------------------------------------------------------

def check_transactional(prep: PreparedHistory) -> CheckResult:
    """Conflict-squashed optimistic transactions, observationally: a
    committed attempt always reads its own earlier writes (a conflicting
    writer would have squashed one of the two), and each session's
    committed observations never move backwards.  Reads of versions
    written by squashed attempts are legal mid-attempt (the simulator
    applies eagerly and reverts on squash) and are excluded, as are
    repeatable-read demands: a transaction that committed *between* two
    reads of the same key is visible to the second one by design."""
    res = CheckResult("transactional")
    attempts: Dict[int, List[HistoryOpRecord]] = defaultdict(list)
    for op in prep.ops:
        if op.ok and op.txn_id is not None and op.respond_us is not None:
            attempts[op.txn_id].append(op)
    for txn_id in sorted(attempts):
        if prep.txn_outcome.get(txn_id) is not True:
            continue
        own: Dict[Optional[int], Version] = {}
        for op in attempts[txn_id]:
            if op.op == "write":
                if op.version is not None:
                    own[op.key] = tuple(op.version)
                continue
            if op.op != "read" or op.version is None:
                continue
            res.checked += 1
            version = tuple(op.version)
            if op.key in own and version != own[op.key]:
                res.violate(
                    "own-write-lost",
                    f"txn {txn_id}: read of key {op.key} returned "
                    f"{version} instead of the attempt's own write "
                    f"{own[op.key]}", (op,))
    # Session-monotonic committed observations.
    excluded = 0
    thresholds: Dict[Tuple[int, int], Dict[Optional[int],
                                           Tuple[Version,
                                                 HistoryOpRecord]]] = \
        defaultdict(dict)
    for op in prep.completed_reads:
        if op.version is None:
            continue
        if prep.observation_effect(op) is not True:
            excluded += 1
            continue
        res.checked += 1
        version = tuple(op.version)
        session = thresholds[(op.client, op.session)]
        current = session.get(op.key)
        if current is not None and version < current[0]:
            res.violate(
                "monotonic-reads",
                f"key {op.key}: client {op.client} session {op.session} "
                f"read {version} after {current[0]}", (current[1], op))
        if current is None or version > current[0]:
            session[op.key] = (version, op)
    res.stats["excluded_observations"] = excluded
    return res


# ---------------------------------------------------------------------------
# causal
# ---------------------------------------------------------------------------

def check_causal(prep: PreparedHistory) -> CheckResult:
    """Session guarantees plus writes-follow-reads, from observation.

    Pass 1 reconstructs every effective write's *nearest-dependency*
    set from its session's recorded timeline, mirroring the client
    context exactly: the session's previous write plus the per-key
    maximum of versions it read since.  Pass 2 replays each session;
    reading a foreign write obliges the reader to that write's
    nearest dependencies — one hop only.  The obligation deliberately
    does NOT close transitively through the writer's own earlier
    writes: dependency checks are satisfied by per-key version
    *dominance*, so a concurrent last-writer-wins overwrite of an
    intermediate write satisfies the dependency without ever carrying
    the intermediate write's own causal history (the COPS
    nearest-dependency design).  A transitive obligation would flag
    those legitimate severed chains; one hop is what the protocol
    actually guarantees at the reader's node, and is a sound
    under-approximation of causal memory (a returned version merely
    *concurrent* with a deeper ancestor is legal).

    Monotonicity obligations come from *reads* only: under synchronous
    persistency the causal models serve reads from the persisted
    version, which legitimately lags the session's own just-applied
    writes — observation-level read-your-writes is not part of this
    contract."""
    res = CheckResult("causal")
    sessions: Dict[Tuple[int, int], List[HistoryOpRecord]] = \
        defaultdict(list)
    excluded = 0
    for op in prep.ops:
        if not op.ok or op.respond_us is None or op.op == "persist":
            continue
        if op.degraded:
            excluded += 1
            continue
        sessions[(op.client, op.session)].append(op)
    session_ids = sorted(sessions)
    # Pass 1: nearest-dependency sets, mirroring ClientContext.observe /
    # take_dependencies — every completed read folds into the per-key
    # running maximum, every completed write captures the accumulated
    # set and resets it to just itself (effective or not: the client
    # context reset either way).
    deps: Dict[Tuple[Optional[int], Version],
               Tuple[Tuple[int, int], int]] = {}
    nearest: Dict[Tuple[Tuple[int, int], int],
                  Dict[Optional[int],
                       Tuple[Version, HistoryOpRecord]]] = {}
    for sid in session_ids:
        running: Dict[Optional[int],
                      Tuple[Version, HistoryOpRecord]] = {}
        writes = 0
        for op in sessions[sid]:
            if op.version is None:
                continue
            version = tuple(op.version)
            if op.op == "write":
                if prep.write_effect(op) is True:
                    deps.setdefault((op.key, version), (sid, writes))
                    nearest[(sid, writes)] = dict(running)
                running = {op.key: (version, op)}
                writes += 1
            elif version > running.get(op.key, (ZERO_VERSION,))[0]:
                running[op.key] = (version, op)
    # Pass 2: replay each session against its accumulated obligations.
    for sid in session_ids:
        owed: Dict[Optional[int], Tuple[Version, HistoryOpRecord]] = {}
        own: Dict[Optional[int], Tuple[Version, HistoryOpRecord]] = {}
        for op in sessions[sid]:
            if op.version is None or op.op != "read":
                continue
            version = tuple(op.version)
            if prep.observation_effect(op) is not True:
                excluded += 1
                continue
            res.checked += 1
            current = own.get(op.key)
            if current is not None and version < current[0]:
                res.violate(
                    "monotonic-reads",
                    f"key {op.key}: session {sid} observed {version} "
                    f"after {current[0]}", (current[1], op))
            else:
                entry = owed.get(op.key)
                if entry is not None and version < entry[0]:
                    if entry[0][1] == op.node:
                        # The expected dependency was coordinated by the
                        # read's own node, where local writes apply
                        # without a dependency check: under a persisted-
                        # frontier read (synchronous persistency) the
                        # per-key persist queues can expose a dependent
                        # write before its dependency.  Unattributable
                        # from observation alone, so excluded.
                        excluded += 1
                    else:
                        res.violate(
                            "writes-follow-reads",
                            f"key {op.key}: session {sid} observed "
                            f"{version}, older than {entry[0]} which "
                            f"a write it already read depends on",
                            (entry[1], op))
            if current is None or version > current[0]:
                own[op.key] = (version, op)
            dep = deps.get((op.key, version))
            if dep is not None and dep[0] != sid:
                for key, (dep_version, dep_op) in nearest[dep].items():
                    if dep_version > owed.get(key, (ZERO_VERSION,))[0]:
                        owed[key] = (dep_version, dep_op)
    res.stats["excluded_observations"] = excluded
    return res


# ---------------------------------------------------------------------------
# eventual
# ---------------------------------------------------------------------------

def check_eventual(prep: PreparedHistory) -> CheckResult:
    """Eventual consistency makes no real-time promise a finite
    bounded history can falsify beyond phantom freedom (which
    :func:`check_no_phantom` covers for every cell); convergence is
    judged against the recovered durable state by the persistency
    predicates."""
    res = CheckResult("eventual")
    res.stats["note"] = "safety limited to no-phantom; vacuously ok"
    return res


CONSISTENCY_CHECKERS = {
    "linearizable": check_linearizable,
    "read_enforced": check_read_enforced,
    "transactional": check_transactional,
    "causal": check_causal,
    "eventual": check_eventual,
}
