"""The audit engine: evaluate the full 5×5 DDP matrix over a history.

:func:`audit_history` runs every consistency checker and durability
predicate once, then combines them per matrix cell, producing a
``repro.audit_report/1`` document: per-cell verdicts, the target
model's pass/fail, violation witnesses (the offending sub-history as
recorded op JSON), and checker cost statistics.  The same document
feeds the human verdict table (:func:`format_audit_table`), the run
report's ``audit`` section, and ``repro diff``.

A history is *unusable* — no verdicts, only a reason — when it was
truncated by the recorder bound or contains no operations: auditing a
partial view could both miss real violations and invent false ones.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.audit.checkers import (CONSISTENCY_CHECKERS, CheckResult,
                                  PreparedHistory, check_no_phantom)
from repro.audit.durability import DURABILITY_CHECKERS, checks_for_cell
from repro.obs.history import History, HistoryOpRecord
from repro.obs.schemas import AUDIT_REPORT_SCHEMA as AUDIT_SCHEMA

__all__ = ["AUDIT_SCHEMA", "CONSISTENCY_ORDER", "PERSISTENCY_ORDER",
           "audit_history", "audit_exit_code", "format_audit_table"]

CONSISTENCY_ORDER = ("linearizable", "read_enforced", "transactional",
                     "causal", "eventual")
PERSISTENCY_ORDER = ("strict", "synchronous", "read_enforced", "scope",
                     "eventual")

#: Witness operations serialized per violation detail.
_MAX_WITNESS_OPS = 8


def _clock() -> float:
    # Checker cost is genuinely host time: the audit runs after the
    # simulation has stopped and reports its own expense, never feeding
    # it back into event order.
    return time.perf_counter()  # repro: lint-ok[wall-clock-ban] post-run audit cost accounting, outside the simulation


def _op_json(op: HistoryOpRecord) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "index": op.index, "client": op.client, "session": op.session,
        "op": op.op, "key": op.key,
        "version": None if op.version is None else list(op.version),
        "invoke_us": op.invoke_us, "respond_us": op.respond_us,
    }
    if op.txn_id is not None:
        doc["txn_id"] = op.txn_id
        doc["committed"] = op.committed
    if op.scope_id is not None:
        doc["scope_id"] = op.scope_id
    if op.severed:
        doc["severed"] = True
    if op.degraded:
        doc["degraded"] = True
    return doc


def _check_json(result: CheckResult,
                by_index: Dict[int, HistoryOpRecord]) -> Dict[str, Any]:
    details = []
    for detail in result.details:
        witness = [_op_json(by_index[i]) for i in
                   detail["ops"][:_MAX_WITNESS_OPS] if i in by_index]
        details.append({"rule": detail["rule"], "detail": detail["detail"],
                        "ops": detail["ops"], "witness": witness})
    return {
        "ok": result.ok,
        "skipped": result.skipped,
        "checked": result.checked,
        "violations": result.violations,
        "wall_ms": round(result.wall_ms, 3),
        "stats": dict(result.stats),
        "details": details,
    }


def _timed(checker, prep: PreparedHistory) -> CheckResult:
    start = _clock()
    result = checker(prep)
    result.wall_ms = (_clock() - start) * 1000.0
    return result


def _unusable(reason: str, target_consistency: Optional[str],
              target_persistency: Optional[str]) -> Dict[str, Any]:
    target = None
    if target_consistency and target_persistency:
        target = {"consistency": target_consistency,
                  "persistency": target_persistency, "ok": None}
    return {"schema": AUDIT_SCHEMA, "usable": False, "reason": reason,
            "target": target}


def audit_history(history: History,
                  consistency: Optional[str] = None,
                  persistency: Optional[str] = None) -> Dict[str, Any]:
    """Audit one history against the full matrix.

    ``consistency`` / ``persistency`` override the target cell (which
    otherwise comes from the history's recorded run metadata); the
    other 24 cells are always evaluated too — a weaker model passing a
    stronger cell's checks is informative, a stronger model failing a
    weaker cell's is a bug somewhere.
    """
    meta = history.meta or {}
    model_meta = meta.get("model")
    if not isinstance(model_meta, dict):
        # CLI run metadata carries the model label as a string and the
        # component values at the top level.
        model_meta = meta
    target_consistency = consistency or model_meta.get("consistency")
    target_persistency = persistency or model_meta.get("persistency")
    if history.truncated:
        return _unusable(
            f"history truncated: recorder dropped {history.dropped} "
            f"operations", target_consistency, target_persistency)
    if not history.ops:
        return _unusable("history is empty", target_consistency,
                         target_persistency)
    prep = PreparedHistory(history)
    by_index = {op.index: op for op in history.ops}

    results: Dict[str, CheckResult] = {
        "no_phantom": _timed(check_no_phantom, prep)}
    for name in CONSISTENCY_ORDER:
        results[name] = _timed(CONSISTENCY_CHECKERS[name], prep)
    durability: Dict[str, CheckResult] = {}
    for name, checker in sorted(DURABILITY_CHECKERS.items()):
        if prep.recovered_captured:
            durability[name] = _timed(checker, prep)
        else:
            skipped = CheckResult(name, skipped=True)
            skipped.stats["note"] = "recovered state not captured"
            durability[name] = skipped

    matrix: List[Dict[str, Any]] = []
    cells_failed = 0
    target_cell: Optional[Dict[str, Any]] = None
    for cons in CONSISTENCY_ORDER:
        for pers in PERSISTENCY_ORDER:
            failed: List[str] = []
            if not results["no_phantom"].ok:
                failed.append("no_phantom")
            if not results[cons].ok:
                failed.append(cons)
            durability_skipped = False
            for name in checks_for_cell(cons, pers):
                check = durability[name]
                if check.skipped:
                    durability_skipped = True
                elif not check.ok:
                    failed.append(name)
            cell = {"consistency": cons, "persistency": pers,
                    "ok": not failed, "failed_checks": failed,
                    "durability_skipped": durability_skipped}
            matrix.append(cell)
            if not cell["ok"]:
                cells_failed += 1
            if cons == target_consistency and pers == target_persistency:
                target_cell = cell

    sessions = {(op.client, op.session) for op in history.ops}
    degraded = {(op.client, op.session) for op in history.ops
                if op.degraded}
    all_checks = dict(results)
    all_checks.update(durability)
    wall_ms = sum(r.wall_ms for r in all_checks.values())
    target = None
    if target_cell is not None:
        target = {"consistency": target_consistency,
                  "persistency": target_persistency,
                  "ok": target_cell["ok"],
                  "failed_checks": target_cell["failed_checks"],
                  "durability_skipped": target_cell["durability_skipped"]}
    return {
        "schema": AUDIT_SCHEMA,
        "usable": True,
        "history": {
            "ops": len(history.ops),
            "reads": sum(1 for op in history.ops if op.op == "read"),
            "writes": sum(1 for op in history.ops if op.op == "write"),
            "pending": prep.pending_ops,
            "severed": sum(1 for op in history.ops if op.severed),
            "failed": sum(1 for op in history.ops if not op.ok),
            "clients": len({op.client for op in history.ops}),
            "sessions": len(sessions),
            "degraded_sessions": len(degraded),
            "keys": len({op.key for op in history.ops
                         if op.key is not None}),
            "recovered_captured": prep.recovered_captured,
        },
        "target": target,
        "consistency": {name: _check_json(results[name], by_index)
                        for name in ("no_phantom",) + CONSISTENCY_ORDER},
        "durability": {
            "skipped": not prep.recovered_captured,
            "checks": {name: _check_json(durability[name], by_index)
                       for name in sorted(durability)},
        },
        "matrix": matrix,
        "totals": {
            "cells": len(matrix),
            "cells_failed": cells_failed,
            "violations_total": sum(r.violations
                                    for r in all_checks.values()),
            "target_failed_checks": (len(target["failed_checks"])
                                     if target else None),
            "checker_wall_seconds": round(wall_ms / 1000.0, 6),
        },
    }


def audit_exit_code(report: Dict[str, Any]) -> int:
    """0 target cell passes, 1 it fails, 2 unusable or no target."""
    if not report.get("usable"):
        return 2
    target = report.get("target")
    if target is None or target.get("ok") is None:
        return 2
    return 0 if target["ok"] else 1


_COLUMN_LABELS = {"strict": "strict", "synchronous": "sync",
                  "read_enforced": "read_enf", "scope": "scope",
                  "eventual": "eventual"}


def format_audit_table(report: Dict[str, Any]) -> str:
    """Human verdict table for one audit report."""
    lines: List[str] = []
    if not report.get("usable"):
        lines.append(f"audit: UNUSABLE -- {report.get('reason')}")
        return "\n".join(lines)
    info = report["history"]
    lines.append(
        f"audit: {info['ops']} ops, {info['clients']} clients, "
        f"{info['sessions']} sessions ({info['degraded_sessions']} "
        f"degraded), {info['pending']} pending "
        f"({info['severed']} crash-severed)"
        + ("" if info["recovered_captured"]
           else " -- durability skipped (no recovered state)"))
    target = report.get("target") or {}
    cells = {(c["consistency"], c["persistency"]): c
             for c in report["matrix"]}
    width = max(len(label) for label in _COLUMN_LABELS.values()) + 2
    name_width = max(len(name) for name in CONSISTENCY_ORDER) + 2
    header = " " * name_width + "".join(
        _COLUMN_LABELS[p].rjust(width) for p in PERSISTENCY_ORDER)
    lines.append(header)
    for cons in CONSISTENCY_ORDER:
        row = cons.ljust(name_width)
        for pers in PERSISTENCY_ORDER:
            cell = cells[(cons, pers)]
            mark = "ok" if cell["ok"] else "FAIL"
            if (cons == target.get("consistency")
                    and pers == target.get("persistency")):
                mark = f"*{mark}"
            row += mark.rjust(width)
        lines.append(row)
    if target:
        verdict = "PASS" if target["ok"] else "FAIL"
        lines.append(f"target <{target['consistency']}, "
                     f"{target['persistency']}>: {verdict}"
                     + (f" ({', '.join(target['failed_checks'])})"
                        if target["failed_checks"] else ""))
    else:
        lines.append("target: none (pass --consistency/--persistency "
                     "or audit a history with run metadata)")
    totals = report["totals"]
    lines.append(
        f"checks: {totals['violations_total']} violation(s) across "
        f"{totals['cells_failed']}/{totals['cells']} failing cells; "
        f"checker wall {totals['checker_wall_seconds'] * 1000.0:.1f} ms")
    sections = [("consistency", report["consistency"]),
                ("durability", report["durability"]["checks"])]
    for section, checks in sections:
        for name, check in checks.items():
            if check["ok"] or check["skipped"]:
                continue
            lines.append(f"  {section}/{name}: "
                         f"{check['violations']} violation(s)")
            for detail in check["details"][:3]:
                lines.append(f"    - [{detail['rule']}] {detail['detail']}")
                for op in detail["witness"][:4]:
                    lines.append(
                        f"        #{op['index']} client={op['client']} "
                        f"s={op['session']} {op['op']} key={op['key']} "
                        f"v={op['version']} "
                        f"[{op['invoke_us']:.3f}, "
                        + ("pending" if op["respond_us"] is None
                           else f"{op['respond_us']:.3f}") + "]")
    return "\n".join(lines)
