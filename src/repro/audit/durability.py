"""Durability predicates: persistency contracts judged against the
post-crash recovered state.

Each predicate compares what clients observed (the history) with what
NVM recovery yielded after the run (``History.recovered``, the merged
latest-version image across every node's durable log).  The mapping
from matrix cell to predicate set (:func:`checks_for_cell`) mirrors the
white-box contract table in :mod:`repro.faults.validate`, re-derived
from the paper's Table 4 semantics:

* **strict** persists before the write is acknowledged anywhere, so it
  owes `completed_writes_durable` under every consistency model;
  **synchronous** persists inline too, but only the models whose write
  acknowledgment already waits for the full round (linearizable's
  follower ACKs, transactional's commit) tie the ack to durability —
  read-enforced/causal/eventual acknowledge after the local update, so
  their last writes may die with a crash.
* **read_enforced** only persists a version once somebody reads it, so
  it owes `read_values_durable` — and so does **synchronous** under
  causal/eventual consistency, where writes are acknowledged early but
  reads return only persisted versions.
* **scope** owes durability exactly for writes whose scope completed
  its Persist call (`scope_writes_durable`).
* every cell owes `recovered_no_phantom`: recovery may lose suffixes
  but must never invent versions nobody wrote.

All predicates share the checkers' soundness contract: writes of
squashed transaction attempts, pending (crash-severed) operations, and
unattributable versions are excluded rather than guessed at.
"""

from __future__ import annotations

from typing import List

from repro.audit.checkers import CheckResult, PreparedHistory
from repro.core.replica import ZERO_VERSION

__all__ = ["DURABILITY_CHECKERS", "checks_for_cell",
           "check_completed_writes_durable", "check_read_values_durable",
           "check_scope_writes_durable", "check_recovered_no_phantom"]

#: Consistency models whose write acknowledgment waits for the full
#: protocol round, which under synchronous (inline) persistency makes
#: the ack imply durability (mirrors ``repro.faults.validate``'s
#: ``guarantees_completed_writes``).
_ACK_IMPLIES_PERSIST = ("linearizable", "transactional")

#: Consistency models without invalidation rounds: under synchronous
#: persistency their reads return the *persisted* version, so every
#: observed value is recoverable (``guarantees_read_values``).
_READS_RETURN_PERSISTED = ("causal", "eventual")


def checks_for_cell(consistency: str, persistency: str) -> List[str]:
    """Durability predicate names owed by one matrix cell."""
    checks = ["recovered_no_phantom"]
    if persistency == "strict" or (persistency == "synchronous"
                                   and consistency in _ACK_IMPLIES_PERSIST):
        checks.append("completed_writes_durable")
    if persistency == "read_enforced" or (persistency == "synchronous"
                                          and consistency
                                          in _READS_RETURN_PERSISTED):
        checks.append("read_values_durable")
    if persistency == "scope":
        checks.append("scope_writes_durable")
    return checks


def check_completed_writes_durable(prep: PreparedHistory) -> CheckResult:
    """Every acknowledged (and, for transactions, committed) write
    survived into the recovered image."""
    res = CheckResult("completed_writes_durable")
    for op in prep.completed_writes:
        if op.version is None or prep.write_effect(op) is not True:
            continue
        res.checked += 1
        version = tuple(op.version)
        if prep.recovered.get(op.key, ZERO_VERSION) < version:
            res.violate(
                "lost-durable-write",
                f"key {op.key}: acknowledged write {version} missing "
                f"from recovered state "
                f"{prep.recovered.get(op.key, ZERO_VERSION)}", (op,))
    return res


def check_read_values_durable(prep: PreparedHistory) -> CheckResult:
    """Every version a completed read returned was durable by then and
    stayed recoverable (reads of squashed-attempt writes are excluded:
    their durability was legitimately reverted with the abort)."""
    res = CheckResult("read_values_durable")
    excluded = 0
    for op in prep.completed_reads:
        if op.version is None:
            continue
        version = tuple(op.version)
        if version == ZERO_VERSION:
            continue
        if prep.observation_effect(op) is not True:
            excluded += 1
            continue
        res.checked += 1
        if prep.recovered.get(op.key, ZERO_VERSION) < version:
            res.violate(
                "lost-read-value",
                f"key {op.key}: observed version {version} missing from "
                f"recovered state "
                f"{prep.recovered.get(op.key, ZERO_VERSION)}", (op,))
    res.stats["excluded_observations"] = excluded
    return res


def check_scope_writes_durable(prep: PreparedHistory) -> CheckResult:
    """Every write belonging to a scope whose Persist call completed
    survived into the recovered image."""
    res = CheckResult("scope_writes_durable")
    for op in prep.completed_writes:
        if op.scope_id is None or op.version is None:
            continue
        if (op.client, op.session, op.scope_id) not in prep.committed_scopes:
            continue
        if prep.write_effect(op) is not True:
            continue
        res.checked += 1
        version = tuple(op.version)
        if prep.recovered.get(op.key, ZERO_VERSION) < version:
            res.violate(
                "torn-scope",
                f"key {op.key}: write {version} of completed scope "
                f"{op.scope_id} missing from recovered state "
                f"{prep.recovered.get(op.key, ZERO_VERSION)}", (op,))
    return res


def check_recovered_no_phantom(prep: PreparedHistory) -> CheckResult:
    """Recovery never yields a version no recorded write produced
    (keys touched by a version-unknown pending write are skipped: the
    severed write may legitimately be what recovery found)."""
    res = CheckResult("recovered_no_phantom")
    skipped = 0
    for key in sorted(prep.recovered):
        version = prep.recovered[key]
        if version == ZERO_VERSION:
            continue
        if key in prep.unknown_token_keys:
            skipped += 1
            continue
        res.checked += 1
        if (key, version) not in prep.writes_by_token:
            res.violate(
                "recovered-phantom",
                f"key {key}: recovered version {version} was never "
                f"written by any recorded operation")
    res.stats["skipped_keys"] = skipped
    return res


DURABILITY_CHECKERS = {
    "completed_writes_durable": check_completed_writes_durable,
    "read_values_durable": check_read_values_durable,
    "scope_writes_durable": check_scope_writes_durable,
    "recovered_no_phantom": check_recovered_no_phantom,
}
