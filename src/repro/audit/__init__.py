"""Black-box contract auditing for the 5×5 DDP matrix.

Record what every client observed (:mod:`repro.obs.history`), then
judge the run against each consistency/persistency contract purely
from those observations — the auditor never looks inside the protocol:

* :mod:`repro.audit.checkers` — one checker per consistency model
  (linearizability through a polynomial unique-token cluster graph,
  read-enforced freshness, transactional atomicity, causal session
  guarantees, eventual) plus the shared phantom check;
* :mod:`repro.audit.durability` — persistency predicates evaluated
  against the post-crash recovered NVM state, mapped per matrix cell;
* :mod:`repro.audit.engine` — the 5×5 evaluation, the
  ``repro.audit_report/1`` document, and the human verdict table.

Entry points: ``repro run --audit`` (record + audit in one go) and
``repro audit history.jsonl`` (audit a saved ``repro.history/1``
artifact, exit 0 pass / 1 violation / 2 unusable).
"""

from repro.audit.checkers import (CONSISTENCY_CHECKERS, CheckResult,
                                  PreparedHistory, check_causal,
                                  check_eventual, check_linearizable,
                                  check_no_phantom, check_read_enforced,
                                  check_transactional)
from repro.audit.durability import (DURABILITY_CHECKERS,
                                    check_completed_writes_durable,
                                    check_read_values_durable,
                                    check_recovered_no_phantom,
                                    check_scope_writes_durable,
                                    checks_for_cell)
from repro.audit.engine import (AUDIT_SCHEMA, CONSISTENCY_ORDER,
                                PERSISTENCY_ORDER, audit_exit_code,
                                audit_history, format_audit_table)

__all__ = [
    "AUDIT_SCHEMA", "CONSISTENCY_ORDER", "PERSISTENCY_ORDER",
    "CheckResult", "PreparedHistory",
    "CONSISTENCY_CHECKERS", "DURABILITY_CHECKERS",
    "check_no_phantom", "check_linearizable", "check_read_enforced",
    "check_transactional", "check_causal", "check_eventual",
    "check_completed_writes_durable", "check_read_values_durable",
    "check_scope_writes_durable", "check_recovered_no_phantom",
    "checks_for_cell", "audit_history", "audit_exit_code",
    "format_audit_table",
]
