"""Cluster substrate: server nodes, cluster assembly, experiment harness."""

from repro.cluster.cluster import Cluster, run_simulation
from repro.cluster.config import ClusterConfig
from repro.cluster.node import Node

__all__ = ["Cluster", "ClusterConfig", "Node", "run_simulation"]
