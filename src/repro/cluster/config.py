"""Cluster-level configuration (the paper's Table 5, plus run knobs)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.engine import ProtocolConfig
from repro.memory.devices import DRAM_TIMING, NVM_TIMING, MemoryTiming
from repro.net.network import NetworkConfig

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to build a cluster (defaults = Table 5)."""

    servers: int = 5
    clients_per_server: int = 20
    cores_per_server: int = 20
    seed: int = 2021

    network: NetworkConfig = field(default_factory=NetworkConfig)
    nvm_timing: MemoryTiming = NVM_TIMING
    dram_timing: MemoryTiming = DRAM_TIMING
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)

    store_type: Optional[str] = "hashtable"
    """KV store backing each node; None disables store cost modeling."""

    def __post_init__(self):
        if self.servers < 2:
            raise ValueError("a replicated cluster needs at least 2 servers")
        if self.clients_per_server < 0:
            raise ValueError("clients_per_server must be >= 0")

    @property
    def total_clients(self) -> int:
        return self.servers * self.clients_per_server

    def with_overrides(self, **changes) -> ClusterConfig:
        """A copy with some fields replaced (sensitivity sweeps)."""
        import dataclasses
        return dataclasses.replace(self, **changes)
