"""One server: memory hierarchy + NIC + protocol engine + local store."""

from __future__ import annotations

from repro.analysis.metrics import Metrics
from repro.cluster.config import ClusterConfig
from repro.core.engine import ProtocolNode
from repro.core.model import DdpModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.net.network import Network
from repro.net.rdma import RdmaFabric
from repro.sim.engine import Simulator
from repro.sim.rng import SeededStream
from repro.store import make_store
from repro.txn.manager import TxnTable

__all__ = ["Node"]


class Node:
    """A server of the modeled distributed system (Figure 1)."""

    def __init__(self, sim: Simulator, node_id: int, config: ClusterConfig,
                 model: DdpModel, network: Network, rdma: RdmaFabric,
                 metrics: Metrics, txn_table: TxnTable,
                 rng: SeededStream, nvm_log=None, tracer=None,
                 version_board=None, membership=None):
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.memory = MemoryHierarchy(
            sim, rng.fork(f"mem{node_id}"), cores=config.cores_per_server,
            nvm_timing=config.nvm_timing, dram_timing=config.dram_timing,
            name=f"node{node_id}", tracer=tracer, node_id=node_id)
        self.nic = network.attach(node_id)
        self.rdma_endpoint = rdma.register(node_id, self.memory)
        self.store = (make_store(config.store_type)
                      if config.store_type else None)
        peer_ids = [n for n in range(config.servers) if n != node_id]
        self.engine = ProtocolNode(
            sim, node_id, peer_ids, network, self.nic, self.memory,
            model, metrics, config=config.protocol, txn_table=txn_table,
            store=self.store, nvm_log=nvm_log, tracer=tracer,
            version_board=version_board, membership=membership)

    def start(self) -> None:
        self.engine.start()

    def crash(self) -> None:
        """Lose all volatile state; only the NVM image survives."""
        self.engine.crash()

    def restart(self, recovered_entries) -> None:
        """Rebuild volatile state from this node's durable image and
        rejoin (see :meth:`repro.core.engine.ProtocolNode.restart`)."""
        self.engine.restart(recovered_entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id}, model={self.engine.model})"
