"""Cluster assembly and the simulation harness.

:class:`Cluster` wires together the simulator, network, RDMA fabric,
nodes, transaction table, durable log, and closed-loop clients for one
DDP model.  :func:`run_simulation` is the one-call experiment runner
used by tests, examples, and every benchmark: build a cluster, warm it
up, measure for a simulated duration, and return the
:class:`~repro.analysis.metrics.Summary`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.metrics import Metrics, Summary
from repro.cluster.config import ClusterConfig
from repro.cluster.node import Node
from repro.core.membership import Membership
from repro.core.model import DdpModel
from repro.net.network import Network
from repro.net.rdma import RdmaFabric
from repro.recovery.log import NvmLog
from repro.recovery.recovery import recover_latest
from repro.sim.engine import Simulator
from repro.sim.rng import SeededStream
from repro.txn.manager import TxnTable
from repro.workload.client import Client
from repro.workload.ycsb import RequestStream, WorkloadSpec

__all__ = ["Cluster", "run_simulation"]


class Cluster:
    """A full modeled deployment of one DDP model."""

    def __init__(self, model: DdpModel, config: Optional[ClusterConfig] = None,
                 workload: Optional[WorkloadSpec] = None, tracer=None,
                 version_board=None, metrics: Optional[Metrics] = None,
                 profile=None, monitor=None, faults=None, history=None):
        self.model = model
        self.config = config or ClusterConfig()
        self.workload = workload
        self.tracer = tracer
        self.version_board = version_board
        self.sim = Simulator()
        self.profile = profile
        if profile is not None:
            profile.attach(self.sim)
        self.rng = SeededStream(self.config.seed, "cluster")
        self.metrics = metrics if metrics is not None else Metrics()
        self.network = Network(self.sim, self.config.network, tracer=tracer)
        self.rdma = RdmaFabric(self.sim, self.network)
        self.txn_table = TxnTable()
        self.nvm_log = NvmLog(range(self.config.servers))
        # Membership exists only for fault-injected runs: without it the
        # engines arm no round watchdogs and keep exact seed behavior.
        self.membership = (Membership(range(self.config.servers))
                           if faults is not None else None)
        self.nodes: List[Node] = [
            Node(self.sim, node_id, self.config, model, self.network,
                 self.rdma, self.metrics, self.txn_table,
                 self.rng, nvm_log=self.nvm_log, tracer=tracer,
                 version_board=version_board, membership=self.membership)
            for node_id in range(self.config.servers)
        ]
        # Optional repro.obs.history.HistoryRecorder for the black-box
        # audit: attached to every client, pure observation.
        self.history = history
        if history is not None:
            history.sim = self.sim
        self.clients: List[Client] = []
        if workload is not None:
            self._build_clients(workload)
        self.monitor = monitor
        if monitor is not None:
            # Attached last so the monitor sees the fully-built cluster;
            # it samples on the simulation clock from here on.
            monitor.attach(self)
        self.faults = faults
        if faults is not None:
            # After the monitor, so fault events land on an otherwise
            # fully-assembled cluster.
            faults.attach(self)

    def _build_clients(self, workload: WorkloadSpec) -> None:
        client_id = 0
        record_ops = self.membership is not None
        for node in self.nodes:
            for _ in range(self.config.clients_per_server):
                stream = RequestStream(
                    workload, self.rng.fork(f"client{client_id}"))
                self.clients.append(
                    Client(self.sim, client_id, node.engine, stream,
                           self.metrics, record_ops=record_ops,
                           history=self.history))
                client_id += 1

    # -- running --------------------------------------------------------------------

    def start(self) -> None:
        """Launch node dispatchers and client loops."""
        for node in self.nodes:
            node.start()
        for client in self.clients:
            client.start()

    def run(self, duration_ns: float, warmup_ns: float = 0.0) -> Summary:
        """Start everything, run for ``duration_ns`` of simulated time,
        and summarize the measured interval (after ``warmup_ns``)."""
        self.start()
        if warmup_ns > 0:
            self.sim.run(until=warmup_ns)
        self.metrics.warmup_end_ns = self.sim.now
        self.sim.run(until=duration_ns)
        self.metrics.txn_conflicts = self.txn_table.conflicts
        self.metrics.txn_aborts = self.txn_table.aborted
        if self.profile is not None:
            self.profile.stop(self.sim.now)
        if self.monitor is not None:
            # Stop re-arming the sampling tick; anything the caller runs
            # on this simulator afterwards (e.g. recovery) is unsampled.
            self.monitor.stop(self.sim.now)
        if self.history is not None:
            # Operations still in flight at the end of the run stay
            # pending: the recorder never learned their outcome.
            self.history.finalize()
        return self.metrics.summarize(self.sim.now)

    # -- failure injection --------------------------------------------------------------

    def crash_all(self) -> None:
        """Whole-cluster volatile failure (the paper's worst case)."""
        for node in self.nodes:
            node.crash()

    def crash_node(self, node_id: int) -> None:
        self.nodes[node_id].crash()

    def fail_node(self, node_id: int) -> int:
        """Mid-run node failure: crash the node and cut its clients off.

        Each of the node's client processes is interrupted (a client of
        a dead server cannot make progress; its in-flight operation is
        abandoned mid-protocol).  Membership detection is *not* part of
        this call — the fault injector schedules it separately after the
        plan's detection delay, modeling the failure-detector lag.

        Returns the number of operations severed mid-flight, so the
        injector can account for them instead of dropping them silently.
        """
        self.nodes[node_id].crash()
        severed = 0
        for client in self.clients:
            if (client.node.node_id == node_id
                    and client.process is not None
                    and client.process.is_alive):
                if client.in_flight is not None:
                    severed += 1
                client.process.interrupt("node crashed")
        return severed

    def restart_node(self, node_id: int) -> None:
        """Recover a crashed node from its own durable image and
        reconnect its clients (fresh sessions)."""
        recovered = recover_latest(self.nvm_log, [node_id])
        self.nodes[node_id].restart(recovered.entries)
        for client in self.clients:
            if client.node.node_id == node_id:
                client.restart()

    @property
    def engines(self):
        return [node.engine for node in self.nodes]


def run_simulation(model: DdpModel, workload: WorkloadSpec,
                   config: Optional[ClusterConfig] = None,
                   duration_ns: float = 300_000.0,
                   warmup_ns: float = 30_000.0,
                   tracer=None, metrics: Optional[Metrics] = None,
                   profile=None, monitor=None, faults=None,
                   history=None) -> Summary:
    """Build, run, and summarize one experiment.

    The defaults (300 us measured window after 30 us warmup) keep single
    runs fast while giving each of the 100 default clients on the order
    of a hundred completed requests under the fastest models.
    ``tracer`` / ``metrics`` / ``profile`` / ``monitor`` plug in
    observability sinks (see :mod:`repro.obs`) without changing the run.
    ``faults`` takes a :class:`repro.faults.FaultInjector`; with an
    empty plan the run is also unchanged (see :mod:`repro.faults`).
    ``history`` takes a :class:`repro.obs.history.HistoryRecorder` for
    black-box auditing (see :mod:`repro.audit`), likewise inert.
    """
    cluster = Cluster(model, config=config, workload=workload,
                      tracer=tracer, metrics=metrics, profile=profile,
                      monitor=monitor, faults=faults, history=history)
    return cluster.run(duration_ns, warmup_ns)
