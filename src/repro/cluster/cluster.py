"""Cluster assembly and the simulation harness.

:class:`Cluster` wires together the simulator, network, RDMA fabric,
nodes, transaction table, durable log, and closed-loop clients for one
DDP model.  :func:`run_simulation` is the one-call experiment runner
used by tests, examples, and every benchmark: build a cluster, warm it
up, measure for a simulated duration, and return the
:class:`~repro.analysis.metrics.Summary`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.metrics import Metrics, Summary
from repro.cluster.config import ClusterConfig
from repro.cluster.node import Node
from repro.core.model import DdpModel
from repro.net.network import Network
from repro.net.rdma import RdmaFabric
from repro.recovery.log import NvmLog
from repro.sim.engine import Simulator
from repro.sim.rng import SeededStream
from repro.txn.manager import TxnTable
from repro.workload.client import Client
from repro.workload.ycsb import RequestStream, WorkloadSpec

__all__ = ["Cluster", "run_simulation"]


class Cluster:
    """A full modeled deployment of one DDP model."""

    def __init__(self, model: DdpModel, config: Optional[ClusterConfig] = None,
                 workload: Optional[WorkloadSpec] = None, tracer=None,
                 version_board=None, metrics: Optional[Metrics] = None,
                 profile=None, monitor=None):
        self.model = model
        self.config = config or ClusterConfig()
        self.workload = workload
        self.tracer = tracer
        self.version_board = version_board
        self.sim = Simulator()
        self.profile = profile
        if profile is not None:
            profile.attach(self.sim)
        self.rng = SeededStream(self.config.seed, "cluster")
        self.metrics = metrics if metrics is not None else Metrics()
        self.network = Network(self.sim, self.config.network, tracer=tracer)
        self.rdma = RdmaFabric(self.sim, self.network)
        self.txn_table = TxnTable()
        self.nvm_log = NvmLog(range(self.config.servers))
        self.nodes: List[Node] = [
            Node(self.sim, node_id, self.config, model, self.network,
                 self.rdma, self.metrics, self.txn_table,
                 self.rng, nvm_log=self.nvm_log, tracer=tracer,
                 version_board=version_board)
            for node_id in range(self.config.servers)
        ]
        self.clients: List[Client] = []
        if workload is not None:
            self._build_clients(workload)
        self.monitor = monitor
        if monitor is not None:
            # Attached last so the monitor sees the fully-built cluster;
            # it samples on the simulation clock from here on.
            monitor.attach(self)

    def _build_clients(self, workload: WorkloadSpec) -> None:
        client_id = 0
        for node in self.nodes:
            for _ in range(self.config.clients_per_server):
                stream = RequestStream(
                    workload, self.rng.fork(f"client{client_id}"))
                self.clients.append(
                    Client(self.sim, client_id, node.engine, stream,
                           self.metrics))
                client_id += 1

    # -- running --------------------------------------------------------------------

    def start(self) -> None:
        """Launch node dispatchers and client loops."""
        for node in self.nodes:
            node.start()
        for client in self.clients:
            client.start()

    def run(self, duration_ns: float, warmup_ns: float = 0.0) -> Summary:
        """Start everything, run for ``duration_ns`` of simulated time,
        and summarize the measured interval (after ``warmup_ns``)."""
        self.start()
        if warmup_ns > 0:
            self.sim.run(until=warmup_ns)
        self.metrics.warmup_end_ns = self.sim.now
        self.sim.run(until=duration_ns)
        self.metrics.txn_conflicts = self.txn_table.conflicts
        self.metrics.txn_aborts = self.txn_table.aborted
        if self.profile is not None:
            self.profile.stop(self.sim.now)
        if self.monitor is not None:
            # Stop re-arming the sampling tick; anything the caller runs
            # on this simulator afterwards (e.g. recovery) is unsampled.
            self.monitor.stop(self.sim.now)
        return self.metrics.summarize(self.sim.now)

    # -- failure injection --------------------------------------------------------------

    def crash_all(self) -> None:
        """Whole-cluster volatile failure (the paper's worst case)."""
        for node in self.nodes:
            node.crash()

    def crash_node(self, node_id: int) -> None:
        self.nodes[node_id].crash()

    @property
    def engines(self):
        return [node.engine for node in self.nodes]


def run_simulation(model: DdpModel, workload: WorkloadSpec,
                   config: Optional[ClusterConfig] = None,
                   duration_ns: float = 300_000.0,
                   warmup_ns: float = 30_000.0,
                   tracer=None, metrics: Optional[Metrics] = None,
                   profile=None, monitor=None) -> Summary:
    """Build, run, and summarize one experiment.

    The defaults (300 us measured window after 30 us warmup) keep single
    runs fast while giving each of the 100 default clients on the order
    of a hundred completed requests under the fastest models.
    ``tracer`` / ``metrics`` / ``profile`` / ``monitor`` plug in
    observability sinks (see :mod:`repro.obs`) without changing the run.
    """
    cluster = Cluster(model, config=config, workload=workload,
                      tracer=tracer, metrics=metrics, profile=profile,
                      monitor=monitor)
    return cluster.run(duration_ns, warmup_ns)
