"""B-tree store (the paper's "B-Tree", after Google's cpp-btree).

A classic B-tree: values live in every node, splits on the way down
(preemptive splitting), merge/borrow on delete.  The branching factor
defaults to 16, giving shallow trees whose depth the cost oracle counts.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.store.base import KvStore

__all__ = ["BTreeStore"]


class _BNode:
    __slots__ = ("keys", "values", "children")

    def __init__(self):
        self.keys: List[int] = []
        self.values: List[Any] = []
        self.children: List[_BNode] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTreeStore(KvStore):
    """B-tree of minimum degree ``t`` (each node holds t-1..2t-1 keys)."""

    name = "btree"

    def __init__(self, min_degree: int = 8):
        if min_degree < 2:
            raise ValueError(f"min_degree must be >= 2, got {min_degree}")
        self._t = min_degree
        self._root = _BNode()
        self._size = 0

    # -- search helpers ----------------------------------------------------------

    @staticmethod
    def _find_slot(node: _BNode, key: int) -> int:
        """Index of the first key >= ``key`` (binary search)."""
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if node.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- KvStore API ----------------------------------------------------------------

    def get(self, key: int) -> Optional[Any]:
        node = self._root
        while True:
            slot = self._find_slot(node, key)
            if slot < len(node.keys) and node.keys[slot] == key:
                return node.values[slot]
            if node.is_leaf:
                return None
            node = node.children[slot]

    def put(self, key: int, value: Any) -> None:
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _BNode()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, value)

    def _split_child(self, parent: _BNode, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _BNode()
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        parent.children.insert(index + 1, sibling)
        child.keys = child.keys[:t - 1]
        child.values = child.values[:t - 1]

    def _insert_nonfull(self, node: _BNode, key: int, value: Any) -> None:
        while True:
            slot = self._find_slot(node, key)
            if slot < len(node.keys) and node.keys[slot] == key:
                node.values[slot] = value
                return
            if node.is_leaf:
                node.keys.insert(slot, key)
                node.values.insert(slot, value)
                self._size += 1
                return
            child = node.children[slot]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, slot)
                if key == node.keys[slot]:
                    node.values[slot] = value
                    return
                if key > node.keys[slot]:
                    slot += 1
            node = node.children[slot]

    def delete(self, key: int) -> bool:
        if self.get(key) is None:
            return False
        self._delete_from(self._root, key)
        if not self._root.keys and not self._root.is_leaf:
            self._root = self._root.children[0]
        self._size -= 1
        return True

    def _delete_from(self, node: _BNode, key: int) -> None:
        t = self._t
        slot = self._find_slot(node, key)
        if slot < len(node.keys) and node.keys[slot] == key:
            if node.is_leaf:
                node.keys.pop(slot)
                node.values.pop(slot)
                return
            left, right = node.children[slot], node.children[slot + 1]
            if len(left.keys) >= t:
                pred_key, pred_val = self._max_entry(left)
                node.keys[slot], node.values[slot] = pred_key, pred_val
                self._delete_from(left, pred_key)
            elif len(right.keys) >= t:
                succ_key, succ_val = self._min_entry(right)
                node.keys[slot], node.values[slot] = succ_key, succ_val
                self._delete_from(right, succ_key)
            else:
                self._merge_children(node, slot)
                self._delete_from(left, key)
            return
        if node.is_leaf:
            return  # key absent (checked by caller)
        child = node.children[slot]
        if len(child.keys) < t:
            slot = self._fill_child(node, slot)
            child = node.children[slot] if slot < len(node.children) else node.children[-1]
            # After a merge the key may now live in the merged child.
            self._delete_from(child, key)
            return
        self._delete_from(child, key)

    def _fill_child(self, node: _BNode, slot: int) -> int:
        """Ensure children[slot] has >= t keys by borrowing or merging.
        Returns the (possibly shifted) slot to descend into."""
        t = self._t
        child = node.children[slot]
        if slot > 0 and len(node.children[slot - 1].keys) >= t:
            left = node.children[slot - 1]
            child.keys.insert(0, node.keys[slot - 1])
            child.values.insert(0, node.values[slot - 1])
            node.keys[slot - 1] = left.keys.pop()
            node.values[slot - 1] = left.values.pop()
            if not left.is_leaf:
                child.children.insert(0, left.children.pop())
            return slot
        if slot < len(node.keys) and len(node.children[slot + 1].keys) >= t:
            right = node.children[slot + 1]
            child.keys.append(node.keys[slot])
            child.values.append(node.values[slot])
            node.keys[slot] = right.keys.pop(0)
            node.values[slot] = right.values.pop(0)
            if not right.is_leaf:
                child.children.append(right.children.pop(0))
            return slot
        if slot < len(node.keys):
            self._merge_children(node, slot)
            return slot
        self._merge_children(node, slot - 1)
        return slot - 1

    def _merge_children(self, node: _BNode, slot: int) -> None:
        left = node.children[slot]
        right = node.children.pop(slot + 1)
        left.keys.append(node.keys.pop(slot))
        left.values.append(node.values.pop(slot))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)

    @staticmethod
    def _max_entry(node: _BNode) -> Tuple[int, Any]:
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    @staticmethod
    def _min_entry(node: _BNode) -> Tuple[int, Any]:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    def __len__(self) -> int:
        return self._size

    def _walk_length(self, key: int) -> int:
        node = self._root
        visits = 0
        while True:
            visits += 1
            slot = self._find_slot(node, key)
            if slot < len(node.keys) and node.keys[slot] == key:
                return visits
            if node.is_leaf:
                return visits
            node = node.children[slot]

    def items(self) -> Iterator[Tuple[int, Any]]:
        yield from self._iter_node(self._root)

    def _iter_node(self, node: _BNode) -> Iterator[Tuple[int, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for index, key in enumerate(node.keys):
            yield from self._iter_node(node.children[index])
            yield (key, node.values[index])
        yield from self._iter_node(node.children[-1])

    @property
    def depth(self) -> int:
        node, levels = self._root, 1
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels
