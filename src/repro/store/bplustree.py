"""B+-tree store (the paper's "BPlusTree", after TLX).

Values live only in the leaves; leaves are chained for range scans.
Insertions split full nodes on the way back up; deletion uses lazy
underflow (keys are removed from leaves, structure merges only when a
leaf empties), the common practical simplification.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.store.base import KvStore

__all__ = ["BPlusTreeStore"]


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys: List[int] = []
        self.values: List[Any] = []
        self.next: Optional[_Leaf] = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys: List[int] = []          # separators
        self.children: List[Any] = []      # _Inner or _Leaf


def _bisect(keys: List[int], key: int) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BPlusTreeStore(KvStore):
    """B+-tree with ``order`` children per inner node and ``order``
    entries per leaf."""

    name = "bplustree"

    def __init__(self, order: int = 16):
        if order < 4:
            raise ValueError(f"order must be >= 4, got {order}")
        self._order = order
        self._root: Any = _Leaf()
        self._size = 0

    # -- navigation ---------------------------------------------------------------

    def _descend(self, key: int) -> Tuple[_Leaf, List[Tuple[_Inner, int]]]:
        """Walk to the leaf for ``key``; return it and the (parent, slot)
        path for split propagation."""
        path: List[Tuple[_Inner, int]] = []
        node = self._root
        while isinstance(node, _Inner):
            slot = _bisect(node.keys, key)
            path.append((node, slot))
            node = node.children[slot]
        return node, path

    # -- KvStore API ------------------------------------------------------------------

    def get(self, key: int) -> Optional[Any]:
        leaf, _path = self._descend(key)
        slot = _bisect(leaf.keys, key) - 1
        if slot >= 0 and leaf.keys[slot] == key:
            return leaf.values[slot]
        return None

    def put(self, key: int, value: Any) -> None:
        leaf, path = self._descend(key)
        slot = _bisect(leaf.keys, key) - 1
        if slot >= 0 and leaf.keys[slot] == key:
            leaf.values[slot] = value
            return
        insert_at = slot + 1
        leaf.keys.insert(insert_at, key)
        leaf.values.insert(insert_at, value)
        self._size += 1
        if len(leaf.keys) >= self._order:
            self._split_leaf(leaf, path)

    def _split_leaf(self, leaf: _Leaf, path: List[Tuple[_Inner, int]]) -> None:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        self._insert_separator(path, right.keys[0], right)

    def _insert_separator(self, path: List[Tuple[_Inner, int]], separator: int,
                          right_child: Any) -> None:
        while path:
            parent, slot = path.pop()
            parent.keys.insert(slot, separator)
            parent.children.insert(slot + 1, right_child)
            if len(parent.children) <= self._order:
                return
            mid = len(parent.keys) // 2
            separator = parent.keys[mid]
            sibling = _Inner()
            sibling.keys = parent.keys[mid + 1:]
            sibling.children = parent.children[mid + 1:]
            parent.keys = parent.keys[:mid]
            parent.children = parent.children[:mid + 1]
            right_child = sibling
        new_root = _Inner()
        new_root.keys = [separator]
        new_root.children = [self._root, right_child]
        self._root = new_root

    def delete(self, key: int) -> bool:
        leaf, path = self._descend(key)
        slot = _bisect(leaf.keys, key) - 1
        if slot < 0 or leaf.keys[slot] != key:
            return False
        leaf.keys.pop(slot)
        leaf.values.pop(slot)
        self._size -= 1
        if not leaf.keys and path:
            self._drop_empty_leaf(leaf, path)
        return True

    def _drop_empty_leaf(self, leaf: _Leaf, path: List[Tuple[_Inner, int]]) -> None:
        parent, slot = path[-1]
        parent.children.pop(slot)
        if slot > 0:
            parent.keys.pop(slot - 1)
            parent.children[slot - 1].next = leaf.next
        elif parent.keys:
            parent.keys.pop(0)
        # Collapse degenerate roots.
        while isinstance(self._root, _Inner) and len(self._root.children) == 1:
            self._root = self._root.children[0]

    def __len__(self) -> int:
        return self._size

    def _walk_length(self, key: int) -> int:
        visits = 1
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[_bisect(node.keys, key)]
            visits += 1
        return visits

    # -- ordered access -----------------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, Any]]:
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        leaf: Optional[_Leaf] = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def range(self, low: int, high: int) -> List[Tuple[int, Any]]:
        """All (key, value) with ``low <= key <= high`` via the leaf chain."""
        leaf, _path = self._descend(low)
        result: List[Tuple[int, Any]] = []
        current: Optional[_Leaf] = leaf
        while current is not None:
            for key, value in zip(current.keys, current.values):
                if key > high:
                    return result
                if key >= low:
                    result.append((key, value))
            current = current.next
        return result

    @property
    def depth(self) -> int:
        node, levels = self._root, 1
        while isinstance(node, _Inner):
            node = node.children[0]
            levels += 1
        return levels
