"""AVL-balanced sorted map (the paper's "Map" store).

A classic AVL tree with iterative lookup (so the cost oracle can count
the exact visit depth) and recursive rebalancing insert/delete.  Also
provides ordered iteration and range queries, which the examples use.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.store.base import KvStore

__all__ = ["SortedMapStore"]


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: int, value: Any):
        self.key = key
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.height = 1


def _height(node: Optional[_Node]) -> int:
    return node.height if node else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(node: _Node) -> _Node:
    pivot = node.left
    node.left = pivot.right
    pivot.right = node
    _update(node)
    _update(pivot)
    return pivot


def _rotate_left(node: _Node) -> _Node:
    pivot = node.right
    node.right = pivot.left
    pivot.left = node
    _update(node)
    _update(pivot)
    return pivot


def _rebalance(node: _Node) -> _Node:
    _update(node)
    balance = _balance_factor(node)
    if balance > 1:
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class SortedMapStore(KvStore):
    """Ordered map with O(log n) operations and range scans."""

    name = "sortedmap"

    def __init__(self):
        self._root: Optional[_Node] = None
        self._size = 0

    # -- KvStore API --------------------------------------------------------------

    def get(self, key: int) -> Optional[Any]:
        node = self._root
        while node is not None:
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return None

    def put(self, key: int, value: Any) -> None:
        self._root = self._insert(self._root, key, value)

    def _insert(self, node: Optional[_Node], key: int, value: Any) -> _Node:
        if node is None:
            self._size += 1
            return _Node(key, value)
        if key == node.key:
            node.value = value
            return node
        if key < node.key:
            node.left = self._insert(node.left, key, value)
        else:
            node.right = self._insert(node.right, key, value)
        return _rebalance(node)

    def delete(self, key: int) -> bool:
        before = self._size
        self._root = self._remove(self._root, key)
        return self._size < before

    def _remove(self, node: Optional[_Node], key: int) -> Optional[_Node]:
        if node is None:
            return None
        if key < node.key:
            node.left = self._remove(node.left, key)
        elif key > node.key:
            node.right = self._remove(node.right, key)
        else:
            self._size -= 1
            if node.left is None:
                return node.right
            if node.right is None:
                return node.left
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key, node.value = successor.key, successor.value
            # Remove the successor from the right subtree; bump the size
            # back since that removal decrements it again.
            self._size += 1
            node.right = self._remove(node.right, successor.key)
        return _rebalance(node)

    def __len__(self) -> int:
        return self._size

    def _walk_length(self, key: int) -> int:
        node = self._root
        visits = 0
        while node is not None:
            visits += 1
            if key == node.key:
                return visits
            node = node.left if key < node.key else node.right
        return max(visits, 1)

    # -- ordered operations -----------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, Any]]:
        yield from self._inorder(self._root)

    def _inorder(self, node: Optional[_Node]) -> Iterator[Tuple[int, Any]]:
        if node is None:
            return
        yield from self._inorder(node.left)
        yield (node.key, node.value)
        yield from self._inorder(node.right)

    def range(self, low: int, high: int) -> List[Tuple[int, Any]]:
        """All (key, value) with ``low <= key <= high``, in order."""
        result: List[Tuple[int, Any]] = []
        self._range(self._root, low, high, result)
        return result

    def _range(self, node: Optional[_Node], low: int, high: int,
               out: List[Tuple[int, Any]]) -> None:
        if node is None:
            return
        if node.key > low:
            self._range(node.left, low, high, out)
        if low <= node.key <= high:
            out.append((node.key, node.value))
        if node.key < high:
            self._range(node.right, low, high, out)

    def min_key(self) -> Optional[int]:
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node.key

    def max_key(self) -> Optional[int]:
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return node.key

    @property
    def height(self) -> int:
        return _height(self._root)
