"""Open-addressing hash table (the paper's "HashTable" store).

Linear probing with tombstones and load-factor-driven resizing.  The
walk length for the cost oracle is the actual probe distance, so hot
tables near the resize threshold genuinely cost more.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.store.base import KvStore

__all__ = ["HashTableStore"]

_EMPTY = object()
_TOMBSTONE = object()


class HashTableStore(KvStore):
    """Linear-probing hash table with power-of-two capacity."""

    name = "hashtable"

    def __init__(self, initial_capacity: int = 64, max_load: float = 0.66):
        if initial_capacity < 8 or initial_capacity & (initial_capacity - 1):
            raise ValueError("initial_capacity must be a power of two >= 8")
        if not 0.1 <= max_load < 1.0:
            raise ValueError(f"max_load out of range: {max_load}")
        self._capacity = initial_capacity
        self._max_load = max_load
        self._keys: List[Any] = [_EMPTY] * initial_capacity
        self._values: List[Any] = [None] * initial_capacity
        self._size = 0
        self._used = 0  # live entries + tombstones

    def _slot(self, key: int) -> int:
        # Fibonacci hashing spreads sequential integer keys well.
        return (key * 2654435769) & (self._capacity - 1)

    def _probe(self, key: int) -> Tuple[int, int, Optional[int]]:
        """Return (index_of_key_or_insertion_point, probe_count,
        first_tombstone_index)."""
        index = self._slot(key)
        probes = 1
        first_tombstone = None
        while True:
            slot_key = self._keys[index]
            if slot_key is _EMPTY:
                return index, probes, first_tombstone
            if slot_key is _TOMBSTONE:
                if first_tombstone is None:
                    first_tombstone = index
            elif slot_key == key:
                return index, probes, first_tombstone
            index = (index + 1) & (self._capacity - 1)
            probes += 1

    def _resize(self, new_capacity: int) -> None:
        old_items = list(self.items())
        self._capacity = new_capacity
        self._keys = [_EMPTY] * new_capacity
        self._values = [None] * new_capacity
        self._size = 0
        self._used = 0
        for key, value in old_items:
            self.put(key, value)

    # -- KvStore API -------------------------------------------------------------

    def get(self, key: int) -> Optional[Any]:
        index, _probes, _tomb = self._probe(key)
        if self._keys[index] is _EMPTY or self._keys[index] is _TOMBSTONE:
            return None
        return self._values[index]

    def put(self, key: int, value: Any) -> None:
        if (self._used + 1) / self._capacity > self._max_load:
            self._resize(self._capacity * 2)
        index, _probes, first_tombstone = self._probe(key)
        if self._keys[index] == key and self._keys[index] is not _EMPTY:
            self._values[index] = value
            return
        target = first_tombstone if first_tombstone is not None else index
        if self._keys[target] is not _TOMBSTONE:
            self._used += 1
        self._keys[target] = key
        self._values[target] = value
        self._size += 1

    def delete(self, key: int) -> bool:
        index, _probes, _tomb = self._probe(key)
        if self._keys[index] is _EMPTY or self._keys[index] is _TOMBSTONE:
            return False
        self._keys[index] = _TOMBSTONE
        self._values[index] = None
        self._size -= 1
        return True

    def __len__(self) -> int:
        return self._size

    def _walk_length(self, key: int) -> int:
        _index, probes, _tomb = self._probe(key)
        return probes

    def items(self) -> Iterator[Tuple[int, Any]]:
        for slot_key, value in zip(self._keys, self._values):
            if slot_key is not _EMPTY and slot_key is not _TOMBSTONE:
                yield slot_key, value

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def load_factor(self) -> float:
        return self._size / self._capacity
