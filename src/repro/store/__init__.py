"""Key-value store substrates (the paper's evaluated applications).

All stores implement :class:`repro.store.base.KvStore`: they hold real
data and act as deterministic access-cost oracles for the protocol
engine.  ``make_store`` builds one by name.
"""

from repro.store.base import KvStore, VISIT_NS
from repro.store.bplustree import BPlusTreeStore
from repro.store.btree import BTreeStore
from repro.store.hashtable import HashTableStore
from repro.store.memcachedlike import MemcachedStore, SlabClass
from repro.store.sortedmap import SortedMapStore

__all__ = [
    "BPlusTreeStore",
    "BTreeStore",
    "HashTableStore",
    "KvStore",
    "MemcachedStore",
    "STORE_TYPES",
    "SlabClass",
    "SortedMapStore",
    "VISIT_NS",
    "make_store",
]

STORE_TYPES = {
    "hashtable": HashTableStore,
    "sortedmap": SortedMapStore,
    "btree": BTreeStore,
    "bplustree": BPlusTreeStore,
    "memcached": MemcachedStore,
}


def make_store(name: str) -> KvStore:
    """Instantiate a store by name (see :data:`STORE_TYPES`)."""
    try:
        return STORE_TYPES[name]()
    except KeyError:
        raise ValueError(
            f"unknown store {name!r}; choose from {sorted(STORE_TYPES)}"
        ) from None
