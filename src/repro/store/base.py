"""Key-value store interface used by the protocol engine and examples.

The paper evaluates memcached and simpler in-memory stores (HashTable,
Map, B-Tree, B+Tree) under YCSB.  Our stores play two roles:

1. **Data plane** — they actually hold the key/value pairs at each node
   (the examples and recovery tests read them back).
2. **Cost oracle** — ``read_cost``/``write_cost`` return the CPU time of
   the structure walk (number of node/bucket visits times a per-visit
   charge), which the protocol engine adds to request processing time.

Costs are deterministic functions of the structure's current shape, so
runs are reproducible.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["KvStore", "VISIT_NS"]

VISIT_NS = 15.0
"""CPU charge per node/bucket visit during a structure walk (roughly an
L1/L2-resident pointer chase on the paper's 2 GHz cores)."""


class KvStore(abc.ABC):
    """Abstract in-memory key-value store."""

    name: str = "kvstore"

    @abc.abstractmethod
    def get(self, key: int) -> Optional[Any]:
        """Return the value for ``key`` or None."""

    @abc.abstractmethod
    def put(self, key: int, value: Any) -> None:
        """Insert or update ``key``."""

    @abc.abstractmethod
    def delete(self, key: int) -> bool:
        """Remove ``key``; return whether it was present."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of keys stored."""

    @abc.abstractmethod
    def _walk_length(self, key: int) -> int:
        """Number of node/bucket visits to locate ``key``."""

    # -- cost oracle -----------------------------------------------------------

    def read_cost(self, key: int) -> float:
        """CPU ns for a lookup of ``key`` in the current structure."""
        return self._walk_length(key) * VISIT_NS

    def write_cost(self, key: int, value: Any) -> float:
        """CPU ns for an insert/update of ``key``.

        By default a write walks like a read plus one modification visit.
        """
        return (self._walk_length(key) + 1) * VISIT_NS

    # -- conveniences ------------------------------------------------------------

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate (key, value) pairs; order is store-specific."""
        raise NotImplementedError

    def keys(self) -> List[int]:
        return [k for k, _ in self.items()]
