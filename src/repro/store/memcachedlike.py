"""Memcached-like store: slab classes + per-class LRU eviction.

Mirrors memcached's architecture: items are placed in the smallest slab
class whose chunk fits them; each class has a bounded number of chunks
and evicts its least-recently-used item when full.  Lookup is a dict
(memcached's hash table), so the walk is short; the interesting behavior
is eviction, which the capacity tests exercise.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.store.base import KvStore

__all__ = ["MemcachedStore", "SlabClass"]


class SlabClass:
    """One slab class: fixed chunk size, bounded chunk count, LRU order."""

    def __init__(self, chunk_bytes: int, max_chunks: int):
        self.chunk_bytes = chunk_bytes
        self.max_chunks = max_chunks
        self.lru: OrderedDict[int, Any] = OrderedDict()
        self.evictions = 0

    @property
    def used_chunks(self) -> int:
        return len(self.lru)

    def touch(self, key: int) -> None:
        self.lru.move_to_end(key)

    def insert(self, key: int, value: Any) -> Optional[int]:
        """Insert; return an evicted key if the class was full."""
        evicted = None
        if key not in self.lru and len(self.lru) >= self.max_chunks:
            evicted, _ = self.lru.popitem(last=False)
            self.evictions += 1
        self.lru[key] = value
        self.lru.move_to_end(key)
        return evicted

    def remove(self, key: int) -> bool:
        return self.lru.pop(key, None) is not None


def _sizeof(value: Any) -> int:
    """Approximate item size for slab-class selection."""
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, (list, tuple)):
        return 8 * max(len(value), 1)
    return 64


class MemcachedStore(KvStore):
    """Slab-allocated LRU cache with a hash-table index."""

    name = "memcached"

    def __init__(self, capacity_bytes: int = 4 * 1024 * 1024,
                 min_chunk: int = 64, growth_factor: float = 2.0,
                 num_classes: int = 8):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self._index: Dict[int, int] = {}       # key -> slab class id
        self._classes: List[SlabClass] = []
        per_class = capacity_bytes // num_classes
        chunk = min_chunk
        for _ in range(num_classes):
            self._classes.append(SlabClass(chunk, max(1, per_class // chunk)))
            chunk = int(chunk * growth_factor)

    def _class_for(self, value: Any) -> int:
        size = _sizeof(value)
        for class_id, slab in enumerate(self._classes):
            if size <= slab.chunk_bytes:
                return class_id
        return len(self._classes) - 1

    # -- KvStore API ---------------------------------------------------------------

    def get(self, key: int) -> Optional[Any]:
        class_id = self._index.get(key)
        if class_id is None:
            return None
        slab = self._classes[class_id]
        value = slab.lru.get(key)
        if value is not None:
            slab.touch(key)
        return value

    def put(self, key: int, value: Any) -> None:
        old_class = self._index.get(key)
        new_class = self._class_for(value)
        if old_class is not None and old_class != new_class:
            self._classes[old_class].remove(key)
        evicted = self._classes[new_class].insert(key, value)
        self._index[key] = new_class
        if evicted is not None:
            self._index.pop(evicted, None)

    def delete(self, key: int) -> bool:
        class_id = self._index.pop(key, None)
        if class_id is None:
            return False
        return self._classes[class_id].remove(key)

    def __len__(self) -> int:
        return len(self._index)

    def _walk_length(self, key: int) -> int:
        # Hash-table index probe plus the slab-chunk access.
        return 2

    def items(self) -> Iterator[Tuple[int, Any]]:
        for key, class_id in self._index.items():
            yield key, self._classes[class_id].lru[key]

    # -- introspection --------------------------------------------------------------

    @property
    def total_evictions(self) -> int:
        return sum(slab.evictions for slab in self._classes)

    def slab_stats(self) -> List[Tuple[int, int, int]]:
        """Per-class (chunk_bytes, used_chunks, max_chunks)."""
        return [(s.chunk_bytes, s.used_chunks, s.max_chunks)
                for s in self._classes]
