"""Per-key replica state kept by every node.

Every node holds a replica of every key (full replication, as in Hermes
and the paper).  For each key a node tracks:

* the *visible* version/value (what a read may return, subject to the
  DDP model's stall rules),
* the *persisted* version (highest version durable in local NVM),
* in-flight invalidations (INV received but VAL not yet seen), which
  make the key *transient* under invalidation-based consistency models,
* buffered causal updates waiting for their happens-before history.

Versions are Lamport-style ``(seq, node_id)`` tuples: ``seq`` is one
more than the highest sequence the coordinator has seen for the key, and
``node_id`` breaks ties, giving all nodes the same total order over
concurrent writes to a key (as in Hermes' logical timestamps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.sim.engine import Simulator
from repro.sim.sync import Condition

__all__ = ["Version", "ZERO_VERSION", "KeyReplica", "ReplicaTable"]

Version = Tuple[int, int]
ZERO_VERSION: Version = (0, -1)


class KeyReplica:
    """State of one key at one node."""

    __slots__ = (
        "key", "persisted_version", "persisted_value",
        "cluster_persisted_version", "applied_version", "applied_value",
        "inflight_invs", "condition", "persist_requested",
        "persist_target", "persist_active", "txn_undo", "observer",
    )

    def __init__(self, sim: Simulator, key: int, observer=None):
        self.key = key
        # Optional callback ``observer(kind, key, version)`` fired on
        # "apply" and "persist" advances — the hook the VP/DP measurement
        # (repro.analysis.points) attaches to.
        self.observer = observer
        # Highest version applied to the local volatile hierarchy — "the
        # latest version in the volatile memory hierarchy" reads return
        # (subject to the DDP model's stall and value-selection rules).
        self.applied_version: Version = ZERO_VERSION
        self.applied_value: Any = None
        # Highest version durable in *local* NVM, and its value (reads
        # under <Causal/Eventual, Synchronous> return this).
        self.persisted_version: Version = ZERO_VERSION
        self.persisted_value: Any = None
        # Highest version known durable at *all* replicas (learned from
        # VAL_p under Read-Enforced persistency).
        self.cluster_persisted_version: Version = ZERO_VERSION
        # op_ids of INVs applied but not yet VALidated (key is transient).
        self.inflight_invs: Set[int] = set()
        # Wakes read/write stalls when any of the above changes.
        self.condition = Condition(sim, name=f"key{key}")
        # Persist write-combining state: the highest version ever asked to
        # persist, the latest not-yet-started (version, value) target (the
        # memory controller's write-pending slot for this key), and
        # whether a persist loop is currently draining this key.
        self.persist_requested: Version = ZERO_VERSION
        self.persist_target: Optional[Tuple[Version, Any]] = None
        self.persist_active = False
        # Pre-images of in-flight transactional writes, keyed by the
        # writing version, so a squashed transaction can be undone
        # ("if the Xaction fails, none of the updates are performed").
        self.txn_undo: Dict[Version, Tuple[Version, Any]] = {}

    # -- state transitions -----------------------------------------------------

    def next_version(self, node_id: int) -> Version:
        """Allocate the version for a new local write of this key."""
        return (self.applied_version[0] + 1, node_id)

    def apply(self, version: Version, value: Any) -> bool:
        """Install an update into the volatile hierarchy.

        Returns True if the update advanced the applied version (older
        updates arriving late are ignored, last-writer-wins).
        """
        if version <= self.applied_version:
            return False
        self.applied_version = version
        self.applied_value = value
        self.condition.notify()
        if self.observer is not None:
            self.observer("apply", self.key, version)
        return True

    def mark_persisted(self, version: Version, value: Any) -> bool:
        """Record that ``version`` is durable in local NVM."""
        if version <= self.persisted_version:
            return False
        self.persisted_version = version
        self.persisted_value = value
        self.condition.notify()
        if self.observer is not None:
            self.observer("persist", self.key, version)
        return True

    def mark_cluster_persisted(self, version: Version) -> bool:
        """Record that ``version`` is durable at every replica node."""
        if version <= self.cluster_persisted_version:
            return False
        self.cluster_persisted_version = version
        self.condition.notify()
        return True

    def record_undo(self, version: Version) -> None:
        """Snapshot the pre-image before a transactional write applies."""
        self.txn_undo[version] = (self.applied_version, self.applied_value)

    def commit_undo(self, version: Version) -> None:
        """The write's transaction committed; the pre-image is obsolete."""
        self.txn_undo.pop(version, None)

    def absorb_superseded(self, version: Version, value: Any) -> None:
        """A write lost the last-writer-wins race against a pending
        transactional write: fold it into that write's pre-image, so a
        later abort restores the *newest* superseded state instead of
        resurrecting an older one."""
        pre_image = self.txn_undo.get(self.applied_version)
        if pre_image is not None and pre_image[0] < version:
            self.txn_undo[self.applied_version] = (version, value)

    def revert(self, version: Version) -> bool:
        """Undo a squashed transactional write, if still in effect."""
        pre_image = self.txn_undo.pop(version, None)
        if pre_image is None or self.applied_version != version:
            return False
        self.applied_version, self.applied_value = pre_image
        self.condition.notify()
        return True

    def begin_inv(self, op_id: int) -> None:
        self.inflight_invs.add(op_id)

    def end_inv(self, op_id: int) -> None:
        self.inflight_invs.discard(op_id)
        self.condition.notify()

    @property
    def transient(self) -> bool:
        """True while any invalidation is outstanding on this key."""
        return bool(self.inflight_invs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KeyReplica(key={self.key}, visible={self.visible_version}, "
                f"applied={self.applied_version}, "
                f"persisted={self.persisted_version}, "
                f"transient={self.transient})")


class ReplicaTable:
    """All key replicas at one node, created lazily."""

    def __init__(self, sim: Simulator, node_id: int, observer=None):
        self.sim = sim
        self.node_id = node_id
        self.observer = observer
        self._replicas: Dict[int, KeyReplica] = {}

    def get(self, key: int) -> KeyReplica:
        replica = self._replicas.get(key)
        if replica is None:
            replica = KeyReplica(self.sim, key, observer=self.observer)
            self._replicas[key] = replica
        return replica

    def __contains__(self, key: int) -> bool:
        return key in self._replicas

    def __iter__(self):
        return iter(self._replicas.values())

    def __len__(self) -> int:
        return len(self._replicas)

    def keys(self) -> List[int]:
        return list(self._replicas)
