"""Behavioral policies for consistency and persistency models.

The protocol engine (:mod:`repro.core.engine`) is one parameterized
state machine; these policy objects encode how each of the paper's
models shapes it (Sections 4-5):

Consistency policies decide *message flow* (invalidation rounds vs lazy
updates), *write completion* (when the client is acknowledged with
respect to replica visibility), and *read visibility stalls*.

Persistency policies decide *when persists happen* (inline at apply,
eagerly in background, lazily, or at scope ends), *write completion with
respect to durability* (Strict stalls writes until persisted
everywhere), and *read durability stalls* (Read-Enforced persistency
stalls reads; Synchronous makes reads return the persisted version).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.model import Consistency, DdpModel, Persistency

__all__ = [
    "PersistMode",
    "ConsistencyPolicy",
    "PersistencyPolicy",
    "policy_for",
    "CONSISTENCY_POLICIES",
    "PERSISTENCY_POLICIES",
]


class PersistMode(enum.Enum):
    """When a replica pushes an update into NVM."""

    INLINE = "inline"          # at apply time, before acknowledging (Strict/Sync)
    EAGER_BACKGROUND = "eager"  # immediately, off the critical path (Read-Enf.)
    LAZY_BACKGROUND = "lazy"    # after a lazy delay (Eventual)
    ON_SCOPE_END = "scope"      # only when the scope's Persist call arrives


@dataclass(frozen=True)
class ConsistencyPolicy:
    """How a consistency model shapes the protocol."""

    model: Consistency
    uses_inv: bool
    """INV/ACK/VAL rounds (Linearizable, Read-Enforced, Transactional)
    versus lazy UPD propagation (Causal, Eventual)."""

    write_waits_for_acks: bool
    """Client write completion waits for all follower ACKs (Linearizable
    only; Read-Enforced/Transactional complete after the local update and
    broadcast)."""

    read_stalls_on_transient: bool
    """Reads stall while the key has un-VALidated invalidations
    (Linearizable and Read-Enforced consistency)."""

    write_stalls_on_transient: bool
    """A new write to a transient key waits for the outstanding write to
    validate first (serializing conflicting writers, as the Hermes-style
    coordinator cannot process another request for the key mid-write)."""

    transactional: bool = False
    causal: bool = False
    lazy_propagation: bool = False
    """Eventual consistency: UPDs are sent after a lazy delay."""


@dataclass(frozen=True)
class PersistencyPolicy:
    """How a persistency model shapes the protocol."""

    model: Persistency
    persist_mode: PersistMode

    write_waits_for_persist_everywhere: bool
    """Strict: the client write does not complete until the update is
    durable in the NVM of every replica node."""

    read_requires_applied_persisted: bool
    """Read-Enforced persistency: a read stalls until the latest visible
    version of the key is persisted (cluster-wide where the protocol has
    that information, i.e. VAL_p under invalidation-based consistency;
    locally under Causal/Eventual, where no global signal exists)."""

    read_returns_persisted: bool
    """Synchronous persistency under weak consistency: reads return the
    latest *persisted* version so that every read value is recoverable
    (paper Figure 2(f))."""

    dual_acks: bool
    """Decouple ACK_c from ACK_p (Read-Enforced persistency under
    invalidation-based consistency, paper Figure 3(a))."""

    deps_require_persist: bool
    """Causal consistency: a buffered update's dependency counts as
    satisfied only once the dependency is persisted (Synchronous), not
    merely applied."""


CONSISTENCY_POLICIES = {
    Consistency.LINEARIZABLE: ConsistencyPolicy(
        model=Consistency.LINEARIZABLE,
        uses_inv=True,
        write_waits_for_acks=True,
        read_stalls_on_transient=True,
        write_stalls_on_transient=True,
    ),
    Consistency.READ_ENFORCED: ConsistencyPolicy(
        model=Consistency.READ_ENFORCED,
        uses_inv=True,
        write_waits_for_acks=False,
        read_stalls_on_transient=True,
        write_stalls_on_transient=True,
    ),
    Consistency.TRANSACTIONAL: ConsistencyPolicy(
        model=Consistency.TRANSACTIONAL,
        uses_inv=True,
        write_waits_for_acks=False,
        read_stalls_on_transient=False,
        write_stalls_on_transient=False,
        transactional=True,
    ),
    Consistency.CAUSAL: ConsistencyPolicy(
        model=Consistency.CAUSAL,
        uses_inv=False,
        write_waits_for_acks=False,
        read_stalls_on_transient=False,
        write_stalls_on_transient=False,
        causal=True,
    ),
    Consistency.EVENTUAL: ConsistencyPolicy(
        model=Consistency.EVENTUAL,
        uses_inv=False,
        write_waits_for_acks=False,
        read_stalls_on_transient=False,
        write_stalls_on_transient=False,
        lazy_propagation=True,
    ),
}


PERSISTENCY_POLICIES = {
    Persistency.STRICT: PersistencyPolicy(
        model=Persistency.STRICT,
        persist_mode=PersistMode.INLINE,
        write_waits_for_persist_everywhere=True,
        read_requires_applied_persisted=False,
        read_returns_persisted=False,
        dual_acks=False,
        deps_require_persist=True,
    ),
    Persistency.SYNCHRONOUS: PersistencyPolicy(
        model=Persistency.SYNCHRONOUS,
        persist_mode=PersistMode.INLINE,
        write_waits_for_persist_everywhere=False,
        read_requires_applied_persisted=False,
        read_returns_persisted=True,
        dual_acks=False,
        deps_require_persist=True,
    ),
    Persistency.READ_ENFORCED: PersistencyPolicy(
        model=Persistency.READ_ENFORCED,
        persist_mode=PersistMode.EAGER_BACKGROUND,
        write_waits_for_persist_everywhere=False,
        read_requires_applied_persisted=True,
        read_returns_persisted=False,
        dual_acks=True,
        deps_require_persist=False,
    ),
    Persistency.SCOPE: PersistencyPolicy(
        model=Persistency.SCOPE,
        persist_mode=PersistMode.ON_SCOPE_END,
        write_waits_for_persist_everywhere=False,
        read_requires_applied_persisted=False,
        read_returns_persisted=False,
        dual_acks=False,
        deps_require_persist=False,
    ),
    Persistency.EVENTUAL: PersistencyPolicy(
        model=Persistency.EVENTUAL,
        persist_mode=PersistMode.LAZY_BACKGROUND,
        write_waits_for_persist_everywhere=False,
        read_requires_applied_persisted=False,
        read_returns_persisted=False,
        dual_acks=False,
        deps_require_persist=False,
    ),
}


def policy_for(model: DdpModel):
    """Return the ``(ConsistencyPolicy, PersistencyPolicy)`` pair."""
    return (CONSISTENCY_POLICIES[model.consistency],
            PERSISTENCY_POLICIES[model.persistency])
