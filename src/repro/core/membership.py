"""Cluster membership view for fault-tolerant protocol rounds.

Hermes-style protocols handle failures through *membership*: a crashed
replica is removed from the live set, an epoch counter advances, and
every in-flight coordination round re-evaluates itself against the new
replica set (Katsarakis et al., see PAPERS.md).  This module is that
view, deliberately minimal:

* ``live`` — the node ids currently believed alive;
* ``epoch`` — bumped on every change, so coordinators can detect that
  the replica set moved under an outstanding round;
* subscriptions — engines register a callback and are notified of each
  change in deterministic (node-id) order.

A :class:`Membership` only exists when fault injection is configured
(see :mod:`repro.faults`); failure-free clusters pass ``None`` and the
engines keep their exact seed behavior — no timeouts are armed and no
epoch bookkeeping happens.

Detection is modeled, not implemented: the fault injector marks a node
crashed after a configurable detection delay, standing in for the lease
/ heartbeat machinery a real deployment would run.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Set, Tuple

__all__ = ["Membership"]

# Callback signature: (kind, node_id, epoch) with kind "crash" | "join".
ChangeCallback = Callable[[str, int, int], None]


class Membership:
    """The live replica set, with epoching and change notification."""

    def __init__(self, node_ids: Iterable[int]):
        self.all_nodes: Tuple[int, ...] = tuple(sorted(node_ids))
        self.live: Set[int] = set(self.all_nodes)
        self.epoch = 0
        #: True when the active fault plan can lose or reorder messages
        #: (drops / partitions / duplication).  Coordinators only
        #: *resend* round messages on timeout in lossy mode; under pure
        #: crash faults retargeting alone is sufficient and cheaper.
        self.lossy = False
        self.crashes = 0
        self.joins = 0
        # (node_id, callback), notified in node-id order on each change.
        self._subscribers: List[Tuple[int, ChangeCallback]] = []

    def subscribe(self, node_id: int, callback: ChangeCallback) -> None:
        """Register an engine's change callback (one per node)."""
        self._subscribers.append((node_id, callback))
        self._subscribers.sort(key=lambda pair: pair[0])

    def is_live(self, node_id: int) -> bool:
        return node_id in self.live

    def live_peers(self, node_id: int) -> List[int]:
        """The live replica set minus ``node_id``, in node-id order."""
        return [n for n in self.all_nodes
                if n != node_id and n in self.live]

    def mark_crashed(self, node_id: int) -> None:
        """Remove a node from the live set and notify (idempotent)."""
        if node_id not in self.live:
            return
        self.live.discard(node_id)
        self.epoch += 1
        self.crashes += 1
        self._notify("crash", node_id)

    def mark_joined(self, node_id: int) -> None:
        """Re-admit a recovered node and notify (idempotent)."""
        if node_id in self.live:
            return
        self.live.add(node_id)
        self.epoch += 1
        self.joins += 1
        self._notify("join", node_id)

    def _notify(self, kind: str, node_id: int) -> None:
        for _subscriber_id, callback in self._subscribers:
            callback(kind, node_id, self.epoch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Membership(live={sorted(self.live)}, "
                f"epoch={self.epoch})")
