"""DDP model definitions: consistency x persistency (paper Section 4).

A Distributed Data Persistency (DDP) model is the binding of a data
consistency model (when an update becomes *visible* at replica nodes —
its Visibility Point, VP) with a memory persistency model (when it
becomes *durable* in NVM — its Durability Point, DP).

This module encodes Table 2 of the paper: the five consistency models,
the five persistency models, their VP/DP semantics, and the
:class:`DdpModel` pair.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["Consistency", "Persistency", "DdpModel", "all_ddp_models"]


class Consistency(enum.Enum):
    """Data consistency models, strongest first (paper Table 2).

    The ``visibility_point`` property states, per Table 2, when an update
    becomes available for consumption at replica nodes.
    """

    LINEARIZABLE = "linearizable"
    READ_ENFORCED = "read_enforced"
    TRANSACTIONAL = "transactional"
    CAUSAL = "causal"
    EVENTUAL = "eventual"

    @property
    def visibility_point(self) -> str:
        return _VISIBILITY_POINTS[self]

    @property
    def strictness_rank(self) -> int:
        """0 = strictest.  Order follows Table 2 top-to-bottom."""
        return _CONSISTENCY_ORDER.index(self)

    @property
    def uses_invalidation(self) -> bool:
        """Whether the protocol uses INV/ACK/VAL rounds (vs. lazy UPD).

        Causal and Eventual consistency need no global visibility
        information, so their protocols send UPD messages only (paper
        Section 5.1).
        """
        return self in (Consistency.LINEARIZABLE, Consistency.READ_ENFORCED,
                        Consistency.TRANSACTIONAL)

    @property
    def short_name(self) -> str:
        return _CONSISTENCY_SHORT[self]


class Persistency(enum.Enum):
    """Memory persistency models, strongest first (paper Table 2).

    The ``durability_point`` property states, per Table 2, when an
    update becomes durable (recoverable after a volatile-storage loss).
    """

    STRICT = "strict"
    SYNCHRONOUS = "synchronous"
    READ_ENFORCED = "read_enforced"
    SCOPE = "scope"
    EVENTUAL = "eventual"

    @property
    def durability_point(self) -> str:
        return _DURABILITY_POINTS[self]

    @property
    def strictness_rank(self) -> int:
        """0 = strictest.  Order follows Table 2 top-to-bottom."""
        return _PERSISTENCY_ORDER.index(self)

    @property
    def persists_inline(self) -> bool:
        """Whether persists sit on the write critical path at the replica.

        Strict persists before the write completes anywhere; Synchronous
        persists at the visibility point.  The other three persist in the
        background (possibly with later stalls at reads / scope ends).
        """
        return self in (Persistency.STRICT, Persistency.SYNCHRONOUS)

    @property
    def short_name(self) -> str:
        return _PERSISTENCY_SHORT[self]


_CONSISTENCY_ORDER = [
    Consistency.LINEARIZABLE,
    Consistency.READ_ENFORCED,
    Consistency.TRANSACTIONAL,
    Consistency.CAUSAL,
    Consistency.EVENTUAL,
]

_PERSISTENCY_ORDER = [
    Persistency.STRICT,
    Persistency.SYNCHRONOUS,
    Persistency.READ_ENFORCED,
    Persistency.SCOPE,
    Persistency.EVENTUAL,
]

_VISIBILITY_POINTS = {
    Consistency.LINEARIZABLE:
        "wrt all nodes: when the update takes place",
    Consistency.READ_ENFORCED:
        "wrt all nodes: before the update is read",
    Consistency.TRANSACTIONAL:
        "wrt all nodes: at the transaction end",
    Consistency.CAUSAL:
        "wrt a node: after the VPs wrt the same node of all the updates "
        "in the happens-before history",
    Consistency.EVENTUAL:
        "wrt a node: sometime in the future",
}

_DURABILITY_POINTS = {
    Persistency.STRICT: "when the update takes place",
    Persistency.SYNCHRONOUS: "at the visibility point of the update",
    Persistency.READ_ENFORCED: "before the update is read",
    Persistency.SCOPE: "before or at the scope end",
    Persistency.EVENTUAL: "sometime in the future",
}

_CONSISTENCY_SHORT = {
    Consistency.LINEARIZABLE: "Linear",
    Consistency.READ_ENFORCED: "Read-Enforc",
    Consistency.TRANSACTIONAL: "Xactional",
    Consistency.CAUSAL: "Causal",
    Consistency.EVENTUAL: "Eventual",
}

_PERSISTENCY_SHORT = {
    Persistency.STRICT: "Strict",
    Persistency.SYNCHRONOUS: "Synchronous",
    Persistency.READ_ENFORCED: "Read-Enforced",
    Persistency.SCOPE: "Scope",
    Persistency.EVENTUAL: "Eventual",
}


@dataclass(frozen=True)
class DdpModel:
    """A <consistency, persistency> pair — one DDP model."""

    consistency: Consistency
    persistency: Persistency

    def __str__(self) -> str:
        return (f"<{self.consistency.value.replace('_', '-').title()}, "
                f"{self.persistency.value.replace('_', '-').title()}>")

    @property
    def key(self) -> Tuple[str, str]:
        return (self.consistency.value, self.persistency.value)

    @property
    def is_baseline(self) -> bool:
        """<Linearizable, Synchronous>: the normalization baseline in the
        paper's evaluation (Figures 6-9)."""
        return (self.consistency is Consistency.LINEARIZABLE
                and self.persistency is Persistency.SYNCHRONOUS)


def all_ddp_models() -> List[DdpModel]:
    """All 25 <consistency, persistency> combinations, in Table 2 order."""
    return [DdpModel(c, p)
            for c, p in itertools.product(_CONSISTENCY_ORDER, _PERSISTENCY_ORDER)]
