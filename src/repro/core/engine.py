"""The DDP protocol engine: leaderless coordinator/follower protocols.

One :class:`ProtocolNode` runs at every server.  Following the paper
(Section 5), the protocols are leaderless: any node can receive a client
read or write and act as the *Coordinator* for that operation; all other
nodes are *Followers* (every key is replicated at every node).  On a
write, the coordinator *broadcasts* to all followers rather than
chaining through them.

The engine is a single state machine parameterized by a
:class:`~repro.core.policies.ConsistencyPolicy` and a
:class:`~repro.core.policies.PersistencyPolicy`; together these
reproduce the per-model protocols of Figures 2-5:

* Invalidation-based consistency (Linearizable / Read-Enforced /
  Transactional) uses INV -> ACK(:sub:`c/p`) -> VAL(:sub:`c/p`) rounds.
* Causal / Eventual consistency sends UPD messages (with causal history
  under Causal) and never needs global visibility information.
* Persistency decides where persists sit (inline at apply, eagerly or
  lazily in the background, or at scope ends), whether writes stall for
  cluster-wide durability (Strict), and what reads may return / stall on.

Threading model: client requests occupy a *request worker* core for
their whole lifetime, including stalls (worker threads block, as in the
paper's testbed where client and worker threads are pinned to separate
cores).  Inbound protocol messages are handled by a separate small pool
of *protocol workers* that is only held for CPU time, never across
stalls — so the message plane can always make progress and wake stalled
requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.analysis.metrics import Metrics
from repro.core.context import ClientContext
from repro.core.messages import Message, MsgType
from repro.core.model import DdpModel
from repro.core.policies import (
    ConsistencyPolicy,
    PersistencyPolicy,
    PersistMode,
    policy_for,
)
from repro.core.replica import KeyReplica, ReplicaTable, Version
from repro.memory.hierarchy import MemoryHierarchy
from repro.net.network import Network, Nic
from repro.core.membership import Membership
from repro.sim.engine import Event, Simulator
from repro.sim.sync import Resource
from repro.sim.trace import NullTracer
from repro.txn.manager import Txn, TxnTable

__all__ = ["AckRound", "ProtocolConfig", "ProtocolNode"]


@dataclass(frozen=True)
class ProtocolConfig:
    """Engine tunables (defaults sized to the paper's Table 5 testbed)."""

    request_workers: int = 12
    """Worker cores per node that execute client requests (and block with
    them); the remaining cores of the 20-core chip run client threads and
    protocol handling."""

    protocol_workers: int = 8
    """Cores dedicated to inbound protocol message processing."""

    msg_proc_ns: float = 50.0
    """CPU time to process one inbound protocol message (RDMA delivery
    leaves little per-message kernel work)."""

    req_proc_ns: float = 500.0
    """CPU time to parse, dispatch, and post-process one client request
    (store-structure walk extra) — roughly the per-request instruction
    footprint of a memcached-class server on the paper's 2 GHz cores."""

    value_bytes: int = 64
    """Size of one key-value payload on the wire and in DDIO."""

    lazy_propagation_delay_ns: float = 2_000.0
    """Eventual consistency: delay before UPDs are sent out."""

    lazy_persist_delay_ns: float = 10_000.0
    """Eventual persistency: delay before a background persist is queued."""

    txn_length: int = 5
    """Client requests per transaction (paper Section 7)."""

    scope_length: int = 10
    """Client requests per scope (paper Section 7)."""

    txn_retry_backoff_ns: float = 6_000.0
    """Client backoff after a squashed transaction before retrying."""

    chain_propagation: bool = False
    """Ablation: instead of the paper's leaderless broadcast, propagate
    coordinator messages follower-by-follower (each send starts once the
    previous one is delivered), modeling a sequential-visit chain."""

    round_timeout_ns: float = 12_000.0
    """Fault tolerance: how long a coordinator round (INV/UPD acks,
    INITX/ENDX, PERSIST) may sit incomplete before its watchdog
    re-evaluates it against the live membership.  Only armed when a
    :class:`~repro.core.membership.Membership` is attached (i.e. under
    fault injection); failure-free runs never create these timers."""

    round_max_retries: int = 8
    """Fault tolerance: maximum times a round's message is resent to
    laggard replicas.  Resends only happen when the fault plan can lose
    messages (``membership.lossy``); pure crash faults are handled by
    retargeting alone."""

    round_retry_backoff_ns: float = 4_000.0
    """Fault tolerance: extra delay added to the round watchdog per
    retry already spent (linear backoff, capped at 8 steps)."""


class AckRound:
    """An ACK-collection round over an explicit replica set.

    Replaces a bare countdown (:class:`~repro.sim.sync.Latch`) for
    coordinator rounds so the round can survive faults:

    * arrivals are deduplicated by source, so resent or duplicated ACKs
      (message-duplication faults, round retries) are harmless instead
      of a latch overrun;
    * :meth:`retarget` shrinks the expected set when membership changes,
      completing the round if only crashed replicas are missing.

    In a failure-free run the event triggers at exactly the moment the
    equivalent latch would have — same arrival, same kernel scheduling —
    so attaching fault machinery does not perturb healthy runs.
    """

    __slots__ = ("sim", "targets", "acked", "event")

    def __init__(self, sim: Simulator, targets):
        self.sim = sim
        self.targets = set(targets)
        self.acked: set = set()
        self.event = sim.event()
        if not self.targets:
            self.event.succeed()

    @property
    def satisfied(self) -> bool:
        return self.targets <= self.acked

    @property
    def missing(self) -> List[int]:
        """Targets not yet heard from, in node-id order."""
        return sorted(self.targets - self.acked)

    def ack(self, src: int) -> None:
        """Record an ACK from ``src`` (idempotent)."""
        self.acked.add(src)
        if self.satisfied and not self.event.triggered:
            self.event.succeed()

    def retarget(self, live) -> None:
        """Drop targets no longer in ``live``; fire if now satisfied."""
        self.targets = {t for t in self.targets if t in live}
        if self.satisfied and not self.event.triggered:
            self.event.succeed()

    def wait(self) -> Event:
        return self.event


@dataclass
class _WriteOp:
    """Coordinator-side state for one outstanding write."""

    op_id: int
    key: int
    version: Version
    value: Any
    ack_c: AckRound
    ack_p: Optional[AckRound] = None
    txn_id: Optional[int] = None
    scope_id: Optional[int] = None


@dataclass
class _RoundOp:
    """Coordinator-side state for an INITX / ENDX / PERSIST round."""

    op_id: int
    acks: AckRound


class ProtocolNode:
    """One server's protocol engine (coordinator + follower roles)."""

    #: Message dispatch, declared at class level (``MsgType`` -> handler
    #: method name) so subclasses extend it declaratively and so
    #: ``repro lint``'s dispatch-completeness rule can import the class
    #: and verify every member is handled without running a simulation.
    #: ``__init__`` binds it once per instance into ``self._handlers``.
    _DISPATCH: Dict[MsgType, str] = {
        MsgType.INV: "_on_inv",
        MsgType.UPD: "_on_upd",
        MsgType.ACK: "_on_ack_c",
        MsgType.ACK_C: "_on_ack_c",
        MsgType.ACK_P: "_on_ack_p",
        MsgType.VAL: "_on_val",
        MsgType.VAL_C: "_on_val",
        MsgType.VAL_P: "_on_val_p",
        MsgType.INITX: "_on_initx",
        MsgType.ENDX: "_on_endx",
        MsgType.PERSIST: "_on_persist",
    }

    def __init__(self, sim: Simulator, node_id: int, peer_ids: List[int],
                 network: Network, nic: Nic, memory: MemoryHierarchy,
                 model: DdpModel, metrics: Metrics,
                 config: Optional[ProtocolConfig] = None,
                 txn_table: Optional[TxnTable] = None,
                 store: Any = None, nvm_log: Any = None, tracer: Any = None,
                 version_board: Any = None,
                 membership: Optional[Membership] = None):
        self.sim = sim
        self.node_id = node_id
        self.peer_ids = list(peer_ids)
        self.network = network
        self.nic = nic
        self.memory = memory
        self.model = model
        self.cpolicy, self.ppolicy = policy_for(model)
        self.metrics = metrics
        self.config = config or ProtocolConfig()
        self.txn_table = txn_table
        self.store = store
        self.nvm_log = nvm_log
        self.tracer = tracer if tracer is not None else NullTracer()
        self.version_board = version_board

        observer = self._replica_event if self.tracer.enabled else None
        self.replicas = ReplicaTable(sim, node_id, observer=observer)
        self.request_workers = Resource(sim, self.config.request_workers,
                                        name=f"n{node_id}.reqw")
        self.protocol_workers = Resource(sim, self.config.protocol_workers,
                                         name=f"n{node_id}.protw")
        self._op_counter = 0
        self._outstanding_writes: Dict[int, _WriteOp] = {}
        self._outstanding_rounds: Dict[int, _RoundOp] = {}
        # Causal updates buffered for their happens-before history,
        # indexed by (one of) the keys they are waiting on so that a
        # version advance re-checks only the relevant updates.
        self._causal_waiting: Dict[int, List[Message]] = {}
        self._causal_waiting_count = 0
        # Follower-side txn bookkeeping: txn_id -> [(key, op_id)] of the
        # transaction's INVs, cleared when the post-ENDX VAL arrives.
        self._txn_invs: Dict[int, List[Tuple[int, int]]] = {}
        self._alive = True
        self._dispatcher = None
        # Fault tolerance (None in failure-free runs: no timers armed,
        # no epoch bookkeeping — exact seed behavior).
        self.membership = membership
        self.round_resends = 0
        self.rounds_retargeted = 0
        self.orphans_absorbed = 0
        if membership is not None:
            membership.subscribe(node_id, self._on_membership_change)
        # Bound once here instead of building a dict literal per
        # inbound message in _handle_message.
        self._handlers = {msg_type: getattr(self, name)
                          for msg_type, name in self._DISPATCH.items()}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Launch the inbound-message dispatcher."""
        self._dispatcher = self.sim.process(self._dispatch_loop(),
                                            name=f"n{self.node_id}.dispatch")

    def crash(self) -> None:
        """Volatile-state failure: stop processing; volatile data is gone.

        The durable image (``nvm_log`` and per-replica persisted state)
        survives; :mod:`repro.recovery` rebuilds from it.
        """
        self._alive = False

    @property
    def alive(self) -> bool:
        """False between ``crash()`` and ``restart()``."""
        return self._alive

    def restart(self, recovered_entries: Dict[int, Tuple[Version, Any]]) -> None:
        """Rejoin after a crash, seeded from the node's durable image.

        ``recovered_entries`` is ``RecoveredState.entries`` from
        :func:`repro.recovery.recovery.recover_latest` over this node's
        NVM log: each surviving key is re-applied and marked persisted
        (it *is* durable — that is where it came from).  All volatile
        protocol state — outstanding rounds, causal buffers, transient
        invalidation markers, follower txn bookkeeping — is discarded;
        the writes those tracked either completed elsewhere or belong to
        coordinators that will retarget around this node's absence.
        Anything newer than the durable image is simply lost (the crash
        contract) and catches up through later INV/UPD traffic.

        The inbound dispatcher keeps running across the outage (it drops
        messages while ``crash()`` holds ``_alive`` false), so flipping
        the flag back is all the "reboot" the message plane needs.
        Queued worker admissions abandoned by interrupted clients are
        reaped by :meth:`~repro.sim.sync.Resource.release` as grants
        reach them, so capacity is not leaked across the restart.
        """
        observer = self._replica_event if self.tracer.enabled else None
        self.replicas = ReplicaTable(self.sim, self.node_id,
                                     observer=observer)
        self._outstanding_writes.clear()
        self._outstanding_rounds.clear()
        self._causal_waiting.clear()
        self._causal_waiting_count = 0
        self._txn_invs.clear()
        for key in sorted(recovered_entries):
            version, value = recovered_entries[key]
            replica = self.replicas.get(key)
            replica.apply(version, value)
            replica.mark_persisted(version, value)
            replica.persist_requested = version
            if self.store is not None:
                self.store.put(key, value)
        self._alive = True

    def _dispatch_loop(self) -> Generator:
        while True:
            message = yield self.nic.receive()
            if not self._alive:
                continue
            self.sim.process(self._handle_message(message),
                             name=f"n{self.node_id}.msg")

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------

    def _next_op_id(self) -> int:
        # The coordinator's node id rides in the low bits (op_id % 1024),
        # so followers can attribute any transient marker to the node
        # that coordinates it — which is how crash cleanup finds the
        # orphans of a dead coordinator without extra bookkeeping.
        self._op_counter += 1
        return self._op_counter * 1024 + self.node_id

    @property
    def active_peers(self) -> List[int]:
        """Peers a new round targets: all of them in failure-free runs,
        the membership's live subset under fault injection.  A crashed
        but not-yet-detected peer is still targeted — the round then
        waits out the detection delay before retargeting, which is the
        failure-handling latency the membership approach models."""
        if self.membership is None:
            return self.peer_ids
        live = self.membership.live
        return [p for p in self.peer_ids if p in live]

    def _replica_event(self, kind: str, key: int, version: Version) -> None:
        """Forward replica apply/persist advances to the tracer (used by
        the Visibility/Durability Point measurement)."""
        # repro: lint-ok[tracer-guard] only registered as the ReplicaTable observer when tracer.enabled
        self.tracer.emit(self.sim.now, kind, node=self.node_id,
                         key=key, version=version)

    def _send(self, dst: int, message: Message, lazy: bool = False) -> None:
        self.metrics.record_message(message.msg_type.value, message.size_bytes,
                                    time_ns=self.sim.now)
        if self.tracer.enabled:
            details = dict(msg=message.msg_type.value, dst=dst,
                           op_id=message.op_id, key=message.key,
                           version=message.version, bytes=message.size_bytes)
            if lazy:
                details["lazy"] = True
            self.tracer.emit(self.sim.now, "msg_send", node=self.node_id,
                             **details)
        self.network.send(self.node_id, dst, message, message.size_bytes)

    def _broadcast(self, message: Message, lazy: bool = False,
                   targets: Optional[List[int]] = None) -> None:
        if self.config.chain_propagation:
            self.sim.process(self._chain_send(message, lazy),
                             name=f"n{self.node_id}.chain")
            return
        for dst in (self.active_peers if targets is None else targets):
            self._send(dst, message, lazy)

    def _chain_send(self, message: Message, lazy: bool = False) -> Generator:
        """Sequential propagation (ablation): the message reaches follower
        k only after it has been delivered at follower k-1."""
        for dst in self.peer_ids:
            self.metrics.record_message(message.msg_type.value,
                                        message.size_bytes,
                                        time_ns=self.sim.now)
            if self.tracer.enabled:
                details = dict(msg=message.msg_type.value, dst=dst,
                               op_id=message.op_id, key=message.key,
                               version=message.version,
                               bytes=message.size_bytes, chain=True)
                if lazy:
                    details["lazy"] = True
                self.tracer.emit(self.sim.now, "msg_send",
                                 node=self.node_id, **details)
            yield self.network.send(self.node_id, dst, message,
                                    message.size_bytes)

    def _charge_protocol_cpu(self) -> Generator:
        yield self.protocol_workers.acquire()
        try:
            yield self.sim.timeout(self.config.msg_proc_ns)
        finally:
            self.protocol_workers.release()

    def _store_read_cost(self, key: int) -> float:
        if self.store is None:
            return 0.0
        return self.store.read_cost(key)

    def _store_write_cost(self, key: int, value: Any) -> float:
        if self.store is None:
            return 0.0
        return self.store.write_cost(key, value)

    # ------------------------------------------------------------------
    # persistence helpers
    # ------------------------------------------------------------------

    def _mark_durable(self, replica: KeyReplica, version: Version, value: Any,
                      scope_id: Optional[int] = None) -> None:
        """Bookkeeping after a media write completes."""
        replica.mark_persisted(version, value)
        self.metrics.persists += 1
        if self.nvm_log is not None:
            self.nvm_log.record(self.node_id, replica.key, version, value,
                                scope_id=scope_id)
        if (self.cpolicy.causal and self.ppolicy.deps_require_persist
                and replica.key in self._causal_waiting):
            # A durability advance can unblock buffered causal updates.
            self.sim.process(self._recheck_causal_waiters(replica.key),
                             name=f"n{self.node_id}.crecheck")

    def _request_persist(self, replica: KeyReplica, version: Version,
                         value: Any, trigger: str = "inline") -> None:
        """Ask for (key, version) to become durable.

        ``trigger`` names what placed the persist (inline / eager / lazy /
        scope / endx / strict) so journey records can tell a deliberate
        persist delay from NVM queueing.

        Models memory-controller write combining: while a media write for
        the key is queued or in service, newer versions overwrite the
        key's single write-pending slot instead of enqueuing more NVM
        traffic — hot keys generate one persist per drain, not per write.
        """
        if version <= replica.persist_requested:
            return
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, "persist_issue", node=self.node_id,
                             key=replica.key, version=version, trigger=trigger)
        replica.persist_requested = version
        replica.persist_target = (version, value)
        if not replica.persist_active:
            replica.persist_active = True
            self.sim.process(self._persist_drain_loop(replica),
                             name=f"n{self.node_id}.persist")

    def _persist_drain_loop(self, replica: KeyReplica) -> Generator:
        """Drain the key's write-pending slot until it stays empty."""
        while replica.persist_target is not None:
            version, value = replica.persist_target
            replica.persist_target = None
            yield from self.memory.persist(replica.key)
            self._mark_durable(replica, version, value)
        replica.persist_active = False

    def _ensure_persisted(self, replica: KeyReplica, version: Version,
                          value: Any, scope_id: Optional[int] = None,
                          trigger: str = "inline") -> Generator:
        """Process: return once ``version`` (or newer) is durable locally.

        Scope-tagged persists bypass write combining so that the durable
        log attributes each entry to the scope that persisted it.
        """
        if replica.persisted_version >= version:
            return
        if scope_id is not None:
            if replica.persist_requested < version:
                if self.tracer.enabled:
                    self.tracer.emit(self.sim.now, "persist_issue",
                                     node=self.node_id, key=replica.key,
                                     version=version, trigger="scope")
                replica.persist_requested = version
                yield from self.memory.persist(replica.key)
                self._mark_durable(replica, version, value, scope_id)
                return
        else:
            self._request_persist(replica, version, value, trigger)
        yield replica.condition.wait_for(
            lambda: replica.persisted_version >= version)

    def _spawn_persist(self, replica: KeyReplica, version: Version, value: Any,
                       delay_ns: float = 0.0,
                       scope_id: Optional[int] = None,
                       trigger: str = "inline"):
        """Schedule a background persist (eager or lazy)."""
        if delay_ns <= 0 and scope_id is None:
            self._request_persist(replica, version, value, trigger)
            return None

        def runner() -> Generator:
            if delay_ns > 0:
                yield self.sim.timeout(delay_ns)
            yield from self._ensure_persisted(replica, version, value, scope_id,
                                              trigger=trigger)

        return self.sim.process(runner(), name=f"n{self.node_id}.bgpersist")

    # ------------------------------------------------------------------
    # fault tolerance: round watchdogs and membership changes
    # ------------------------------------------------------------------

    def _arm_round_watchdog(self, round_: AckRound,
                            message: Message) -> None:
        """Bound a coordination round's exposure to faults.

        Deliberately out-of-band: the coordinator keeps waiting directly
        on the round's event (identical kernel scheduling to the
        failure-free engine), while a periodic ``call_at`` callback
        re-checks the round from the side.  Each check retargets the
        round against the live membership (completing it if only dead
        replicas are missing) and — when the fault plan can lose
        messages — resends ``message`` to the laggards, with linear
        backoff and a bounded retry budget.  Checks on completed rounds
        are no-ops and do not re-arm, so a healthy run's watchdogs never
        touch anything.
        """
        if self.membership is None:
            return
        state = {"attempt": 0}

        def check() -> None:
            if round_.event.triggered or not self._alive:
                return
            before = len(round_.targets)
            round_.retarget(self.membership.live)
            if len(round_.targets) != before:
                self.rounds_retargeted += 1
            if round_.event.triggered:
                return
            if (self.membership.lossy
                    and state["attempt"] < self.config.round_max_retries):
                state["attempt"] += 1
                self.round_resends += 1
                for dst in round_.missing:
                    self._send(dst, message)
            backoff = (self.config.round_timeout_ns
                       + self.config.round_retry_backoff_ns
                       * min(state["attempt"], 8))
            self.sim.call_at(self.sim.now + backoff, check)

        self.sim.call_at(self.sim.now + self.config.round_timeout_ns, check)

    def _on_membership_change(self, kind: str, node_id: int,
                              epoch: int) -> None:
        """React to a membership epoch: re-issue every outstanding round
        against the live replica set, and release transient state left
        behind by a crashed coordinator."""
        if node_id == self.node_id or not self._alive or kind != "crash":
            # A join needs nothing from existing rounds: they never
            # re-add a replica that was dropped mid-round, and new
            # rounds pick the wider live set up via ``active_peers``.
            return
        live = self.membership.live
        for op_id in sorted(self._outstanding_writes):
            op = self._outstanding_writes[op_id]
            op.ack_c.retarget(live)
            if op.ack_p is not None:
                op.ack_p.retarget(live)
        for op_id in sorted(self._outstanding_rounds):
            self._outstanding_rounds[op_id].acks.retarget(live)
        self._abandon_remote_coordinator(node_id)

    def _abandon_remote_coordinator(self, crashed: int) -> None:
        """Follower-side cleanup when a coordinator dies.

        Every transient invalidation the dead node left behind is
        released (its origin is recoverable from the op id's low bits),
        so reads and conflicting writers stop waiting for VALs that will
        never come.  The applied value stays: the coordinator broadcast
        its INV before crashing, so all live replicas hold the same
        last-writer-wins outcome.  Under dual-ACK persistency the
        VAL_p will never come either, so the follower persists the
        applied value itself and settles cluster durability locally —
        the value is then recoverable from this node's log, preserving
        the read-durability contract.  Transactions coordinated by the
        dead node are dropped from the follower's bookkeeping; the
        shared transaction table is cleaned up once, by the injector.
        """
        for key in sorted(self.replicas.keys()):
            replica = self.replicas.get(key)
            orphaned = [op_id for op_id in sorted(replica.inflight_invs)
                        if op_id % 1024 == crashed]
            for op_id in orphaned:
                replica.end_inv(op_id)
            if orphaned and self.ppolicy.dual_acks:
                self.orphans_absorbed += 1
                self.sim.process(self._absorb_orphan(replica),
                                 name=f"n{self.node_id}.orphan")
        for txn_id in sorted(self._txn_invs):
            entries = self._txn_invs[txn_id]
            if any(op_id % 1024 == crashed for _key, op_id in entries):
                del self._txn_invs[txn_id]

    def _absorb_orphan(self, replica: KeyReplica) -> Generator:
        """Persist an orphaned applied value and settle its durability
        signal locally (the dead coordinator's VAL_p never arrives)."""
        version, value = replica.applied_version, replica.applied_value
        yield from self._ensure_persisted(replica, version, value,
                                          trigger="eager")
        replica.mark_cluster_persisted(version)

    # ------------------------------------------------------------------
    # client API: reads
    # ------------------------------------------------------------------

    def client_read(self, ctx: ClientContext, key: int) -> Generator:
        """Process: one client read; returns the value per the DDP model.

        Holds a request worker for the full duration, stalls included.
        """
        yield self.request_workers.acquire()
        try:
            value = yield from self._do_read(ctx, key)
        finally:
            self.request_workers.release()
        return value

    def _do_read(self, ctx: ClientContext, key: int) -> Generator:
        yield self.sim.timeout(self.config.req_proc_ns + self._store_read_cost(key))
        replica = self.replicas.get(key)

        if self.cpolicy.transactional and ctx.txn is not None:
            self.txn_table.check_access(ctx.txn, key, is_write=False)

        # The stalls and the memory read loop until the guards hold for
        # the state the read actually samples: the volatile read costs
        # simulated time, so a write racing in during it could otherwise
        # slip an unvalidated (or, under Read-Enforced persistency, a
        # not-yet-durable) version past guards that were checked against
        # an older snapshot.
        while True:
            # Consistency stall: Linearizable / Read-Enforced reads wait
            # until no invalidation is outstanding on the key (all
            # replicas updated, and — when ACKs also cover persists —
            # persisted).
            if self.cpolicy.read_stalls_on_transient and replica.transient:
                self.metrics.read_stalls += 1
                if self.ppolicy.dual_acks:
                    # Under Read-Enforced persistency the transient state
                    # only clears at VAL_p, so this stall is a read racing
                    # a yet-to-persist write (the conflicts of
                    # Section 8.1.2).
                    self.metrics.reads_blocked_by_unpersisted += 1
                stall_start = self.sim.now
                yield replica.condition.wait_for(lambda: not replica.transient)
                if self.tracer.enabled:
                    self.tracer.emit(self.sim.now, "read_stall",
                                     node=self.node_id,
                                     dur=self.sim.now - stall_start, key=key)

            # Persistency stall: Read-Enforced persistency forbids reading
            # a version that is not yet durable.  Under invalidation-based
            # consistency the signal is cluster-wide (VAL_p); under
            # Causal / Eventual consistency only local durability is
            # knowable.
            if self.ppolicy.read_requires_applied_persisted:
                target = replica.applied_version
                stall_start = self.sim.now
                if self.cpolicy.uses_inv:
                    if replica.cluster_persisted_version < target:
                        self.metrics.reads_blocked_by_unpersisted += 1
                        yield replica.condition.wait_for(
                            lambda: replica.cluster_persisted_version >= target)
                else:
                    if replica.persisted_version < target:
                        self.metrics.reads_blocked_by_unpersisted += 1
                        yield replica.condition.wait_for(
                            lambda: replica.persisted_version >= target)
                if self.tracer.enabled and self.sim.now > stall_start:
                    self.tracer.emit(self.sim.now, "read_blocked_unpersisted",
                                     node=self.node_id,
                                     dur=self.sim.now - stall_start, key=key)

            yield from self.memory.volatile_read(key)

            # Re-validate against what is visible *now*; a write applied
            # during the memory read restarts the guarded sequence.
            if self.cpolicy.read_stalls_on_transient and replica.transient:
                continue
            if self.ppolicy.read_requires_applied_persisted:
                target = replica.applied_version
                if self.cpolicy.uses_inv:
                    if replica.cluster_persisted_version < target:
                        continue
                elif replica.persisted_version < target:
                    continue
            break

        if self.ppolicy.read_returns_persisted and not self.cpolicy.uses_inv:
            # <Causal/Eventual, Synchronous>: return the latest *persisted*
            # version so every read value is recoverable (Figure 2(f)).
            version, value = replica.persisted_version, replica.persisted_value
        else:
            version, value = replica.applied_version, replica.applied_value
        if self.cpolicy.causal:
            ctx.observe(key, version)
        ctx.last_read_version = version
        if self.version_board is not None:
            self.version_board.score_read(key, version)
        return value

    # ------------------------------------------------------------------
    # client API: writes
    # ------------------------------------------------------------------

    def client_write(self, ctx: ClientContext, key: int, value: Any) -> Generator:
        """Process: one client write; returns at the model's completion
        point (e.g. after VALs under <Linearizable, Synchronous>, or
        immediately after the local update under Causal)."""
        yield self.request_workers.acquire()
        try:
            yield from self._do_write(ctx, key, value)
        finally:
            self.request_workers.release()

    def _do_write(self, ctx: ClientContext, key: int, value: Any) -> Generator:
        entry_ns = self.sim.now
        fwd_start = ctx.forward_start_ns
        fwd_net = ctx.forward_net_ns
        ctx.forward_start_ns = None
        ctx.forward_net_ns = 0.0
        yield self.sim.timeout(self.config.req_proc_ns
                               + self._store_write_cost(key, value))
        replica = self.replicas.get(key)

        if self.cpolicy.transactional and ctx.txn is not None:
            self.txn_table.check_access(ctx.txn, key, is_write=True)

        # A coordinator cannot start a write on a key with an outstanding
        # invalidation (its own or a remote writer's): conflicting writers
        # serialize (Section 5.2).  The loop re-checks after waking
        # because another woken writer may have claimed the key first.
        stall_start = self.sim.now
        if self.cpolicy.write_stalls_on_transient:
            while replica.transient:
                self.metrics.write_stalls += 1
                yield replica.condition.wait_for(lambda: not replica.transient)
            if self.tracer.enabled and self.sim.now > stall_start:
                self.tracer.emit(self.sim.now, "write_stall",
                                 node=self.node_id,
                                 dur=self.sim.now - stall_start, key=key)

        version = replica.next_version(self.node_id)
        if self.tracer.enabled:
            details = dict(key=key, version=version,
                           start=entry_ns if fwd_start is None else fwd_start,
                           stall_ns=self.sim.now - stall_start)
            if fwd_start is not None:
                details["fwd_net_ns"] = fwd_net
                details["fwd_wait_ns"] = max(entry_ns - fwd_start - fwd_net,
                                             0.0)
            self.tracer.emit(self.sim.now, "write_issue", node=self.node_id,
                             **details)
        if self.version_board is not None:
            self.version_board.note_write(key, version)
        if self.store is not None:
            self.store.put(key, value)

        if self.cpolicy.uses_inv:
            yield from self._write_invalidation(ctx, replica, version, value)
        else:
            yield from self._write_update(ctx, replica, version, value)

        if self.cpolicy.causal:
            ctx.observe(key, version)
        if self.ppolicy.persist_mode is PersistMode.ON_SCOPE_END:
            ctx.record_scope_write(key, version)
        ctx.last_write_version = version
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, "write_complete",
                             node=self.node_id, key=key, version=version)

    # -- invalidation-based consistency (Linearizable / Read-Enf. / Txn) --

    def _write_invalidation(self, ctx: ClientContext, replica: KeyReplica,
                            version: Version, value: Any) -> Generator:
        op_id = self._next_op_id()
        txn = ctx.txn if self.cpolicy.transactional else None
        txn_id = txn.txn_id if txn is not None else None
        scope_id = (ctx.current_scope_id
                    if self.ppolicy.persist_mode is PersistMode.ON_SCOPE_END
                    else None)

        targets = self.active_peers
        op = _WriteOp(op_id=op_id, key=replica.key, version=version,
                      value=value, ack_c=AckRound(self.sim, targets),
                      txn_id=txn_id, scope_id=scope_id)
        if self.ppolicy.dual_acks:
            op.ack_p = AckRound(self.sim, targets)
        self._outstanding_writes[op_id] = op

        replica.begin_inv(op_id)
        yield from self.memory.volatile_update(replica.key,
                                               self.config.value_bytes)
        if txn is not None:
            txn.writes.append((replica.key, version))
            self._apply_txn_write(replica, version, value)
        else:
            replica.apply(version, value)

        inv = Message(MsgType.INV, src=self.node_id, op_id=op_id,
                      key=replica.key, version=version, value=value,
                      scope_id=scope_id, txn_id=txn_id)
        self._broadcast(inv, targets=targets)
        self._arm_round_watchdog(op.ack_c, inv)
        if op.ack_p is not None:
            self._arm_round_watchdog(op.ack_p, inv)

        strict = self.ppolicy.write_waits_for_persist_everywhere
        inline_persist = (self.ppolicy.persist_mode is PersistMode.INLINE
                          and txn_id is None) or strict

        if self.cpolicy.write_waits_for_acks or strict:
            # Linearizable (always), or any consistency under Strict:
            # the write completes only after the full round.  The local
            # persist overlaps the INV round trip (Figure 2(a)).
            if inline_persist or self.ppolicy.dual_acks:
                self._spawn_persist(replica, version, value,
                                    trigger="strict" if strict else
                                    "inline" if inline_persist else "eager")
            elif self.ppolicy.persist_mode is PersistMode.LAZY_BACKGROUND:
                self._spawn_persist(replica, version, value,
                                    delay_ns=self.config.lazy_persist_delay_ns,
                                    trigger="lazy")
            yield op.ack_c.wait()
            if inline_persist:
                yield from self._ensure_persisted(
                    replica, version, value,
                    trigger="strict" if strict else "inline")
            self._finish_invalidation(op, replica)
            if self.ppolicy.dual_acks:
                self.sim.process(self._await_cluster_persist(op, replica),
                                 name=f"n{self.node_id}.valp")
            return

        # Read-Enforced / Transactional consistency: the client write
        # completes now; the round finishes in the background.
        if self.ppolicy.dual_acks:
            self._spawn_persist(replica, version, value, trigger="eager")
            self.sim.process(self._background_round_dual(op, replica),
                             name=f"n{self.node_id}.bground")
        elif txn_id is not None:
            # Persists (Synchronous) are deferred to ENDX; ACKs collected
            # so end-of-transaction can confirm every replica updated.
            # Eventual persistency stays lazy even inside transactions.
            if self.ppolicy.persist_mode is PersistMode.LAZY_BACKGROUND:
                self._spawn_persist(replica, version, value,
                                    delay_ns=self.config.lazy_persist_delay_ns,
                                    trigger="lazy")
            self.sim.process(self._background_round_txn(op), name="txnround")
        else:
            if self.ppolicy.persist_mode is PersistMode.INLINE:
                self._spawn_persist(replica, version, value)
            elif self.ppolicy.persist_mode is PersistMode.LAZY_BACKGROUND:
                self._spawn_persist(replica, version, value,
                                    delay_ns=self.config.lazy_persist_delay_ns,
                                    trigger="lazy")
            self.sim.process(self._background_round_simple(op, replica),
                             name=f"n{self.node_id}.bground")

    def _apply_txn_write(self, replica: KeyReplica, version: Version,
                         value: Any) -> None:
        """Install a transactional write with undo support: winners record
        their pre-image; losers of the last-writer-wins race are absorbed
        into the winner's pre-image so aborts restore the right state."""
        if version > replica.applied_version:
            # repro: lint-ok[effect-conflict] pre-image snapshot is guarded by the version race; losers are absorbed monotonically
            replica.record_undo(version)
            replica.apply(version, value)
        else:
            replica.absorb_superseded(version, value)

    def _finish_invalidation(self, op: _WriteOp, replica: KeyReplica) -> None:
        """All ACKs in (and local persist done where required): broadcast
        the VALidation and clear the local transient state."""
        val_type = (MsgType.VAL
                    if self.ppolicy.persist_mode is PersistMode.INLINE
                    and not self.ppolicy.dual_acks else MsgType.VAL_C)
        if not self.ppolicy.dual_acks:
            self._broadcast(Message(val_type, src=self.node_id, op_id=op.op_id,
                                    key=op.key, version=op.version,
                                    scope_id=op.scope_id, txn_id=op.txn_id))
            replica.end_inv(op.op_id)
            if (self.ppolicy.persist_mode is PersistMode.INLINE
                    and op.txn_id is None):
                replica.mark_cluster_persisted(op.version)
            self._outstanding_writes.pop(op.op_id, None)
        # Under dual ACKs the (single) validation is VAL_p, sent by
        # _await_cluster_persist once every replica has persisted.

    def _await_cluster_persist(self, op: _WriteOp, replica: KeyReplica) -> Generator:
        """Read-Enforced persistency: gather ACK_p from every follower and
        the local persist, then broadcast VAL_p (Figure 3(a))."""
        yield op.ack_p.wait()
        yield from self._ensure_persisted(replica, op.version, op.value,
                                          trigger="eager")
        self._broadcast(Message(MsgType.VAL_P, src=self.node_id, op_id=op.op_id,
                                key=op.key, version=op.version,
                                txn_id=op.txn_id))
        replica.mark_cluster_persisted(op.version)
        replica.end_inv(op.op_id)
        self._outstanding_writes.pop(op.op_id, None)

    def _background_round_dual(self, op: _WriteOp, replica: KeyReplica) -> Generator:
        """Read-Enforced consistency + Read-Enforced persistency: collect
        ACK_c in the background (write already completed), then hand off
        to the cluster-persist collector."""
        yield op.ack_c.wait()
        yield from self._await_cluster_persist(op, replica)

    def _background_round_simple(self, op: _WriteOp, replica: KeyReplica) -> Generator:
        """Read-Enforced consistency with single-ACK persistency models:
        collect ACKs, finish local persist if inline, broadcast VAL."""
        yield op.ack_c.wait()
        if self.ppolicy.persist_mode is PersistMode.INLINE:
            yield from self._ensure_persisted(replica, op.version, op.value)
        self._finish_invalidation(op, replica)

    def _background_round_txn(self, op: _WriteOp) -> Generator:
        """Transactional write: just collect the per-write ACKs; ENDX
        consumes them."""
        yield op.ack_c.wait()

    # -- update-based consistency (Causal / Eventual) ------------------------

    def _write_update(self, ctx: ClientContext, replica: KeyReplica,
                      version: Version, value: Any) -> Generator:
        op_id = self._next_op_id()
        cauhist: Tuple = ()
        if self.cpolicy.causal:
            cauhist = ctx.take_dependencies(replica.key, version)

        yield from self.memory.volatile_update(replica.key,
                                               self.config.value_bytes)
        replica.apply(version, value)

        strict = self.ppolicy.write_waits_for_persist_everywhere
        scope_id = (ctx.current_scope_id
                    if self.ppolicy.persist_mode is PersistMode.ON_SCOPE_END
                    else None)
        message = Message(MsgType.UPD, src=self.node_id, op_id=op_id,
                          key=replica.key, version=version, value=value,
                          cauhist=cauhist, scope_id=scope_id)

        if strict:
            # Strict persistency: the write completes only once durable
            # at every replica, so propagation cannot be lazy.
            targets = self.active_peers
            op = _WriteOp(op_id=op_id, key=replica.key, version=version,
                          value=value, ack_c=AckRound(self.sim, ()),
                          ack_p=AckRound(self.sim, targets))
            self._outstanding_writes[op_id] = op
            self._broadcast(message, targets=targets)
            self._arm_round_watchdog(op.ack_p, message)
            yield from self._ensure_persisted(replica, version, value,
                                              trigger="strict")
            yield op.ack_p.wait()
            self._outstanding_writes.pop(op_id, None)
            return

        if self.cpolicy.lazy_propagation:
            self._spawn_lazy_broadcast(message)
        else:
            self._broadcast(message)

        if self.ppolicy.persist_mode is PersistMode.INLINE:
            # Synchronous: persist right away (off the client's critical
            # path, Figure 2(e)); reads return the persisted version.
            self._spawn_persist(replica, version, value)
        elif self.ppolicy.persist_mode is PersistMode.EAGER_BACKGROUND:
            self._spawn_persist(replica, version, value, trigger="eager")
            op = _WriteOp(op_id=op_id, key=replica.key, version=version,
                          value=value, ack_c=AckRound(self.sim, ()),
                          ack_p=AckRound(self.sim, self.active_peers))
            self._outstanding_writes[op_id] = op
            self._arm_round_watchdog(op.ack_p, message)
            self.sim.process(self._causal_valp_round(op, replica),
                             name=f"n{self.node_id}.cvalp")
        elif self.ppolicy.persist_mode is PersistMode.LAZY_BACKGROUND:
            self._spawn_persist(replica, version, value,
                                delay_ns=self.config.lazy_persist_delay_ns,
                                trigger="lazy")
        # ON_SCOPE_END: nothing now; the scope's Persist call handles it.

    def _spawn_lazy_broadcast(self, message: Message):
        def runner() -> Generator:
            yield self.sim.timeout(self.config.lazy_propagation_delay_ns)
            self._broadcast(message, lazy=True)

        return self.sim.process(runner(), name=f"n{self.node_id}.lazyupd")

    def _causal_valp_round(self, op: _WriteOp, replica: KeyReplica) -> Generator:
        """<Causal/Eventual, Read-Enforced>: collect ACK_p and announce
        cluster durability with VAL_p (Figure 3(c))."""
        yield op.ack_p.wait()
        yield replica.condition.wait_for(
            lambda: replica.persisted_version >= op.version)
        self._broadcast(Message(MsgType.VAL_P, src=self.node_id, op_id=op.op_id,
                                key=op.key, version=op.version))
        replica.mark_cluster_persisted(op.version)
        self._outstanding_writes.pop(op.op_id, None)

    # ------------------------------------------------------------------
    # client API: transactions
    # ------------------------------------------------------------------

    def client_begin_txn(self, ctx: ClientContext) -> Generator:
        """Process: Init-Xaction round (Figure 4): INITX to all followers,
        who persist the event (under inline persistency) and ACK."""
        if not self.cpolicy.transactional:
            raise RuntimeError(f"{self.model} does not support transactions")
        yield self.request_workers.acquire()
        try:
            yield self.sim.timeout(self.config.req_proc_ns)
            txn = self.txn_table.begin(self.node_id, ctx.client_id)
            ctx.txn = txn
            if self.tracer.enabled:
                self.tracer.emit(self.sim.now, "txn_begin", node=self.node_id,
                                 txn_id=txn.txn_id, client=ctx.client_id)
            op_id = self._next_op_id()
            targets = self.active_peers
            round_op = _RoundOp(op_id, AckRound(self.sim, targets))
            self._outstanding_rounds[op_id] = round_op
            initx = Message(MsgType.INITX, src=self.node_id,
                            op_id=op_id, txn_id=txn.txn_id)
            self._broadcast(initx, targets=targets)
            self._arm_round_watchdog(round_op.acks, initx)
            if self.ppolicy.persist_mode is PersistMode.INLINE:
                yield from self.memory.persist(txn.txn_id)
                self.metrics.persists += 1
            yield round_op.acks.wait()
            self._outstanding_rounds.pop(op_id, None)
        finally:
            self.request_workers.release()

    def client_end_txn(self, ctx: ClientContext) -> Generator:
        """Process: End-Xaction round (Figure 4): ENDX to all followers,
        who complete the transaction's updates in LLC (and NVM under
        inline persistency) before ACKing; then VAL."""
        txn = ctx.txn
        if txn is None:
            raise RuntimeError("client_end_txn without an open transaction")
        yield self.request_workers.acquire()
        try:
            yield self.sim.timeout(self.config.req_proc_ns)
            self.txn_table.check_still_alive(txn)
            op_id = self._next_op_id()
            targets = self.active_peers
            round_op = _RoundOp(op_id, AckRound(self.sim, targets))
            self._outstanding_rounds[op_id] = round_op
            payload = tuple(txn.writes)
            endx = Message(MsgType.ENDX, src=self.node_id,
                           op_id=op_id, txn_id=txn.txn_id,
                           payload=payload)
            self._broadcast(endx, targets=targets)
            self._arm_round_watchdog(round_op.acks, endx)
            if self.ppolicy.persist_mode is PersistMode.INLINE:
                yield from self._persist_many(payload)
            elif self.ppolicy.persist_mode is PersistMode.EAGER_BACKGROUND:
                for key, version in payload:
                    replica = self.replicas.get(key)
                    self._spawn_persist(replica, version,
                                        replica.applied_value, trigger="endx")
            yield round_op.acks.wait()
            self._outstanding_rounds.pop(op_id, None)
            self.txn_table.commit(txn)
            self.metrics.txn_commits += 1
            if self.tracer.enabled:
                self.tracer.emit(self.sim.now, "txn_commit",
                                 node=self.node_id, txn_id=txn.txn_id,
                                 writes=len(payload))
            self._broadcast(Message(MsgType.VAL, src=self.node_id, op_id=op_id,
                                    txn_id=txn.txn_id, payload=payload))
            for key, version in payload:
                self.replicas.get(key).commit_undo(version)
            self._clear_txn_invs(txn.txn_id, payload)
            ctx.txn = None
        finally:
            # On a conflict, ctx.txn stays set so the client's abort path
            # can broadcast the squash to the followers.
            self.request_workers.release()

    def client_abort_txn(self, ctx: ClientContext) -> Generator:
        """Process: squash the open transaction.  Followers learn via a
        VAL carrying the abort's txn id (clearing transient state); the
        conflict winner's retry will overwrite any applied values."""
        txn = ctx.txn
        if txn is None:
            return
        yield self.request_workers.acquire()
        try:
            yield self.sim.timeout(self.config.req_proc_ns)
            if not txn.aborted:
                self.txn_table.abort(txn)
            self.metrics.txn_aborts += 1
            if self.tracer.enabled:
                self.tracer.emit(self.sim.now, "txn_abort", node=self.node_id,
                                 txn_id=txn.txn_id, writes=len(txn.writes))
            payload = tuple(txn.writes)
            op_id = self._next_op_id()
            self._broadcast(Message(MsgType.VAL, src=self.node_id, op_id=op_id,
                                    txn_id=txn.txn_id, payload=payload,
                                    abort=True))
            for key, version in payload:
                replica = self.replicas.get(key)
                replica.revert(version)
                if self.store is not None:
                    self.store.put(key, replica.applied_value)
            if self.ppolicy.persist_mode is PersistMode.ON_SCOPE_END:
                # Squashed writes must not be waited on at scope persist.
                reverted = set(payload)
                ctx.scope_writes = [w for w in ctx.scope_writes
                                    if w not in reverted]
            self._clear_txn_invs(txn.txn_id, payload)
        finally:
            ctx.txn = None
            self.request_workers.release()

    def _persist_many(self, pairs: Tuple[Tuple[int, Version], ...]) -> Generator:
        """Process: persist several (key, version) pairs concurrently and
        wait for all of them (used by the ENDX rounds)."""
        procs = []
        for key, version in pairs:
            replica = self.replicas.get(key)
            value = replica.applied_value
            procs.append(self.sim.process(
                self._ensure_persisted(replica, version, value,
                                       trigger="endx"),
                name=f"n{self.node_id}.pmany"))
        if procs:
            yield self.sim.all_of(procs)

    def _clear_txn_invs(self, txn_id: int, payload) -> None:
        """Coordinator side: clear its own transient markers for the
        transaction's writes (followers clear on the VAL message).

        Under dual ACKs the per-write VAL_p rounds own the cleanup (they
        still need the followers' ACK_p), so they are left alone here.
        """
        if self.ppolicy.dual_acks:
            return
        for op_id, op in list(self._outstanding_writes.items()):
            if op.txn_id == txn_id:
                self.replicas.get(op.key).end_inv(op_id)
                self._outstanding_writes.pop(op_id, None)

    # ------------------------------------------------------------------
    # client API: scopes
    # ------------------------------------------------------------------

    def client_persist_scope(self, ctx: ClientContext) -> Generator:
        """Process: the Persist call for the client's current scope
        (Figure 5): PERSIST to all followers, who persist every write of
        the scope and ACK_p; then VAL_p and completion."""
        if self.ppolicy.persist_mode is not PersistMode.ON_SCOPE_END:
            raise RuntimeError(f"{self.model} does not use scopes")
        scope_id, writes = ctx.close_scope()
        if not writes:
            return
        yield self.request_workers.acquire()
        try:
            scope_start = self.sim.now
            yield self.sim.timeout(self.config.req_proc_ns)
            op_id = self._next_op_id()
            targets = self.active_peers
            round_op = _RoundOp(op_id, AckRound(self.sim, targets))
            self._outstanding_rounds[op_id] = round_op
            payload = tuple(writes)
            persist_msg = Message(MsgType.PERSIST, src=self.node_id,
                                  op_id=op_id, scope_id=scope_id,
                                  payload=payload)
            self._broadcast(persist_msg, targets=targets)
            self._arm_round_watchdog(round_op.acks, persist_msg)
            yield from self._persist_scope_local(scope_id, payload)
            yield round_op.acks.wait()
            self._outstanding_rounds.pop(op_id, None)
            self._broadcast(Message(MsgType.VAL_P, src=self.node_id,
                                    op_id=op_id, scope_id=scope_id,
                                    payload=payload))
            for key, version in payload:
                self.replicas.get(key).mark_cluster_persisted(version)
            if self.tracer.enabled:
                self.tracer.emit(self.sim.now, "scope_persist",
                                 node=self.node_id,
                                 dur=self.sim.now - scope_start,
                                 scope_id=scope_id, writes=len(payload))
        finally:
            self.request_workers.release()

    def _persist_scope_local(self, scope_id: int, payload) -> Generator:
        procs = []
        for key, version in payload:
            replica = self.replicas.get(key)
            procs.append(self.sim.process(
                self._scope_persist_one(replica, version, scope_id),
                name=f"n{self.node_id}.scopep"))
        if procs:
            yield self.sim.all_of(procs)
        if self.nvm_log is not None:
            self.nvm_log.commit_scope(self.node_id, scope_id)

    def _scope_persist_one(self, replica: KeyReplica, version: Version,
                           scope_id: int) -> Generator:
        # The update must have been applied locally before it can persist.
        yield replica.condition.wait_for(
            lambda: replica.applied_version >= version)
        value = replica.applied_value
        yield from self._ensure_persisted(replica, version, value, scope_id)

    # ------------------------------------------------------------------
    # follower message handlers
    # ------------------------------------------------------------------

    def _handle_message(self, message: Message) -> Generator:
        tracing = self.tracer.enabled
        if tracing:
            self.tracer.emit(self.sim.now, "msg_recv", node=self.node_id,
                             msg=message.msg_type.value, src=message.src,
                             op_id=message.op_id, key=message.key,
                             version=message.version)
            handle_start = self.sim.now
        yield from self._charge_protocol_cpu()
        handler = self._handlers[message.msg_type](message)
        profile = self.sim.profile
        if profile is None:
            yield from handler
        else:
            # Transparent timing shim: yields the same events in the same
            # order, so the run stays byte-identical (see KernelProfile).
            yield from profile.drive_handler(message.msg_type.value, handler)
        if tracing:
            self.tracer.emit(self.sim.now, "msg_handle", node=self.node_id,
                             dur=self.sim.now - handle_start,
                             msg=message.msg_type.value, src=message.src,
                             op_id=message.op_id)

    # -- invalidation path ------------------------------------------------------

    def _on_inv(self, message: Message) -> Generator:
        replica = self.replicas.get(message.key)
        replica.begin_inv(message.op_id)
        if message.txn_id is not None:
            entries = self._txn_invs.setdefault(message.txn_id, [])
            # Resent INVs (round retries, duplication faults) must not
            # double-register: the post-ENDX VAL ends each inv once.
            if (message.key, message.op_id) not in entries:
                # repro: lint-ok[effect-conflict] membership-guarded; the post-ENDX VAL consumes the list wholesale, order unused
                entries.append((message.key, message.op_id))
        yield from self.memory.volatile_update(message.key,
                                               self.config.value_bytes,
                                               via_ddio=True)
        if message.txn_id is not None:
            self._apply_txn_write(replica, message.version, message.value)
        elif not replica.apply(message.version, message.value):
            replica.absorb_superseded(message.version, message.value)
        self.memory.consume_ddio(self.config.value_bytes)
        if self.store is not None:
            # The store must hold the LWW winner, not this message's
            # payload: a superseded INV arriving late would otherwise
            # clobber newer content.
            self.store.put(message.key, replica.applied_value)

        strict = self.ppolicy.write_waits_for_persist_everywhere
        inline = (self.ppolicy.persist_mode is PersistMode.INLINE
                  and message.txn_id is None) or strict
        if inline:
            # Synchronous/Strict: persist before acknowledging (Fig. 2(b)).
            yield from self._ensure_persisted(
                replica, message.version, message.value,
                trigger="strict" if strict else "inline")
            self._send(message.src, Message(MsgType.ACK, src=self.node_id,
                                            op_id=message.op_id,
                                            key=message.key,
                                            version=message.version))
            return

        self._send(message.src, Message(MsgType.ACK_C, src=self.node_id,
                                        op_id=message.op_id, key=message.key,
                                        version=message.version))
        if self.ppolicy.dual_acks:
            self.sim.process(
                self._persist_then_ack_p(replica, message),
                name=f"n{self.node_id}.ackp")
        elif self.ppolicy.persist_mode is PersistMode.LAZY_BACKGROUND:
            self._spawn_persist(replica, message.version, message.value,
                                delay_ns=self.config.lazy_persist_delay_ns,
                                trigger="lazy")
        # INLINE within a transaction: persist deferred to ENDX.
        # ON_SCOPE_END: persist deferred to the PERSIST message.

    def _persist_then_ack_p(self, replica: KeyReplica, message: Message,
                            trigger: str = "eager") -> Generator:
        yield from self._ensure_persisted(replica, message.version,
                                          message.value, trigger=trigger)
        self._send(message.src, Message(MsgType.ACK_P, src=self.node_id,
                                        op_id=message.op_id, key=message.key,
                                        version=message.version))

    def _on_val(self, message: Message) -> Generator:
        if message.txn_id is not None and message.key is None:
            # Post-ENDX (or abort) VAL: settle the transaction's writes
            # and clear all its INVs.
            for key, version in message.payload:
                replica = self.replicas.get(key)
                if message.abort:
                    # repro: lint-ok[effect-conflict] revert is a no-op unless applied_version == version (the txn's own write)
                    replica.revert(version)
                    if self.store is not None:
                        self.store.put(key, replica.applied_value)
                else:
                    replica.commit_undo(version)
            for key, op_id in self._txn_invs.pop(message.txn_id, []):
                self.replicas.get(key).end_inv(op_id)
            return
        replica = self.replicas.get(message.key)
        if (self.ppolicy.persist_mode is PersistMode.INLINE
                and message.txn_id is None and message.version is not None):
            # A combined VAL also announces cluster-wide durability.
            replica.mark_cluster_persisted(message.version)
        replica.end_inv(message.op_id)
        return
        yield  # pragma: no cover - makes this a generator

    def _on_val_p(self, message: Message) -> Generator:
        if message.payload:
            for key, version in message.payload:
                self.replicas.get(key).mark_cluster_persisted(version)
        if message.key is not None:
            replica = self.replicas.get(message.key)
            replica.mark_cluster_persisted(message.version)
            replica.end_inv(message.op_id)
        return
        yield  # pragma: no cover - makes this a generator

    def _on_ack_c(self, message: Message) -> Generator:
        op = self._outstanding_writes.get(message.op_id)
        if op is not None:
            op.ack_c.ack(message.src)
            return
        round_op = self._outstanding_rounds.get(message.op_id)
        if round_op is not None:
            round_op.acks.ack(message.src)
        return
        yield  # pragma: no cover - makes this a generator

    def _on_ack_p(self, message: Message) -> Generator:
        op = self._outstanding_writes.get(message.op_id)
        if op is not None and op.ack_p is not None:
            op.ack_p.ack(message.src)
            return
        round_op = self._outstanding_rounds.get(message.op_id)
        if round_op is not None:
            round_op.acks.ack(message.src)
        return
        yield  # pragma: no cover - makes this a generator

    # -- update path (Causal / Eventual) ----------------------------------------

    def _on_upd(self, message: Message) -> Generator:
        replica = self.replicas.get(message.key)
        strict = self.ppolicy.write_waits_for_persist_everywhere
        if strict:
            # Strict: durability is immediate and independent of
            # visibility ordering (the update may persist before the
            # volatile replica is updated).
            self.sim.process(self._persist_then_ack_p(replica, message,
                                                      trigger="strict"),
                             name=f"n{self.node_id}.strictp")
        if self.cpolicy.causal:
            unmet = self._first_unmet_dep(message.cauhist)
            if unmet is not None:
                self._buffer_causal(unmet, message)
                return
        yield from self._apply_update(message)
        if self.cpolicy.causal:
            yield from self._recheck_causal_waiters(message.key)

    def _first_unmet_dep(self, cauhist) -> Optional[int]:
        """The key of one not-yet-visible dependency, or None if all are
        satisfied.  Under Synchronous persistency a dependency is only
        satisfied once persisted (Figure 2(f))."""
        for dep_key, dep_version in cauhist:
            replica = self.replicas.get(dep_key)
            if replica.applied_version < dep_version:
                return dep_key
            if (self.ppolicy.deps_require_persist
                    and replica.persisted_version < dep_version):
                return dep_key
        return None

    def _buffer_causal(self, unmet_key: int, message: Message) -> None:
        # repro: lint-ok[effect-conflict] buffer order cannot leak: releases re-check deps and applies are version-guarded LWW
        self._causal_waiting.setdefault(unmet_key, []).append(message)
        self._causal_waiting_count += 1
        self.metrics.note_causal_buffer(self._causal_waiting_count)
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, "causal_buffered",
                             node=self.node_id, key=message.key,
                             version=message.version, waiting_on=unmet_key,
                             depth=self._causal_waiting_count)

    def _recheck_causal_waiters(self, key: int) -> Generator:
        """A version of ``key`` advanced: re-check the updates waiting on
        it; apply the now-satisfiable ones, chasing unlock chains."""
        work = [key]
        while work:
            advanced_key = work.pop()
            waiters = self._causal_waiting.pop(advanced_key, None)
            if not waiters:
                continue
            self._causal_waiting_count -= len(waiters)
            for message in waiters:
                unmet = self._first_unmet_dep(message.cauhist)
                if unmet is not None:
                    self._buffer_causal(unmet, message)
                    continue
                if self.tracer.enabled:
                    self.tracer.emit(self.sim.now, "causal_released",
                                     node=self.node_id, key=message.key,
                                     version=message.version,
                                     unblocked_by=advanced_key)
                yield from self._apply_update(message)
                work.append(message.key)

    def _apply_update(self, message: Message) -> Generator:
        replica = self.replicas.get(message.key)
        yield from self.memory.volatile_update(message.key,
                                               self.config.value_bytes,
                                               via_ddio=True)
        replica.apply(message.version, message.value)
        self.memory.consume_ddio(self.config.value_bytes)
        if self.store is not None:
            # LWW winner, not the message payload (see _on_inv).
            self.store.put(message.key, replica.applied_value)

        mode = self.ppolicy.persist_mode
        strict = self.ppolicy.write_waits_for_persist_everywhere
        if strict:
            pass  # persist + ACK_p already launched on receipt
        elif mode is PersistMode.INLINE:
            # Synchronous: persist at the visibility point (Fig. 2(f)).
            yield from self._ensure_persisted(replica, message.version,
                                              message.value)
        elif mode is PersistMode.EAGER_BACKGROUND:
            self.sim.process(self._persist_then_ack_p(replica, message),
                             name=f"n{self.node_id}.ackp")
        elif mode is PersistMode.LAZY_BACKGROUND:
            self._spawn_persist(replica, message.version, message.value,
                                delay_ns=self.config.lazy_persist_delay_ns,
                                trigger="lazy")
        # ON_SCOPE_END: wait for the PERSIST message.

    # -- transaction rounds -------------------------------------------------------

    def _on_initx(self, message: Message) -> Generator:
        if self.ppolicy.persist_mode is PersistMode.INLINE:
            # Persist the transaction-begin event (Figure 4(b)).
            yield from self.memory.persist(message.txn_id)
            self.metrics.persists += 1
        self._send(message.src, Message(MsgType.ACK, src=self.node_id,
                                        op_id=message.op_id,
                                        txn_id=message.txn_id))

    def _on_endx(self, message: Message) -> Generator:
        # All the transaction's updates must be applied locally...
        waits = []
        for key, version in message.payload:
            replica = self.replicas.get(key)
            waits.append(replica.condition.wait_for(
                _applied_at_least(replica, version)))
        if waits:
            yield self.sim.all_of(waits)
        # ... and durable, under inline persistency (Figure 4(b)).
        if self.ppolicy.persist_mode is PersistMode.INLINE:
            yield from self._persist_many(message.payload)
        elif self.ppolicy.persist_mode is PersistMode.EAGER_BACKGROUND:
            for key, version in message.payload:
                replica = self.replicas.get(key)
                self._spawn_persist(replica, version, replica.applied_value,
                                    trigger="endx")
        self._send(message.src, Message(MsgType.ACK, src=self.node_id,
                                        op_id=message.op_id,
                                        txn_id=message.txn_id))

    # -- scope rounds -----------------------------------------------------------------

    def _on_persist(self, message: Message) -> Generator:
        yield from self._persist_scope_local(message.scope_id, message.payload)
        self._send(message.src, Message(MsgType.ACK_P, src=self.node_id,
                                        op_id=message.op_id,
                                        scope_id=message.scope_id))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def causal_buffer_len(self) -> int:
        return self._causal_waiting_count

    @property
    def outstanding_write_count(self) -> int:
        return len(self._outstanding_writes)

    @property
    def inflight_round_count(self) -> int:
        """Outstanding INITX / ENDX / PERSIST coordination rounds."""
        return len(self._outstanding_rounds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProtocolNode(node={self.node_id}, model={self.model}, "
                f"keys={len(self.replicas)})")


def _applied_at_least(replica: KeyReplica, version: Version):
    """Predicate factory (avoids late-binding bugs in loops)."""
    return lambda: replica.applied_version >= version
