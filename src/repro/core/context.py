"""Per-client session context: causal dependencies, scopes, transactions.

Causal consistency needs each update to carry its *causal history*
(``cauhist``): the happens-before predecessors of the write.  Following
the standard nearest-dependency optimization (as in COPS), a client
tracks the (key, version) pairs it has observed — reads it performed and
writes it issued — since its last write; a new write depends on exactly
those, because earlier history is transitively covered by them.

Scope persistency needs each client to tag writes with its current scope
id and to remember which (key, version) pairs a scope contains, so the
Persist call can name them.  Transactional consistency similarly tracks
the writes of the open transaction for the ENDX payload.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.replica import Version

__all__ = ["ClientContext"]


class ClientContext:
    """Session state for one client thread."""

    def __init__(self, client_id: int, node_id: int):
        self.client_id = client_id
        self.node_id = node_id
        # Nearest causal dependencies: key -> version observed since the
        # last write (superseded observations keep only the max version).
        self._deps: Dict[int, Version] = {}
        # Scope tracking.
        self.scope_counter = 0
        self.scope_writes: List[Tuple[int, Version]] = []
        # Open transaction (managed by the protocol engine).
        self.txn = None
        # Version returned by the session's most recent read (set by the
        # engine; used by session-guarantee validation and recorders).
        self.last_read_version: Version = (0, -1)
        # Version assigned to the session's most recent completed write
        # (set by the engine; used by crash-contract recorders to know
        # which versions the client was acknowledged for).
        self.last_write_version: Version = (0, -1)
        # Leader-variant forwarding provenance, set (under tracing) by
        # the origin node before handing the write to the leader and
        # consumed by the leader's _do_write so journey records can
        # attribute the forward hop: when the client write entered the
        # origin node, and how much of the gap was wire time.
        self.forward_start_ns = None
        self.forward_net_ns = 0.0

    # -- causal dependencies ------------------------------------------------------

    def observe(self, key: int, version: Version) -> None:
        """Record that the client saw ``key`` at ``version`` (read or write)."""
        if version[0] <= 0:
            return
        current = self._deps.get(key)
        if current is None or version > current:
            self._deps[key] = version

    def take_dependencies(self, key: int, version: Version) -> Tuple[Tuple[int, Version], ...]:
        """Consume the accumulated dependencies for a new write.

        Returns the cauhist for the write and resets the dependency set
        to just the write itself (nearest-dependency tracking).
        """
        cauhist = tuple(sorted(self._deps.items()))
        self._deps = {key: version}
        return cauhist

    @property
    def dependency_count(self) -> int:
        return len(self._deps)

    # -- scopes --------------------------------------------------------------------

    @property
    def current_scope_id(self) -> int:
        """Scope ids are totally ordered within a client, unordered across
        clients (the paper's design choice in Section 2.2)."""
        return self.client_id * 1_000_000 + self.scope_counter

    def record_scope_write(self, key: int, version: Version) -> None:
        self.scope_writes.append((key, version))

    def close_scope(self) -> Tuple[int, List[Tuple[int, Version]]]:
        """End the current scope; return (scope_id, its writes)."""
        scope_id = self.current_scope_id
        writes = self.scope_writes
        self.scope_writes = []
        self.scope_counter += 1
        return scope_id, writes
