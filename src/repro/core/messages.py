"""Protocol message vocabulary (paper Table 3).

All protocol traffic is expressed with these message types:

=============  ==============================================================
INV (+data)    Invalidate a key's current value, carrying the new value.
ACK            Acknowledge an event (combined consistency+persistency).
ACK_C          Acknowledge a consistency event (volatile replica updated).
ACK_P          Acknowledge a persistency event (update persisted to NVM).
VAL            Mark the termination of an event (combined).
VAL_C          Terminate a consistency event (all volatile replicas updated).
VAL_P          Terminate a persistency event (all replicas persisted).
UPD (+cauhist) Provide an updated value, plus causal history under Causal.
INITX / ENDX   Transaction begin / end.
PERSIST        End of scope ``s`` (Scope persistency).
=============  ==============================================================

Under Scope persistency every message carries the scope id it belongs to
(the paper's ``[XXX]s`` notation) via the ``scope_id`` field.

Sizes approximate a compact wire format: a 16-byte header, 8-byte key,
and (for data-carrying messages) a value payload; causal histories add
one (key, version) pair per dependency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["MsgType", "Message", "HEADER_BYTES", "VALUE_BYTES", "CAUHIST_ENTRY_BYTES"]

HEADER_BYTES = 16
KEY_BYTES = 8
VALUE_BYTES = 64
CAUHIST_ENTRY_BYTES = 12


class MsgType(enum.Enum):
    """The message types of Table 3."""

    INV = "INV"
    ACK = "ACK"
    ACK_C = "ACK_c"
    ACK_P = "ACK_p"
    VAL = "VAL"
    VAL_C = "VAL_c"
    VAL_P = "VAL_p"
    UPD = "UPD"
    INITX = "INITX"
    ENDX = "ENDX"
    PERSIST = "PERSIST"

    @property
    def carries_data(self) -> bool:
        return self in (MsgType.INV, MsgType.UPD)

    @property
    def is_ack(self) -> bool:
        return self in (MsgType.ACK, MsgType.ACK_C, MsgType.ACK_P)

    @property
    def is_val(self) -> bool:
        return self in (MsgType.VAL, MsgType.VAL_C, MsgType.VAL_P)


@dataclass(frozen=True)
class Message:
    """One protocol message.

    ``op_id`` identifies the client operation (write / transaction /
    scope-persist) the message belongs to, so coordinators can match ACKs
    to outstanding operations.  ``version`` is the per-key monotonically
    increasing version the update installs.  ``cauhist`` lists
    (key, version) dependencies under Causal consistency.  ``scope_id``
    tags all traffic under Scope persistency; ``txn_id`` tags traffic
    within Transactional consistency.
    """

    msg_type: MsgType
    src: int
    op_id: int
    key: Optional[int] = None
    version: Optional[int] = None
    value: Optional[object] = None
    cauhist: Tuple[Tuple[int, int], ...] = ()
    scope_id: Optional[int] = None
    txn_id: Optional[int] = None
    payload: Tuple[Tuple[int, int], ...] = ()
    """For INITX/ENDX/PERSIST: the (key, version) pairs covered."""
    abort: bool = False
    """A VAL with ``abort`` set squashes the transaction: followers
    revert the payload's writes instead of validating them."""

    @property
    def size_bytes(self) -> int:
        size = HEADER_BYTES
        if self.key is not None:
            size += KEY_BYTES
        if self.msg_type.carries_data:
            size += VALUE_BYTES
        size += len(self.cauhist) * CAUHIST_ENTRY_BYTES
        size += len(self.payload) * CAUHIST_ENTRY_BYTES
        return size

    def tagged(self) -> str:
        """Display form, scope-tagged like the paper's ``[INV]s``."""
        name = self.msg_type.value
        if self.scope_id is not None:
            return f"[{name}]{self.scope_id}"
        return name

    def __str__(self) -> str:
        parts = [self.tagged(), f"op={self.op_id}"]
        if self.key is not None:
            parts.append(f"key={self.key}")
        if self.version is not None:
            parts.append(f"v={self.version}")
        return " ".join(parts)
