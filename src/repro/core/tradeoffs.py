"""Qualitative trade-off analysis of DDP models (paper Section 6, Table 4).

The paper compares DDP models along durability, performance (write/read
optimization and traffic), programmer intuition (monotonic reads and
non-stale reads), programmability, and implementability.  Rather than
hard-coding Table 4, this module *derives* each property from the model
pair with small rules that mirror the paper's reasoning; the unit tests
then assert that the derivation reproduces all ten rows of Table 4.

Definitions (Section 6):

* *Monotonic reads*: of two system-wide reads of a variable, the later
  one returns the same or a later version.
* *Non-stale reads*: a read that follows a write system-wide returns the
  written value — in particular, a failure between the write and the
  read must not lose the written version.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.core.model import Consistency, DdpModel, Persistency

__all__ = ["Level", "TradeoffProfile", "analyze", "analyze_all", "TABLE4_MODELS"]


class Level(enum.IntEnum):
    """Qualitative level; the paper's down/flat/up arrows."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2

    @property
    def arrow(self) -> str:
        return {Level.LOW: "v", Level.MEDIUM: "-", Level.HIGH: "^"}[self]


@dataclass(frozen=True)
class TradeoffProfile:
    """One row of Table 4."""

    model: DdpModel
    durability: Level
    write_optimized: bool
    read_optimized: bool
    traffic: Level
    performance: Level
    monotonic_reads: bool
    non_stale_reads: bool
    intuitiveness: Level
    programmability: Level
    implementability: Level

    def row(self) -> str:
        """Format as a Table-4-style row."""
        yn = lambda b: "yes" if b else "no"
        return (f"{str(self.model):<38} dur={self.durability.arrow} "
                f"wrOpt={yn(self.write_optimized):<3} "
                f"rdOpt={yn(self.read_optimized):<3} "
                f"traffic={self.traffic.arrow} perf={self.performance.arrow} "
                f"monot={yn(self.monotonic_reads):<3} "
                f"nonstale={yn(self.non_stale_reads):<3} "
                f"intuit={self.intuitiveness.arrow} "
                f"prog={self.programmability.arrow} "
                f"impl={self.implementability.arrow}")


def _durability(model: DdpModel) -> Level:
    """How much state survives a volatile-storage failure.

    Strict persists before writes complete and Scope recovers every
    completed scope: high.  Read-Enforced guarantees only read values:
    medium.  Eventual guarantees nothing: low.  Synchronous depends on
    the consistency model's visibility point: with Linearizable or
    Transactional consistency the write/transaction does not complete
    until persisted everywhere (high); with Read-Enforced or Causal
    consistency a completed write may still be lost (medium); with
    Eventual consistency even propagation is unbounded (low).
    """
    p, c = model.persistency, model.consistency
    if p is Persistency.STRICT or p is Persistency.SCOPE:
        return Level.HIGH
    if p is Persistency.EVENTUAL:
        return Level.LOW
    if p is Persistency.READ_ENFORCED:
        return Level.MEDIUM
    # Synchronous:
    if c in (Consistency.LINEARIZABLE, Consistency.TRANSACTIONAL):
        return Level.HIGH
    if c is Consistency.EVENTUAL:
        return Level.LOW
    return Level.MEDIUM


def _write_optimized(model: DdpModel) -> bool:
    """Writes are optimized unless they serialize persists in the write
    critical path: Strict always stalls writes; <Linearizable,
    Synchronous> completes only after the persist-carrying round."""
    if model.persistency is Persistency.STRICT:
        return False
    if (model.consistency is Consistency.LINEARIZABLE
            and model.persistency is Persistency.SYNCHRONOUS):
        return False
    return True


def _read_optimized(model: DdpModel) -> bool:
    """Reads are optimized unless they can wait on persist operations:
    Read-Enforced persistency stalls conflicting reads everywhere, and
    Synchronous/Strict persistency puts persists inside the validation
    rounds that Linearizable/Read-Enforced consistency reads wait for."""
    if model.persistency is Persistency.READ_ENFORCED:
        return False
    if (model.persistency in (Persistency.SYNCHRONOUS, Persistency.STRICT)
            and model.consistency in (Consistency.LINEARIZABLE,
                                      Consistency.READ_ENFORCED)):
        return False
    return True


def _traffic(model: DdpModel) -> Level:
    """Message volume: invalidation rounds are the medium baseline;
    causal histories make traffic high; lazy UPDs alone are low.
    Transactions (INITX/ENDX/VAL), double ACKs (Read-Enforced
    persistency), and scope-persist rounds each push it up a level."""
    c, p = model.consistency, model.persistency
    if c is Consistency.CAUSAL:
        base = Level.HIGH
    elif c is Consistency.EVENTUAL:
        base = Level.LOW
    else:
        base = Level.MEDIUM
    bump = 0
    if c is Consistency.TRANSACTIONAL:
        bump += 1
    if p is Persistency.READ_ENFORCED:
        bump += 1
    if p is Persistency.SCOPE:
        bump += 1
    return Level(min(Level.HIGH, base + bump))


def _performance(model: DdpModel, write_opt: bool, read_opt: bool) -> Level:
    """Overall performance from the two optimization axes.  Weak
    consistency (Causal/Eventual) keeps overall performance high even
    when reads can stall, because stalls only hit reads that race a
    yet-to-persist write (paper row 7)."""
    if write_opt and (read_opt or model.consistency in (Consistency.CAUSAL,
                                                        Consistency.EVENTUAL)):
        return Level.HIGH
    if write_opt or read_opt:
        return Level.MEDIUM
    return Level.LOW


def _monotonic_reads(model: DdpModel) -> bool:
    """Eventual consistency applies updates out of order; Eventual
    persistency and Scope persistency can lose an already-read version
    in a failure, breaking monotonicity across the crash."""
    if model.consistency is Consistency.EVENTUAL:
        return False
    if model.persistency in (Persistency.EVENTUAL, Persistency.SCOPE):
        return False
    return True


def _non_stale_reads(model: DdpModel) -> bool:
    """A completed write must never be lost: only immediate persistency
    (Strict, or Synchronous at an immediate visibility point) bound to a
    consistency model whose writes complete after full propagation
    (Linearizable / Transactional) guarantees this."""
    return (model.persistency in (Persistency.STRICT, Persistency.SYNCHRONOUS)
            and model.consistency in (Consistency.LINEARIZABLE,
                                      Consistency.TRANSACTIONAL))


def _intuitiveness(model: DdpModel, monotonic: bool, non_stale: bool) -> Level:
    """Both properties: high.  Monotonic only: medium.  Neither: low —
    except Scope persistency, which stays intuitive because recovery is
    all-or-nothing per scope (paper rows 9-10)."""
    if model.persistency is Persistency.SCOPE:
        return Level.HIGH
    if monotonic and non_stale:
        return Level.HIGH
    if monotonic:
        return Level.MEDIUM
    return Level.LOW


def _programmability(model: DdpModel) -> Level:
    """Annotating transactions or scopes burdens the developer."""
    if (model.consistency is Consistency.TRANSACTIONAL
            or model.persistency is Persistency.SCOPE):
        return Level.LOW
    return Level.HIGH


def _implementability(model: DdpModel) -> Level:
    """Conflict detection (transactions), causal-history buffering
    (Causal), and scope tracking (Scope) complicate the runtime."""
    if (model.consistency in (Consistency.TRANSACTIONAL, Consistency.CAUSAL)
            or model.persistency is Persistency.SCOPE):
        return Level.LOW
    return Level.HIGH


def analyze(model: DdpModel) -> TradeoffProfile:
    """Derive the full trade-off profile of one DDP model."""
    write_opt = _write_optimized(model)
    read_opt = _read_optimized(model)
    monotonic = _monotonic_reads(model)
    non_stale = _non_stale_reads(model)
    return TradeoffProfile(
        model=model,
        durability=_durability(model),
        write_optimized=write_opt,
        read_optimized=read_opt,
        traffic=_traffic(model),
        performance=_performance(model, write_opt, read_opt),
        monotonic_reads=monotonic,
        non_stale_reads=non_stale,
        intuitiveness=_intuitiveness(model, monotonic, non_stale),
        programmability=_programmability(model),
        implementability=_implementability(model),
    )


TABLE4_MODELS: List[DdpModel] = [
    DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS),
    DdpModel(Consistency.READ_ENFORCED, Persistency.SYNCHRONOUS),
    DdpModel(Consistency.TRANSACTIONAL, Persistency.SYNCHRONOUS),
    DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS),
    DdpModel(Consistency.EVENTUAL, Persistency.SYNCHRONOUS),
    DdpModel(Consistency.LINEARIZABLE, Persistency.READ_ENFORCED),
    DdpModel(Consistency.CAUSAL, Persistency.READ_ENFORCED),
    DdpModel(Consistency.LINEARIZABLE, Persistency.EVENTUAL),
    DdpModel(Consistency.LINEARIZABLE, Persistency.SCOPE),
    DdpModel(Consistency.TRANSACTIONAL, Persistency.SCOPE),
]
"""The ten representative rows of the paper's Table 4, in order."""


def analyze_all(models=None) -> List[TradeoffProfile]:
    """Profiles for ``models`` (default: the Table 4 ten)."""
    return [analyze(m) for m in (models or TABLE4_MODELS)]
