"""The paper's core contribution: DDP models and their protocols.

* :mod:`repro.core.model` — consistency/persistency model definitions
  and their Visibility/Durability Point semantics (Table 2).
* :mod:`repro.core.messages` — protocol message vocabulary (Table 3).
* :mod:`repro.core.policies` — per-model behavioral policies.
* :mod:`repro.core.replica` — per-key replica state machines.
* :mod:`repro.core.context` — per-client causal/scope/txn session state.
* :mod:`repro.core.engine` — the leaderless coordinator/follower
  protocol engine (Figures 2-5).
* :mod:`repro.core.tradeoffs` — the Table 4 trade-off derivation.
"""

from repro.core.context import ClientContext
from repro.core.engine import ProtocolConfig, ProtocolNode
from repro.core.messages import Message, MsgType
from repro.core.model import Consistency, DdpModel, Persistency, all_ddp_models
from repro.core.policies import (
    CONSISTENCY_POLICIES,
    PERSISTENCY_POLICIES,
    ConsistencyPolicy,
    PersistencyPolicy,
    PersistMode,
    policy_for,
)
from repro.core.replica import KeyReplica, ReplicaTable, Version, ZERO_VERSION
from repro.core.tradeoffs import TABLE4_MODELS, Level, TradeoffProfile, analyze, analyze_all

__all__ = [
    "CONSISTENCY_POLICIES",
    "ClientContext",
    "Consistency",
    "ConsistencyPolicy",
    "DdpModel",
    "KeyReplica",
    "Level",
    "Message",
    "MsgType",
    "PERSISTENCY_POLICIES",
    "PersistMode",
    "Persistency",
    "PersistencyPolicy",
    "ProtocolConfig",
    "ProtocolNode",
    "ReplicaTable",
    "TABLE4_MODELS",
    "TradeoffProfile",
    "Version",
    "ZERO_VERSION",
    "all_ddp_models",
    "analyze",
    "analyze_all",
    "policy_for",
]
