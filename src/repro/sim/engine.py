"""Discrete-event simulation kernel.

This module provides the event loop that the whole reproduction runs on.
It is a compact, generator-coroutine kernel in the style of SimPy:
processes are Python generators that ``yield`` events, and the simulator
advances virtual time by popping the earliest scheduled event from a heap.

Design notes
------------
* Time is a ``float`` in **nanoseconds**.  All other packages
  (:mod:`repro.net`, :mod:`repro.memory`, ...) express latencies in ns so
  that NVM persists (hundreds of ns) and network round trips (thousands
  of ns) live on the same axis, as in the paper's Table 5.
* Events carry a payload (``value``) and an ok/failed status.  Failing an
  event propagates the exception into every waiting process; a failed
  process that nobody waits on re-raises from :meth:`Simulator.step`, so
  protocol bugs surface as test failures rather than silent hangs.
* Determinism: ties in the heap are broken by an insertion sequence
  number, so two runs with the same seed produce identical schedules.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. double-triggering an event)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()
"""Unique sentinel for the value of an untriggered event."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is later *triggered* exactly once with
    either :meth:`succeed` or :meth:`fail`.  Processes that yielded the
    event are resumed when the simulator processes the trigger.

    ``kind`` is a profiling label: creation sites that know what an
    event *means* (a timeout, a message delivery, a ``call_at``
    callback, ...) overwrite the generic default so an attached
    :class:`~repro.obs.profile.KernelProfile` can bucket kernel time by
    event kind.  It is pure metadata — nothing in the kernel branches
    on it, so unprofiled runs behave identically.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "defused",
                 "kind")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.callbacks: Optional[List[Callable[[Event], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self.defused = False
        self.kind = "event"

    # -- state inspection ----------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (even if not yet processed)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ------------------------------------------------------------

    def succeed(self, value: Any = None) -> Event:
        """Trigger the event successfully, resuming waiters with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, 0.0)
        return self

    def fail(self, exc: BaseException) -> Event:
        """Trigger the event as failed; waiters see ``exc`` raised."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self.sim._schedule(self, 0.0)
        return self

    def trigger(self, other: Event) -> None:
        """Mirror another (triggered) event's outcome onto this one."""
        if other._ok:
            self.succeed(other._value)
        else:
            other.defused = True
            self.fail(other._value)

    # -- internal ------------------------------------------------------------

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that auto-triggers ``delay`` time units in the future."""

    __slots__ = ()

    def __init__(self, sim: Simulator, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.kind = "timeout"
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running coroutine.  The process *is* an event: it triggers when
    the generator returns (value = return value) or raises (failure).
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        super().__init__(sim)
        self.kind = "process_end"
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Kick off the process via an immediately-triggered initialization
        # event, so that it starts from within the event loop.
        init = Event(sim)
        init.kind = "process_start"
        init._ok = True
        init._value = None
        sim._schedule(init, 0.0)
        init.callbacks.append(self._resume)
        self._target = init

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            else:
                profile = self.sim.profile
                if profile is not None:
                    profile.callbacks_cancelled += 1
        interrupt_event = Event(self.sim)
        interrupt_event.kind = "interrupt"
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule(interrupt_event, 0.0)

    def _resume(self, trigger: Event) -> None:
        # ``hops`` counts trampoline fast-path continuations (yielding an
        # already-processed event resumes the generator without another
        # heap pop); the attached profile, if any, collects it on exit.
        profile = self.sim.profile
        hops = 0
        try:
            self.sim._active_process = self
            event: Event = trigger
            while True:
                try:
                    if event._ok:
                        target = self.generator.send(event._value)
                    else:
                        event.defused = True
                        target = self.generator.throw(event._value)
                except StopIteration as stop:
                    self._target = None
                    self.sim._active_process = None
                    if self._value is PENDING:
                        self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self._target = None
                    self.sim._active_process = None
                    if self._value is PENDING:
                        self.fail(exc)
                    else:  # pragma: no cover - double fault
                        raise
                    return

                if not isinstance(target, Event) or target.sim is not self.sim:
                    self._target = None
                    self.sim._active_process = None
                    self.fail(
                        SimulationError(
                            f"process {self.name!r} yielded invalid target "
                            f"{target!r}"
                        )
                    )
                    return

                if target.callbacks is None:
                    # Already processed: continue immediately with its value.
                    event = target
                    hops += 1
                    continue
                target.callbacks.append(self._resume)
                self._target = target
                self.sim._active_process = None
                return
        finally:
            if profile is not None:
                profile.resume_segments += 1
                profile.trampoline_hops += hops


class AllOf(Event):
    """Triggers when *all* child events have succeeded.

    Value is the list of child values, in the order given.  Fails fast if
    any child fails.
    """

    __slots__ = ("_children", "_pending_count")

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        self.kind = "composite"
        self._children = list(events)
        self._pending_count = 0
        for child in self._children:
            if child.callbacks is None:
                if not child.ok:
                    raise child.value
                continue
            self._pending_count += 1
            child.callbacks.append(self._on_child)
        if self._pending_count == 0:
            self.succeed([c.value for c in self._children])

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            child.defused = True
            return
        if not child._ok:
            child.defused = True
            self.fail(child._value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Triggers when the *first* child event triggers (ok or failed).

    Value is ``(index, value)`` of the first child to complete.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        self.kind = "composite"
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            if child.callbacks is None:
                if child.ok:
                    self.succeed((index, child.value))
                else:
                    self.fail(child.value)
                return
            child.callbacks.append(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(child: Event) -> None:
            if self.triggered:
                child.defused = True
                return
            if child._ok:
                self.succeed((index, child._value))
            else:
                child.defused = True
                self.fail(child._value)

        return on_child


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()

        def worker():
            yield sim.timeout(5)
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert sim.now == 5.0 and proc.value == "done"
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        # Optional kernel profiler (see repro.obs.profile.KernelProfile).
        # None by default so the hot loop pays one attribute check per
        # step and nothing else.
        self.profile = None
        # Optional tie-batch order sanitizer (see
        # repro.devtools.sanitizer.TieBatchSanitizer): observes — and in
        # sanitizing mode permutes — same-timestamp pop batches.  Same
        # contract as ``profile``: None by default, one check per run.
        self.order_sanitizer = None

    # -- factory helpers ------------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Launch a generator as a concurrent process."""
        if self.profile is not None:
            self.profile.processes_spawned += 1
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- scheduling -------------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))
        self._sequence += 1

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run a plain callback at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"call_at into the past: {when} < {self.now}")
        event = Event(self)
        event.kind = "call_at"
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _ev: fn())
        self._schedule(event, when - self.now)

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run a plain callback at the current time, after pending events."""
        self.call_at(self.now, fn)

    # -- running ------------------------------------------------------------------

    def step(self) -> None:
        """Process the single next event."""
        profile = self.profile
        if profile is not None:
            self._profiled_step(profile)
            return
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        event._run_callbacks()
        if event._ok is False and not event.defused:
            # A failure nobody consumed: surface it instead of losing it.
            raise event._value

    def _profiled_step(self, profile: Any) -> None:
        """The :meth:`step` body with attribution hooks around it.

        Identical scheduling semantics — same pop, same callback order —
        so a profiled run stays byte-identical to an unprofiled one; the
        profile merely brackets each event with wall-clock reads and
        scheduling statistics (see ``KernelProfile.step_start/step_end``).
        """
        t0 = profile.step_start(len(self._heap), self._heap[0][0])
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        event._run_callbacks()
        profile.step_end(event.kind, event.defused, t0)
        if event._ok is False and not event.defused:
            # A failure nobody consumed: surface it instead of losing it.
            raise event._value

    def _sanitized_run(self, until: Optional[float], sanitizer: Any) -> None:
        """The :meth:`run` loop popping whole same-timestamp *waves*.

        All entries tied at the next timestamp are popped together and
        handed to the sanitizer, which records the batch and (in
        sanitizing mode) permutes its processing order.  With the
        identity permutation this is exactly the plain loop: the heap
        yields ties in insertion-sequence order, and events scheduled
        *while* a wave runs always carry larger sequence numbers, so
        they land in a later wave just as they would pop later.
        """
        heap = self._heap
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                self.now = until
                return
            batch = [heapq.heappop(heap)]
            while heap and heap[0][0] == when:
                batch.append(heapq.heappop(heap))
            if len(batch) > 1:
                sanitizer.observe(when, batch)
            self.now = when
            for _when, _seq, event in batch:
                event._run_callbacks()
                if event._ok is False and not event.defused:
                    raise event._value
        if until is not None:
            self.now = until

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or ``until`` (absolute ns) is reached."""
        if until is not None and until < self.now:
            raise ValueError(f"run(until={until}) is in the past (now={self.now})")
        if self.order_sanitizer is not None:
            self._sanitized_run(until, self.order_sanitizer)
            return
        profile = self.profile
        if profile is None:
            while self._heap:
                when = self._heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    return
                self.step()
            if until is not None:
                self.now = until
            return
        t0 = profile.loop_enter()
        try:
            while self._heap:
                when = self._heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    return
                self._profiled_step(profile)
            if until is not None:
                self.now = until
        finally:
            profile.loop_exit(t0)

    def run_until_complete(self, process: Process) -> Any:
        """Run until ``process`` finishes; return its value (or raise)."""
        profile = self.profile
        t0 = profile.loop_enter() if profile is not None else 0.0
        try:
            while not process.triggered:
                if not self._heap:
                    raise SimulationError(
                        f"deadlock: {process.name!r} still pending with no events"
                    )
                self.step()
        finally:
            if profile is not None:
                profile.loop_exit(t0)
        if not process.ok:
            # The caller consumes the failure here; the process's own
            # completion event (still queued) must not re-raise it.
            process.defused = True
            raise process.value
        return process.value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    @property
    def queue_depth(self) -> int:
        """Scheduled-but-unprocessed events (the kernel's backlog; the
        health monitor samples this as its load signal)."""
        return len(self._heap)
