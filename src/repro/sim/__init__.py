"""Discrete-event simulation substrate.

The kernel (:mod:`repro.sim.engine`) provides generator-coroutine
processes over a virtual-time event loop; :mod:`repro.sim.sync` adds the
resource/queue/latch/condition primitives the protocol and hardware
models are built from; :mod:`repro.sim.rng` provides deterministic,
forkable random streams; :mod:`repro.sim.trace` provides structured
event tracing.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.rng import SeededStream
from repro.sim.sync import Condition, Latch, Resource, Store
from repro.sim.trace import NullTracer, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "Interrupt",
    "Latch",
    "NullTracer",
    "Process",
    "Resource",
    "SeededStream",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
