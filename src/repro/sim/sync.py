"""Synchronization and queueing primitives for the simulation kernel.

These are the building blocks the substrates use:

* :class:`Resource` — a counted resource with FIFO waiters.  Models NVM
  banks, NIC queue pairs, and worker cores.
* :class:`Store` — an unbounded FIFO channel of items.  Models message
  queues between the network and protocol engines.
* :class:`Latch` — a countdown latch.  Models "wait for N ACKs".
* :class:`Condition` — predicate waiting with explicit re-checks.  Models
  read stalls ("wait until the latest visible version is persisted").
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List

from repro.sim.engine import Event, Simulator

__all__ = ["Resource", "Store", "Latch", "Condition"]


class Resource:
    """A counted resource with FIFO admission.

    ``capacity`` concurrent holders are admitted; further ``acquire``
    events queue.  Use in a process as::

        grant = yield resource.acquire()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Telemetry for utilization / queueing analysis.
        self.total_acquires = 0
        self.peak_queue_len = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """An event that triggers when a unit of the resource is granted."""
        self.total_acquires += 1
        event = self.sim.event()
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
            self.peak_queue_len = max(self.peak_queue_len, len(self._waiters))
        return event

    def release(self) -> None:
        """Return one unit; hands it to the oldest *live* waiter if any.

        A queued waiter whose process was interrupted before admission
        (a crashed node's client, mid-``acquire``) has no callbacks left
        on its event; granting it would leak the unit forever.  Such
        dead waiters are skipped — in a fault-free run every queued
        event still carries its process resume callback, so this path
        never changes healthy admission order.
        """
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.callbacks:
                waiter.succeed(self)
                return
        self._in_use -= 1

    def use(self, duration: float) -> Generator:
        """Process helper: acquire, hold for ``duration``, release."""
        yield self.acquire()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Store:
    """An unbounded FIFO channel.

    ``put`` never blocks; ``get`` returns an event yielding the oldest
    item (immediately if one is buffered).
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.total_puts = 0
        self.peak_len = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self.total_puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)
            self.peak_len = max(self.peak_len, len(self._items))

    def get(self) -> Event:
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Latch:
    """A countdown latch: triggers its event after ``count`` arrivals.

    Used by coordinators waiting for ACKs from all followers.  Extra
    arrivals beyond ``count`` raise, catching protocol double-ACK bugs.
    """

    def __init__(self, sim: Simulator, count: int, name: str = "latch"):
        if count < 0:
            raise ValueError(f"negative latch count: {count}")
        self.sim = sim
        self.name = name
        self._remaining = count
        self.event = sim.event()
        if count == 0:
            self.event.succeed()

    @property
    def remaining(self) -> int:
        return self._remaining

    def arrive(self, value: Any = None) -> None:
        if self._remaining <= 0:
            raise RuntimeError(f"latch {self.name!r} overrun")
        self._remaining -= 1
        if self._remaining == 0:
            self.event.succeed(value)

    def wait(self) -> Event:
        return self.event


class Condition:
    """Wait until a predicate over shared state holds.

    Unlike an event, a condition can be waited on by many processes and
    re-evaluated many times.  State mutators call :meth:`notify` after
    changing anything the predicates may read.
    """

    def __init__(self, sim: Simulator, name: str = "condition"):
        self.sim = sim
        self.name = name
        self._waiters: List[tuple] = []

    def wait_for(self, predicate: Callable[[], bool]) -> Event:
        """Event triggering once ``predicate()`` is true (maybe immediately)."""
        event = self.sim.event()
        if predicate():
            event.succeed()
        else:
            self._waiters.append((predicate, event))
        return event

    def notify(self) -> None:
        """Re-check all waiting predicates; wake those now satisfied."""
        if not self._waiters:
            return
        still_waiting = []
        for predicate, event in self._waiters:
            if predicate():
                event.succeed()
            else:
                still_waiting.append((predicate, event))
        self._waiters = still_waiting

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)
