"""Event tracing for simulations.

A :class:`Tracer` collects structured trace records (time, category,
node, details).  Protocol engines emit traces for message sends, state
transitions, persists, and stalls; tests and the recovery checker replay
them to validate protocol invariants, debugging dumps them as text, and
:mod:`repro.obs` exports them to Chrome ``trace_event`` JSON / JSONL
timelines.

Records come in two shapes:

* **instant events** (``phase == "i"``) — something happened at one
  point in simulated time (a message send, a persist completion);
* **spans** (``phase == "X"``) — something took a duration, recorded at
  its *end* with ``dur`` nanoseconds of extent (a stall, a message
  handler, an NVM persist including queueing).  Instrumentation sites
  compute the duration themselves (``dur=now - start``), so a span costs
  exactly one record and no open-span bookkeeping.

Storage is bounded: ``max_records`` caps memory, either by dropping new
records once full (``ring=False``, the default — the head of the run is
kept) or by evicting the oldest (``ring=True`` — the tail is kept, the
right mode for "what just happened before the bug").  Either way the
``dropped`` counter says how much is missing.

Tracing is off by default (a :class:`NullTracer` is used) so the hot
simulation path pays a single attribute lookup per potential record.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer", "NullTracer"]

INSTANT = "i"
SPAN = "X"
COUNTER = "C"


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry (an instant event, span, or counter sample)."""

    time: float
    category: str
    node: Optional[int]
    details: Dict[str, Any] = field(default_factory=dict)
    phase: str = INSTANT
    dur: float = 0.0
    """Span extent in ns; the record's ``time`` is the span *end*, so
    the span covers ``[time - dur, time]``."""

    @property
    def start(self) -> float:
        return self.time - self.dur

    def format(self) -> str:
        detail_str = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        node_str = f"n{self.node}" if self.node is not None else "--"
        dur_str = f" dur={self.dur:.0f}ns" if self.phase == SPAN else ""
        return (f"[{self.time:>12.1f}ns] {node_str:>4} "
                f"{self.category:<18}{dur_str} {detail_str}")


class Tracer:
    """Collects trace records, with optional category filtering and a
    bounded-memory mode.

    ``max_records=None`` keeps everything (tests, short runs).  With a
    cap, ``ring=False`` keeps the first ``max_records`` records and
    ``ring=True`` the last; ``dropped`` counts the records lost either
    way.
    """

    enabled = True

    def __init__(self, categories: Optional[List[str]] = None,
                 max_records: Optional[int] = None, ring: bool = False):
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be positive: {max_records}")
        self._ring = ring and max_records is not None
        self._max_records = max_records
        if self._ring:
            self.records = deque(maxlen=max_records)
        else:
            self.records = []
        self._categories = set(categories) if categories else None
        self.dropped = 0

    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        dur: Optional[float] = None,
        phase: Optional[str] = None,
        **details: Any,
    ) -> None:
        """Record one event.

        Passing ``dur`` makes the record a span ending at ``time``;
        ``phase`` overrides the instant/span classification (e.g. ``"C"``
        for counter samples).  Duck-typed tracer sinks that only take
        ``(time, category, node, **details)`` receive ``dur``/``phase``
        as ordinary detail keys and may ignore them.
        """
        if self._categories is not None and category not in self._categories:
            return
        if phase is None:
            phase = SPAN if dur is not None else INSTANT
        record = TraceRecord(time, category, node, details, phase,
                             dur if dur is not None else 0.0)
        if self._ring:
            if len(self.records) == self._max_records:
                self.dropped += 1
            self.records.append(record)
        elif (self._max_records is not None
                and len(self.records) >= self._max_records):
            self.dropped += 1
        else:
            self.records.append(record)

    def span(self, start: float, end: float, category: str,
             node: Optional[int] = None, **details: Any) -> None:
        """Convenience: record a span covering ``[start, end]``."""
        self.emit(end, category, node=node, dur=end - start, **details)

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        return (r for r in self.records if r.category == category)

    def count(self, category: str) -> int:
        return sum(1 for _ in self.by_category(category))

    def categories(self) -> Dict[str, int]:
        """Category -> record count, for timeline summaries."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.category] = counts.get(record.category, 0) + 1
        return counts

    def dump(self, limit: Optional[int] = None) -> str:
        records = list(self.records)
        if limit is not None:
            records = records[:limit]
        return "\n".join(r.format() for r in records)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)


class NullTracer:
    """A tracer that drops everything; the default for performance."""

    enabled = False
    records: List[TraceRecord] = []
    dropped = 0

    def emit(self, *args: Any, **kwargs: Any) -> None:
        pass

    def span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        return iter(())

    def count(self, category: str) -> int:
        return 0

    def categories(self) -> Dict[str, int]:
        return {}

    def dump(self, limit: Optional[int] = None) -> str:
        return ""

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0
