"""Event tracing for simulations.

A :class:`Tracer` collects structured trace records (time, category,
node, details).  Protocol engines emit traces for message sends, state
transitions, persists, and stalls; tests and the recovery checker replay
them to validate protocol invariants, and debugging dumps them as text.

Tracing is off by default (a :class:`NullTracer` is used) so the hot
simulation path pays a single attribute lookup per potential record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    node: Optional[int]
    details: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        detail_str = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        node_str = f"n{self.node}" if self.node is not None else "--"
        return f"[{self.time:>12.1f}ns] {node_str:>4} {self.category:<18} {detail_str}"


class Tracer:
    """Collects trace records, with optional category filtering."""

    enabled = True

    def __init__(self, categories: Optional[List[str]] = None):
        self.records: List[TraceRecord] = []
        self._categories = set(categories) if categories else None

    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **details: Any,
    ) -> None:
        if self._categories is not None and category not in self._categories:
            return
        self.records.append(TraceRecord(time, category, node, details))

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        return (r for r in self.records if r.category == category)

    def count(self, category: str) -> int:
        return sum(1 for _ in self.by_category(category))

    def dump(self, limit: Optional[int] = None) -> str:
        records = self.records if limit is None else self.records[:limit]
        return "\n".join(r.format() for r in records)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


class NullTracer:
    """A tracer that drops everything; the default for performance."""

    enabled = False
    records: List[TraceRecord] = []

    def emit(self, *args: Any, **kwargs: Any) -> None:
        pass

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        return iter(())

    def count(self, category: str) -> int:
        return 0

    def dump(self, limit: Optional[int] = None) -> str:
        return ""

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0
