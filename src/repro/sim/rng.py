"""Deterministic random-number utilities.

Every stochastic component (workload generators, service-time jitter,
crash injection) draws from a :class:`SeededStream` forked from a single
root seed, so whole-cluster simulations are reproducible bit-for-bit and
independent components do not perturb each other's streams.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["SeededStream"]


class SeededStream:
    """A named, forkable wrapper around :class:`random.Random`.

    Forking derives a child stream whose seed is a stable hash of the
    parent seed and the child name, so adding a new consumer does not
    shift the draws seen by existing consumers.
    """

    def __init__(self, seed: int, name: str = "root"):
        self.seed = seed
        self.name = name
        self._random = random.Random(seed)

    def fork(self, name: str) -> SeededStream:
        """Derive an independent child stream keyed by ``name``."""
        # Built-in hash() is salted per process (PYTHONHASHSEED), which
        # would make same-seed runs differ between invocations; a real
        # hash keeps forked seeds identical everywhere.
        digest = hashlib.blake2b(f"{self.seed}\x00{name}".encode(),
                                 digest_size=8).digest()
        child_seed = int.from_bytes(digest, "big") & 0x7FFFFFFFFFFFFFFF
        return SeededStream(child_seed, f"{self.name}/{name}")

    # Thin pass-throughs (explicit, so the public surface is visible).

    def random(self) -> float:
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, seq):
        return self._random.choice(seq)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def sample(self, population, k: int):
        return self._random.sample(population, k)

    def getstate(self):
        return self._random.getstate()

    def setstate(self, state) -> None:
        self._random.setstate(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededStream(name={self.name!r}, seed={self.seed})"
