"""Leader-based protocol variant (comparison baseline).

The paper's protocols are deliberately *leaderless*: any node
coordinates any operation.  It attributes its high read-conflict rates
partly to that choice — "we implement low-latency protocols with no
designated leader.  As a result, we find that over 30% of the read
requests conflict with a yet-to-persist write ... instead of 5.1% in
Ganesan's work" (Section 8.1.2), Ganesan's system being leader-based.

This variant designates one node the leader: every write is forwarded
to it (one extra hop each way, plus leader CPU), and the leader runs
the standard coordinator round; reads stay local.  Funneling writes
through one node serializes them, throttling the global write rate and
shrinking the window in which reads race unpersisted writes — the
mechanism behind Ganesan's much lower conflict fraction.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.analysis.metrics import Metrics, Summary
from repro.cluster.config import ClusterConfig
from repro.core.context import ClientContext
from repro.core.engine import ProtocolNode
from repro.core.messages import HEADER_BYTES, KEY_BYTES, VALUE_BYTES
from repro.core.model import DdpModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.net.network import Network
from repro.recovery.log import NvmLog
from repro.sim.engine import Simulator
from repro.sim.rng import SeededStream
from repro.store import make_store
from repro.txn.manager import TxnTable
from repro.workload.client import Client
from repro.workload.ycsb import RequestStream, WorkloadSpec

__all__ = ["LeaderProtocolNode", "LeaderCluster"]

_FORWARD_BYTES = HEADER_BYTES + KEY_BYTES + VALUE_BYTES
_REPLY_BYTES = HEADER_BYTES


class LeaderProtocolNode(ProtocolNode):
    """A protocol node that forwards all writes to a designated leader."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.leader_engine: Optional[LeaderProtocolNode] = None
        self.forwarded_writes = 0

    def _one_way_ns(self) -> float:
        return self.network.config.one_way_ns

    def _do_write(self, ctx: ClientContext, key: int, value: Any) -> Generator:
        leader = self.leader_engine
        if leader is None or leader is self:
            yield from super()._do_write(ctx, key, value)
            return
        # Forward hop to the leader (request payload on the wire).
        self.forwarded_writes += 1
        forward_start = self.sim.now
        self.metrics.record_message("FWD", _FORWARD_BYTES,
                                    time_ns=self.sim.now)
        forward_net = (self.nic.serialization_ns(_FORWARD_BYTES)
                       + self._one_way_ns())
        yield self.sim.timeout(forward_net)
        if self.tracer.enabled:
            # Hand the leader the forwarding provenance so its journey
            # record starts at the origin node's client issue.
            ctx.forward_start_ns = forward_start
            ctx.forward_net_ns = forward_net
        # The leader coordinates the write with its own worker capacity;
        # the client's session context travels with the request.
        yield leader.request_workers.acquire()
        try:
            yield from leader._do_write(ctx, key, value)
        finally:
            leader.request_workers.release()
        # Completion notification back to the origin node.
        self.metrics.record_message("FWD_ACK", _REPLY_BYTES,
                                    time_ns=self.sim.now)
        yield self.sim.timeout(
            self.nic.serialization_ns(_REPLY_BYTES) + self._one_way_ns())
        if self.tracer.enabled:
            # Span covers both hops plus the leader's coordination round.
            self.tracer.emit(self.sim.now, "fwd_write", node=self.node_id,
                             dur=self.sim.now - forward_start, key=key,
                             leader=leader.node_id)


class LeaderCluster:
    """A cluster whose writes all funnel through node 0."""

    def __init__(self, model: DdpModel, config: Optional[ClusterConfig] = None,
                 workload: Optional[WorkloadSpec] = None,
                 version_board=None, tracer=None):
        self.model = model
        self.config = config or ClusterConfig()
        self.tracer = tracer
        self.sim = Simulator()
        self.rng = SeededStream(self.config.seed, "leader")
        self.metrics = Metrics()
        self.network = Network(self.sim, self.config.network, tracer=tracer)
        self.txn_table = TxnTable()
        self.nvm_log = NvmLog(range(self.config.servers))
        self.engines: List[LeaderProtocolNode] = []
        for node_id in range(self.config.servers):
            memory = MemoryHierarchy(
                self.sim, self.rng.fork(f"mem{node_id}"),
                cores=self.config.cores_per_server,
                nvm_timing=self.config.nvm_timing,
                dram_timing=self.config.dram_timing, name=f"node{node_id}",
                tracer=tracer, node_id=node_id)
            nic = self.network.attach(node_id)
            store = (make_store(self.config.store_type)
                     if self.config.store_type else None)
            peer_ids = [n for n in range(self.config.servers) if n != node_id]
            self.engines.append(LeaderProtocolNode(
                self.sim, node_id, peer_ids, self.network, nic, memory,
                model, self.metrics, config=self.config.protocol,
                txn_table=self.txn_table, store=store, nvm_log=self.nvm_log,
                tracer=tracer, version_board=version_board))
        for engine in self.engines:
            engine.leader_engine = self.engines[0]
        self.clients: List[Client] = []
        if workload is not None:
            self._build_clients(workload)

    def _build_clients(self, workload: WorkloadSpec) -> None:
        client_id = 0
        for engine in self.engines:
            for _ in range(self.config.clients_per_server):
                stream = RequestStream(workload,
                                       self.rng.fork(f"client{client_id}"))
                self.clients.append(Client(self.sim, client_id, engine,
                                           stream, self.metrics))
                client_id += 1

    def start(self) -> None:
        for engine in self.engines:
            engine.start()
        for client in self.clients:
            client.start()

    def run(self, duration_ns: float, warmup_ns: float = 0.0) -> Summary:
        self.start()
        if warmup_ns > 0:
            self.sim.run(until=warmup_ns)
        self.metrics.warmup_end_ns = self.sim.now
        self.sim.run(until=duration_ns)
        self.metrics.txn_conflicts = self.txn_table.conflicts
        return self.metrics.summarize(self.sim.now)
