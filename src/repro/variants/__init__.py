"""Protocol variants used as comparison baselines (leader-based)."""

from repro.variants.leader import LeaderCluster, LeaderProtocolNode

__all__ = ["LeaderCluster", "LeaderProtocolNode"]
