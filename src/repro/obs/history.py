"""Client-observed operation histories (the ``repro.history/1`` artifact).

The black-box contract auditor (:mod:`repro.audit`) judges a run purely
from what its clients observed: every operation recorded as
``(client session, key, op, args, invoke_us, respond_us, result)``.
:class:`HistoryRecorder` is the bounded, deterministic recorder attached
at the workload/client boundary that captures exactly that.

Design rules (the same attachment discipline as every other sink in
:mod:`repro.obs`):

* **pure observation** — the recorder never touches the simulator: no
  events, no timeouts, no RNG draws.  A run with a recorder attached is
  byte-identical to a run without one (asserted by
  ``tests/obs/test_tracing_equivalence.py``).
* **invoke/complete bracketing** — clients register an operation when
  they issue it and complete it when the protocol acknowledges it.  An
  operation that is never completed — the client was severed by a node
  crash, or the run ended first — stays *pending* (``respond_us=None``):
  it may or may not have taken effect, and the audit checkers treat it
  exactly that way.
* **sessions and degraded eras** — a crash-restart of the client's node
  opens a fresh session (matching :meth:`repro.workload.client.Client.
  restart`).  Post-restart sessions are marked *degraded*: the node
  rebuilt its state from its own NVM image only (there is no rejoin
  catch-up sync in the modeled protocols), so those sessions may
  legitimately observe stale state and are excluded from cross-session
  consistency constraints (they still participate in phantom and
  durability checks).
* **bounded** — at most ``max_ops`` operations are kept; beyond that
  the recorder counts drops and the history is *truncated* (the audit
  engine refuses to produce verdicts from a truncated history).

Serialization is JSONL: a header line with the schema, run metadata and
the post-run recovered durable state, then one line per operation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from repro.core.replica import Version, ZERO_VERSION
from repro.obs.schemas import HISTORY_SCHEMA

__all__ = ["HISTORY_SCHEMA", "HistoryOpRecord", "History",
           "HistoryRecorder", "recovered_from_cluster", "write_history",
           "load_history"]


@dataclass
class HistoryOpRecord:
    """One client-observed operation.

    ``version`` is the operation's value *token*: the Lamport-style
    ``(seq, node_id)`` version the read observed or the write was
    assigned.  Client payload values are not unique (each client counts
    its own writes), so the checkers key on versions instead, Jepsen's
    unique-write-value trick done with data the protocol already has.

    ``respond_us=None`` marks a pending operation; ``severed`` tells a
    crash-severed pending op apart from one merely cut off by the end of
    the run.  ``ok=False`` marks an operation that failed cleanly (its
    transaction was squashed mid-access): it neither took effect nor
    observed anything.  ``committed`` carries a transaction attempt's or
    scope-persist's outcome: True/False, or None while unknown (severed
    mid-commit).
    """

    index: int
    client: int
    session: int
    node: int
    op: str                      # "read" | "write" | "persist"
    key: Optional[int]
    value: Any                   # written payload, or the value a read returned
    invoke_us: float
    respond_us: Optional[float] = None
    version: Optional[Version] = None
    txn_id: Optional[int] = None
    committed: Optional[bool] = None
    scope_id: Optional[int] = None
    severed: bool = False
    degraded: bool = False
    ok: bool = True

    @property
    def pending(self) -> bool:
        return self.respond_us is None and self.ok


@dataclass
class History:
    """A recorded (or loaded) history plus everything the audit needs."""

    meta: Dict[str, Any]
    ops: List[HistoryOpRecord]
    recovered: Dict[str, Any]
    """``{"merged": {key: {"version": [s, n], "value": v}},
    "per_node": {node: {key: ...}}}`` — durable state recovered after
    the run (empty when recovery was not captured)."""
    dropped: int = 0

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def recovered_versions(self) -> Dict[int, Version]:
        """Merged recovered state as ``{key: version}`` tuples."""
        merged = self.recovered.get("merged", {}) if self.recovered else {}
        out: Dict[int, Version] = {}
        for key, entry in merged.items():
            version = entry.get("version") if isinstance(entry, dict) else None
            if version is not None:
                out[int(key)] = (int(version[0]), int(version[1]))
        return out


class HistoryRecorder:
    """Bounded deterministic recorder of client-observed operations.

    One instance per run; clients call :meth:`invoke` / :meth:`complete`
    / :meth:`fail` around each operation (a closed-loop client has at
    most one operation in flight, so the open op is keyed by client id).
    """

    def __init__(self, sim=None, max_ops: int = 1_000_000):
        # ``sim`` is bound by the Cluster at construction when the
        # recorder is created first (the CLI flow).
        self.sim = sim
        self.max_ops = max_ops
        self.ops: List[HistoryOpRecord] = []
        self.dropped = 0
        self.meta: Dict[str, Any] = {}
        self.recovered: Dict[str, Any] = {}
        self._open: Dict[int, HistoryOpRecord] = {}
        self._sessions: Dict[int, int] = {}
        self._degraded: set = set()
        self._txn_ops: Dict[int, List[HistoryOpRecord]] = {}
        self.severed_ops = 0

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    # -- recording ----------------------------------------------------------

    def invoke(self, client: int, node: int, op: str, key: Optional[int],
               value: Any = None, txn_id: Optional[int] = None,
               scope_id: Optional[int] = None) -> None:
        """Register an operation at issue time."""
        if len(self.ops) >= self.max_ops:
            self.dropped += 1
            self._open.pop(client, None)
            return
        record = HistoryOpRecord(
            index=len(self.ops), client=client,
            session=self._sessions.get(client, 0), node=node, op=op,
            key=key, value=value, invoke_us=self.sim.now / 1000.0,
            txn_id=txn_id, scope_id=scope_id,
            degraded=client in self._degraded)
        self.ops.append(record)
        self._open[client] = record
        if txn_id is not None:
            self._txn_ops.setdefault(txn_id, []).append(record)

    def complete(self, client: int, version: Optional[Version] = None,
                 value: Any = None,
                 committed: Optional[bool] = None) -> None:
        """Acknowledge the client's open operation."""
        record = self._open.pop(client, None)
        if record is None:
            return
        record.respond_us = self.sim.now / 1000.0
        if version is not None:
            record.version = version
        if value is not None:
            record.value = value
        if committed is not None:
            record.committed = committed

    def fail(self, client: int) -> None:
        """The open operation failed cleanly (transaction squash): it
        neither took effect nor observed anything."""
        record = self._open.pop(client, None)
        if record is None:
            return
        record.respond_us = self.sim.now / 1000.0
        record.ok = False

    def sever(self, client: int) -> None:
        """The client was cut off mid-operation by a node crash; its
        open operation stays pending, flagged as crash-severed."""
        record = self._open.pop(client, None)
        if record is None:
            return
        record.severed = True
        self.severed_ops += 1

    def set_txn_outcome(self, txn_id: int, committed: bool) -> None:
        """Stamp every recorded op of a transaction attempt with its
        outcome (ops completed before the attempt's fate was known)."""
        for record in self._txn_ops.pop(txn_id, []):
            record.committed = committed

    def restart_session(self, client: int) -> None:
        """The client reconnected after its node crash-restarted: new
        session, degraded era (recovered-from-NVM state only)."""
        self._sessions[client] = self._sessions.get(client, 0) + 1
        self._degraded.add(client)

    # -- finishing ----------------------------------------------------------

    def finalize(self) -> None:
        """Close recording: any still-open operation stays pending
        (the run ended around it)."""
        self._open.clear()

    def history(self) -> History:
        return History(meta=dict(self.meta), ops=list(self.ops),
                       recovered=dict(self.recovered), dropped=self.dropped)


def recovered_from_cluster(cluster) -> Dict[str, Any]:
    """Capture the post-run durable state the persistency contracts are
    judged against: what NVM recovery would yield, per node and merged.

    Runs after the simulation has stopped and only *reads* the durable
    log, so it cannot perturb the run it observes.
    """
    from repro.recovery.recovery import recover_latest

    node_ids = list(range(cluster.config.servers))

    def entries_json(entries) -> Dict[str, Any]:
        return {str(key): {"version": list(version), "value": value}
                for key, (version, value) in sorted(entries.items())}

    per_node = {
        str(node_id): entries_json(
            recover_latest(cluster.nvm_log, [node_id]).entries)
        for node_id in node_ids
    }
    merged = entries_json(recover_latest(cluster.nvm_log, node_ids).entries)
    return {"merged": merged, "per_node": per_node}


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------

def write_history(path: str, history: History) -> None:
    """Serialize to JSONL: one header line, then one line per op."""
    header = {
        "schema": HISTORY_SCHEMA,
        "meta": history.meta,
        "ops": len(history.ops),
        "dropped": history.dropped,
        "truncated": history.truncated,
        "initial_version": list(ZERO_VERSION),
        "recovered": history.recovered,
    }
    with open(path, "w") as fh:
        json.dump(header, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
        for op in history.ops:
            doc = asdict(op)
            if doc["version"] is not None:
                doc["version"] = list(doc["version"])
            json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")


def load_history(path: str) -> History:
    """Load a ``repro.history/1`` JSONL artifact.

    Raises :class:`ValueError` on anything that is not one.
    """
    with open(path) as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError(f"{path}: empty file")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not JSONL ({exc})") from exc
        if not isinstance(header, dict) \
                or header.get("schema") != HISTORY_SCHEMA:
            raise ValueError(f"{path}: not a {HISTORY_SCHEMA} artifact")
        ops: List[HistoryOpRecord] = []
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad op line ({exc})") from exc
            version = doc.get("version")
            ops.append(HistoryOpRecord(
                index=int(doc["index"]), client=int(doc["client"]),
                session=int(doc.get("session", 0)), node=int(doc["node"]),
                op=str(doc["op"]),
                key=None if doc.get("key") is None else int(doc["key"]),
                value=doc.get("value"),
                invoke_us=float(doc["invoke_us"]),
                respond_us=(None if doc.get("respond_us") is None
                            else float(doc["respond_us"])),
                version=(None if version is None
                         else (int(version[0]), int(version[1]))),
                txn_id=doc.get("txn_id"),
                committed=doc.get("committed"),
                scope_id=doc.get("scope_id"),
                severed=bool(doc.get("severed", False)),
                degraded=bool(doc.get("degraded", False)),
                ok=bool(doc.get("ok", True))))
    declared = header.get("ops")
    if isinstance(declared, int) and declared != len(ops):
        raise ValueError(f"{path}: header declares {declared} ops but "
                         f"{len(ops)} lines follow")
    return History(meta=dict(header.get("meta", {})), ops=ops,
                   recovered=dict(header.get("recovered", {}) or {}),
                   dropped=int(header.get("dropped", 0)))
