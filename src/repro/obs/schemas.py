"""The artifact-schema registry: one place for every ``repro.*/N`` tag.

Seven PRs of observability each minted a schema string (run reports,
histories, lint reports, kernel profiles, diff reports, bench
artifacts, order sweeps) and each CLI load path re-implemented its own
"is this the artifact I expect?" check.  This module consolidates both:

* the **registry** — every artifact family the repo emits, its known
  versions, the current tag, and the top-level keys that every version
  of the family guarantees;
* :func:`validate_artifact` — the one loader-side check: given a parsed
  document, verify it names a known family at a known version and
  carries the family's required keys, with one-line errors suitable for
  the CLI's ``repro: <message>`` / exit-2 convention.

Writers import their tag via :func:`schema_tag` (or the module-level
constants) so a version bump happens in exactly one file; readers call
:func:`validate_artifact` before trusting any field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = ["ArtifactSchema", "SchemaError", "SCHEMAS", "schema_tag",
           "schema_tags", "parse_schema_tag", "validate_artifact",
           "RUN_REPORT_SCHEMA", "SWEEP_REPORT_SCHEMA", "HISTORY_SCHEMA",
           "BENCH_SCHEMA", "DIFF_REPORT_SCHEMA", "AUDIT_REPORT_SCHEMA",
           "LINT_REPORT_SCHEMA", "KERNEL_PROFILE_SCHEMA",
           "ORDER_SWEEP_SCHEMA"]


class SchemaError(ValueError):
    """A document that is not a usable repro artifact.

    Loaders surface the message verbatim (``repro: <message>``) and the
    CLI maps it to exit code 2.
    """


@dataclass(frozen=True)
class ArtifactSchema:
    """One artifact family the repo reads or writes."""

    family: str
    """The tag prefix, e.g. ``repro.run_report``."""
    versions: Tuple[int, ...]
    """Known versions, oldest first.  The last one is current."""
    required: Tuple[str, ...]
    """Top-level keys every version of the family guarantees (the
    *intersection* across versions, so old artifacts still validate)."""
    description: str

    @property
    def current(self) -> str:
        return f"{self.family}/{self.versions[-1]}"

    @property
    def tags(self) -> Tuple[str, ...]:
        return tuple(f"{self.family}/{v}" for v in self.versions)


_FAMILIES = (
    ArtifactSchema(
        "repro.run_report", (1, 2, 3, 4, 5, 6),
        ("meta", "summary", "windows"),
        "per-run report: summary, windowed series, optional journey/"
        "health/profile/faults/audit sections"),
    ArtifactSchema(
        "repro.sweep_report", (1,),
        ("meta", "cells", "totals"),
        "merged matrix sweep: one deterministic entry per "
        "(consistency, persistency, seed) cell"),
    ArtifactSchema(
        "repro.history", (1,),
        ("ops",),
        "client-observed operation history (JSONL; the required keys "
        "apply to the header line)"),
    ArtifactSchema(
        "repro.bench", (1,),
        ("bench", "config", "metrics"),
        "benchmark artifact archived beside the text tables"),
    ArtifactSchema(
        "repro.diff_report", (1,),
        ("baseline", "candidate", "verdict", "metrics"),
        "cross-run regression diff"),
    ArtifactSchema(
        "repro.audit_report", (1,),
        ("usable",),
        "black-box contract audit verdicts over the 5x5 matrix"),
    ArtifactSchema(
        "repro.lint_report", (1,),
        ("findings",),
        "reprolint findings"),
    ArtifactSchema(
        "repro.kernel_profile", (1,),
        ("meta", "profile"),
        "kernel performance observatory snapshot"),
    ArtifactSchema(
        "repro.order_sweep", (1,),
        ("cells", "ok", "coverage"),
        "ordering-sanitizer permutation sweep certificate"),
)

SCHEMAS: Dict[str, ArtifactSchema] = {s.family: s for s in _FAMILIES}


def _family(family: str) -> ArtifactSchema:
    schema = SCHEMAS.get(family)
    if schema is None:
        known = ", ".join(sorted(SCHEMAS))
        raise SchemaError(f"unknown artifact family {family!r} "
                          f"(known: {known})")
    return schema


def schema_tag(family: str, version: Optional[int] = None) -> str:
    """The ``family/version`` tag (current version by default)."""
    schema = _family(family)
    if version is None:
        return schema.current
    if version not in schema.versions:
        raise SchemaError(f"{family} has no version {version}")
    return f"{family}/{version}"


def schema_tags(family: str) -> Tuple[str, ...]:
    """Every known tag of a family, oldest first."""
    return _family(family).tags


# The writers' constants: bumping a version means touching exactly the
# registry entry above.
RUN_REPORT_SCHEMA = schema_tag("repro.run_report")
SWEEP_REPORT_SCHEMA = schema_tag("repro.sweep_report")
HISTORY_SCHEMA = schema_tag("repro.history")
BENCH_SCHEMA = schema_tag("repro.bench")
DIFF_REPORT_SCHEMA = schema_tag("repro.diff_report")
AUDIT_REPORT_SCHEMA = schema_tag("repro.audit_report")
LINT_REPORT_SCHEMA = schema_tag("repro.lint_report")
KERNEL_PROFILE_SCHEMA = schema_tag("repro.kernel_profile")
ORDER_SWEEP_SCHEMA = schema_tag("repro.order_sweep")


def parse_schema_tag(tag: Any) -> Tuple[str, int]:
    """Split a ``family/version`` tag; :class:`SchemaError` if it names
    no known family/version."""
    if not isinstance(tag, str) or "/" not in tag:
        raise SchemaError(f"not a repro schema tag: {tag!r}")
    family, _, version_text = tag.rpartition("/")
    schema = SCHEMAS.get(family)
    if schema is None:
        known = ", ".join(sorted(SCHEMAS))
        raise SchemaError(f"unknown artifact family {family!r} "
                          f"(known: {known})")
    try:
        version = int(version_text)
    except ValueError:
        raise SchemaError(f"bad schema version in {tag!r}") from None
    if version not in schema.versions:
        raise SchemaError(
            f"unknown {family} version /{version} "
            f"(known: {', '.join(str(v) for v in schema.versions)})")
    return family, version


def validate_artifact(doc: Any, family: Optional[str] = None,
                      path: Optional[str] = None) -> ArtifactSchema:
    """Check that ``doc`` is a well-formed repro artifact.

    Verifies the ``schema`` field names a known family at a known
    version and that the family's guaranteed top-level keys are
    present.  Pass ``family`` to additionally pin which artifact kind
    the caller expects, and ``path`` to prefix error messages with the
    file they came from.  Returns the family's registry entry.
    """
    where = f"{path}: " if path else ""
    if not isinstance(doc, dict):
        raise SchemaError(f"{where}not a JSON object")
    if "schema" not in doc:
        raise SchemaError(f"{where}not a repro artifact (no schema field)")
    try:
        found_family, _ = parse_schema_tag(doc["schema"])
    except SchemaError as exc:
        raise SchemaError(f"{where}{exc}") from None
    if family is not None and found_family != family:
        raise SchemaError(f"{where}expected a {family} artifact, "
                          f"got {doc['schema']}")
    schema = SCHEMAS[found_family]
    missing = [key for key in schema.required if key not in doc]
    if missing:
        raise SchemaError(f"{where}{doc['schema']} artifact is missing "
                          f"required field(s): {', '.join(missing)}")
    return schema
