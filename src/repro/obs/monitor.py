"""Online health monitoring: periodic in-simulation pressure sampling.

The DDP trade-offs show up at runtime as *pressure* long before they
show up in end-of-run summaries: NVM persist queues back up under
Strict/Synchronous persistency, causal buffers grow under Causal
consistency, and coordination rounds pile up under Linearizable
consistency.  :class:`HealthMonitor` samples those signals *while the
simulation runs*, driven entirely by the DES clock (``sim.call_at`` —
no wall clock, so monitored runs stay deterministic and a monitored run
is byte-identical to an unmonitored one).

Each sample captures:

* simulator event-queue depth (kernel backlog),
* per-node NVM outstanding accesses and busy banks (persist pressure),
* per-node causal-buffer size and inflight INV/ACK/VAL rounds,
* tracer / journey-tracker ``dropped`` counters (observability loss),
* a top-K hot-key sketch (which keys absorbed the interval's writes).

On top of the samples, lightweight **invariant probes** check ordering
properties online and record violations as first-class health events:

* ``applied_monotonic`` / ``persisted_monotonic`` — per-key versions
  never move backwards at a replica (applied may legally regress under
  Transactional consistency, where aborts revert pre-images, so that
  probe auto-disables there);
* ``vp_before_dp`` — a replica never reports a version durable before
  it is visible.  Under Strict persistency durability is deliberately
  decoupled from visibility (the persist may complete first), and under
  Transactional consistency an abort can revert the applied version
  after an eager persist, so the probe auto-disables for both.

Storage is bounded (``max_samples`` / ``max_violations`` with
``dropped`` counters) so long runs cannot grow without limit.  The
sample stream exports as Chrome ``counter`` events on a ``health`` lane
(:func:`health_chrome_events`) and folds into the run report
(:func:`health_json`, the ``health`` section of ``repro.run_report/6``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.model import Consistency, DdpModel, Persistency
from repro.core.replica import Version

__all__ = ["HealthSample", "HealthViolation", "HealthMonitor",
           "health_json", "health_chrome_events"]


@dataclass(frozen=True)
class HealthSample:
    """One periodic snapshot of cluster pressure signals."""

    time_ns: float
    event_queue_depth: int
    """Simulator heap size (scheduled-but-unprocessed events)."""
    nvm_outstanding: Tuple[int, ...]
    """Per node: NVM accesses queued or in service (persist pressure)."""
    nvm_banks_busy: Tuple[int, ...]
    """Per node: NVM banks currently in service (utilization numerator;
    the denominator is the device's fixed bank count)."""
    causal_buffer: Tuple[int, ...]
    """Per node: updates buffered for unmet causal dependencies."""
    inflight_writes: Tuple[int, ...]
    """Per node: coordinator-side INV/UPD rounds awaiting ACKs/VALs."""
    inflight_rounds: Tuple[int, ...]
    """Per node: outstanding INITX/ENDX/PERSIST rounds."""
    tracer_dropped: int
    journey_dropped: int
    top_keys: Tuple[Tuple[int, int], ...]
    """(key, writes since previous sample), hottest first."""
    violations_total: int
    """Cumulative invariant violations observed up to this sample."""


@dataclass(frozen=True)
class HealthViolation:
    """One online invariant-probe failure (a first-class health event)."""

    time_ns: float
    probe: str
    node: int
    key: int
    detail: str


class HealthMonitor:
    """Periodic in-simulation health sampler (see module docstring).

    Lifecycle: construct, optionally :meth:`watch` observability sinks,
    pass to :class:`repro.cluster.cluster.Cluster` (which calls
    :meth:`attach`); the monitor schedules itself on the simulation
    clock and :meth:`stop` (called by ``Cluster.run``) ends sampling.
    Purely observational: samples read state, never mutate it.
    """

    def __init__(self, interval_ns: float = 5_000.0,
                 max_samples: int = 10_000, top_k: int = 8,
                 max_violations: int = 1_000):
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive: {interval_ns}")
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive: {max_samples}")
        if top_k < 0:
            raise ValueError(f"top_k must be >= 0: {top_k}")
        self.interval_ns = interval_ns
        self.max_samples = max_samples
        self.max_violations = max_violations
        self.top_k = top_k
        self.samples: List[HealthSample] = []
        self.dropped = 0
        self.violations: List[HealthViolation] = []
        self.violations_total = 0
        self.violations_dropped = 0
        self.probes: Dict[str, bool] = {}
        self._sim = None
        self._engines: List[Any] = []
        self._memories: List[Any] = []
        self._tracer = None
        self._journey = None
        self._running = False
        self.stopped_at_ns: Optional[float] = None
        # Per-node per-key (applied, persisted) versions at the previous
        # sample, for the monotonicity probes.
        self._prev_versions: List[Dict[int, Tuple[Version, Version]]] = []
        # Per-key highest applied sequence seen anywhere, for the
        # hot-key sketch (delta per interval, cumulative at report time).
        self._key_seq: Dict[int, int] = {}

    # -- wiring ------------------------------------------------------------

    def watch(self, tracer: Any = None, journey: Any = None) -> None:
        """Register sinks whose ``dropped`` counters each sample echoes."""
        if tracer is not None:
            self._tracer = tracer
        if journey is not None:
            self._journey = journey

    def attach(self, cluster: Any) -> None:
        """Bind to a built cluster and start the sampling loop."""
        if self._sim is not None:
            raise RuntimeError("monitor already attached")
        self._sim = cluster.sim
        self._engines = list(cluster.engines)
        self._memories = [node.memory for node in cluster.nodes]
        self._prev_versions = [{} for _ in self._engines]
        self._configure_probes(cluster.model)
        self._running = True
        self._sim.call_at(self._sim.now + self.interval_ns, self._tick)

    def _configure_probes(self, model: DdpModel) -> None:
        transactional = model.consistency is Consistency.TRANSACTIONAL
        strict = model.persistency is Persistency.STRICT
        self.probes = {
            # Aborted transactions legally revert applied versions.
            "applied_monotonic": not transactional,
            "persisted_monotonic": True,
            # Strict persists before apply by design; transactional
            # aborts can revert an applied version below an eagerly
            # persisted one.
            "vp_before_dp": not (strict or transactional),
        }

    def stop(self, now_ns: Optional[float] = None) -> None:
        """End sampling; the pending tick (if any) becomes a no-op."""
        self._running = False
        if self.stopped_at_ns is None and self._sim is not None:
            self.stopped_at_ns = self._sim.now if now_ns is None else now_ns

    # -- sampling ----------------------------------------------------------

    def _tick(self) -> None:
        if not self._running:
            return
        sample = self._sample()
        if len(self.samples) < self.max_samples:
            self.samples.append(sample)
        else:
            self.dropped += 1
        self._sim.call_at(self._sim.now + self.interval_ns, self._tick)

    def _sample(self) -> HealthSample:
        now = self._sim.now
        self._run_probes(now)
        return HealthSample(
            time_ns=now,
            event_queue_depth=self._sim.queue_depth,
            nvm_outstanding=tuple(m.nvm.outstanding for m in self._memories),
            nvm_banks_busy=tuple(m.nvm.banks_busy for m in self._memories),
            causal_buffer=tuple(e.causal_buffer_len for e in self._engines),
            inflight_writes=tuple(e.outstanding_write_count
                                  for e in self._engines),
            inflight_rounds=tuple(e.inflight_round_count
                                  for e in self._engines),
            tracer_dropped=(self._tracer.dropped
                            if self._tracer is not None else 0),
            journey_dropped=(self._journey.dropped
                             if self._journey is not None else 0),
            top_keys=self._hot_keys(),
            violations_total=self.violations_total,
        )

    def _hot_keys(self) -> Tuple[Tuple[int, int], ...]:
        """Top-K keys by writes since the previous sample (delta of the
        highest applied sequence seen at any replica)."""
        if self.top_k == 0:
            return ()
        current: Dict[int, int] = {}
        for engine in self._engines:
            for replica in engine.replicas:
                seq = replica.applied_version[0]
                if seq > current.get(replica.key, 0):
                    current[replica.key] = seq
        deltas = [(key, seq - self._key_seq.get(key, 0))
                  for key, seq in current.items()
                  if seq > self._key_seq.get(key, 0)]
        deltas.sort(key=lambda kv: (-kv[1], kv[0]))
        self._key_seq.update(current)
        return tuple(deltas[:self.top_k])

    # -- invariant probes --------------------------------------------------

    def _run_probes(self, now: float) -> None:
        check_applied = self.probes.get("applied_monotonic", False)
        check_persisted = self.probes.get("persisted_monotonic", False)
        check_order = self.probes.get("vp_before_dp", False)
        for node, engine in enumerate(self._engines):
            prev = self._prev_versions[node]
            for replica in engine.replicas:
                applied = replica.applied_version
                persisted = replica.persisted_version
                seen = prev.get(replica.key)
                if seen is not None:
                    if check_applied and applied < seen[0]:
                        self._record(now, "applied_monotonic", node,
                                     replica.key,
                                     f"applied {seen[0]} -> {applied}")
                    if check_persisted and persisted < seen[1]:
                        self._record(now, "persisted_monotonic", node,
                                     replica.key,
                                     f"persisted {seen[1]} -> {persisted}")
                if check_order and persisted > applied:
                    self._record(now, "vp_before_dp", node, replica.key,
                                 f"persisted {persisted} ahead of "
                                 f"applied {applied}")
                prev[replica.key] = (applied, persisted)

    def _record(self, now: float, probe: str, node: int, key: int,
                detail: str) -> None:
        self.violations_total += 1
        if len(self.violations) < self.max_violations:
            self.violations.append(
                HealthViolation(now, probe, node, key, detail))
        else:
            self.violations_dropped += 1

    # -- derived -----------------------------------------------------------

    @property
    def peak_event_queue_depth(self) -> int:
        return max((s.event_queue_depth for s in self.samples), default=0)

    @property
    def peak_nvm_outstanding(self) -> int:
        return max((max(s.nvm_outstanding, default=0)
                    for s in self.samples), default=0)

    def top_keys_total(self, k: Optional[int] = None) -> List[Tuple[int, int]]:
        """(key, total writes observed) over the whole run, hottest
        first — the cumulative view of the per-sample sketch."""
        totals = sorted(self._key_seq.items(), key=lambda kv: (-kv[1], kv[0]))
        return totals[:self.top_k if k is None else k]

    def __len__(self) -> int:
        return len(self.samples)


# ---------------------------------------------------------------------------
# export shaping
# ---------------------------------------------------------------------------

def health_json(monitor: HealthMonitor) -> Dict[str, Any]:
    """The ``health`` section of the ``repro.run_report/6`` artifact."""
    samples = monitor.samples
    nodes = range(len(monitor._memories))
    return {
        "interval_ns": monitor.interval_ns,
        "samples": len(samples),
        "dropped": monitor.dropped,
        "series": {
            "time_ns": [s.time_ns for s in samples],
            "event_queue_depth": [s.event_queue_depth for s in samples],
            "tracer_dropped": [s.tracer_dropped for s in samples],
            "journey_dropped": [s.journey_dropped for s in samples],
            "per_node": {
                str(node): {
                    "nvm_outstanding": [s.nvm_outstanding[node]
                                        for s in samples],
                    "nvm_banks_busy": [s.nvm_banks_busy[node]
                                       for s in samples],
                    "causal_buffer": [s.causal_buffer[node]
                                      for s in samples],
                    "inflight_writes": [s.inflight_writes[node]
                                        for s in samples],
                    "inflight_rounds": [s.inflight_rounds[node]
                                        for s in samples],
                }
                for node in nodes
            },
        },
        "top_keys": [[key, count] for key, count in monitor.top_keys_total()],
        "probes": dict(monitor.probes),
        "violations": {
            "total": monitor.violations_total,
            "dropped": monitor.violations_dropped,
            "events": [
                {"time_ns": v.time_ns, "probe": v.probe, "node": v.node,
                 "key": v.key, "detail": v.detail}
                for v in monitor.violations
            ],
        },
    }


def health_chrome_events(monitor: HealthMonitor) -> List[dict]:
    """Chrome ``counter`` events for the ``health`` lane.

    One cluster-wide counter (event-queue depth, pid 0) plus one
    multi-series counter per node per sample; invariant violations
    appear as instants so they stand out on the timeline.
    """
    from repro.obs.export import _lane_of

    tid = _lane_of("health")
    events: List[dict] = []
    for sample in monitor.samples:
        ts = sample.time_ns / 1000.0
        events.append({
            "name": "health.kernel", "cat": "health", "ph": "C",
            "pid": 0, "tid": tid, "ts": ts,
            "args": {"event_queue_depth": sample.event_queue_depth},
        })
        for node in range(len(sample.nvm_outstanding)):
            events.append({
                "name": "health.pressure", "cat": "health", "ph": "C",
                "pid": node + 1, "tid": tid, "ts": ts,
                "args": {
                    "nvm_outstanding": sample.nvm_outstanding[node],
                    "nvm_banks_busy": sample.nvm_banks_busy[node],
                    "causal_buffer": sample.causal_buffer[node],
                    "inflight_writes": sample.inflight_writes[node],
                    "inflight_rounds": sample.inflight_rounds[node],
                },
            })
    for violation in monitor.violations:
        events.append({
            "name": "health_violation", "cat": "health", "ph": "i",
            "s": "p", "pid": violation.node + 1, "tid": tid,
            "ts": violation.time_ns / 1000.0,
            "args": {"probe": violation.probe, "key": violation.key,
                     "detail": violation.detail},
        })
    return events
