"""The sweep dashboard: one self-contained static HTML page.

:func:`build_dashboard` renders a ``repro.sweep_report/1`` document
(plus, optionally, a baseline sweep to diff against and a directory of
``BENCH_*.json`` artifacts for trend context) into a single HTML string
with inline CSS and SVG — no external scripts, stylesheets, fonts, or
images, so the file can be archived next to the artifact it renders,
attached to CI runs, and opened years later from disk.

Sections (each with a ``<details>`` table view, so every number is
readable without color or geometry):

* **matrix heatmaps** — the 5x5 consistency x persistency grid for
  throughput and mean read/write latency, seed-averaged, on a single-
  hue sequential ramp; errored cells are marked with an icon + label
  (never color alone).  Every cell carries ``data-metric`` /
  ``data-cell`` / ``data-value`` attributes mirroring the merged
  report, which is how the tests assert the page matches the artifact.
* **journey waterfalls** — per-model VP/DP critical-path bars stacked
  from the five journey buckets (categorical palette, fixed slot
  order, 2px surface gaps between segments).
* **kernel attribution** — event-kind and message-type counts
  aggregated across profiled cells.
* **baseline diff** — per-cell deltas from :func:`repro.obs.diff.
  diff_documents`, colored by verdict with icon + label.
* **bench trends** — sparklines over ``benchmarks/results/
  BENCH_*.json``; files sharing a bench name chart together only when
  their ``config_fingerprint`` matches, mismatches are listed, not
  silently mixed.

Palette, mark geometry, and accessibility rules follow the dataviz
conventions: single-hue sequential ramp for magnitude, fixed-order
categorical slots for the bucket identity, status colors reserved for
ok/error with icon + label, text always in ink tokens, one axis per
chart, dark mode via ``prefers-color-scheme`` on CSS custom
properties.
"""

from __future__ import annotations

import glob
import html
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["build_dashboard", "load_bench_dir", "write_dashboard"]

# ---------------------------------------------------------------------------
# palette (validated reference instance — see the dataviz skill notes)
# ---------------------------------------------------------------------------

#: Single-hue sequential ramp, light -> dark (magnitude encoding).
SEQUENTIAL_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

#: First ramp index dark enough to need light text on top.
_LIGHT_TEXT_FROM = 7

#: Journey buckets in fixed categorical slot order (identity encoding;
#: never cycled, never re-assigned when a bucket is empty).
BUCKETS = ("network", "coord_wait", "nvm_queue", "device", "compute")

_CANON_CONSISTENCY = ("linearizable", "read_enforced", "transactional",
                      "causal", "eventual")
_CANON_PERSISTENCY = ("strict", "synchronous", "read_enforced", "scope",
                      "eventual")

#: The heatmapped summary metrics: (metric, heading, unit).
HEATMAP_METRICS = (
    ("throughput_ops_per_s", "Throughput", "ops/s"),
    ("mean_write_ns", "Mean write latency", "ns"),
    ("mean_read_ns", "Mean read latency", "ns"),
)


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Optional[float]) -> str:
    """Compact human number: 113.0M, 1.36k, 0.257, or an em dash."""
    if value is None:
        return "—"
    if isinstance(value, float) and value != value:  # NaN
        return "—"
    magnitude = abs(value)
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if magnitude >= factor:
            return f"{value / factor:.4g}{suffix}"
    if magnitude >= 1 or value == 0:
        return f"{value:.4g}"
    return f"{value:.3g}"


# ---------------------------------------------------------------------------
# report digestion
# ---------------------------------------------------------------------------

def _canon_order(values: Sequence[str], canon: Sequence[str]) -> List[str]:
    present = set(values)
    ordered = [v for v in canon if v in present]
    return ordered + sorted(present - set(canon))


def _grid_axes(doc: Dict[str, Any]) -> Tuple[List[str], List[str]]:
    cells = doc.get("cells", [])
    rows = _canon_order([c["consistency"] for c in cells],
                       _CANON_CONSISTENCY)
    cols = _canon_order([c["persistency"] for c in cells],
                       _CANON_PERSISTENCY)
    return rows, cols


def _cell_groups(doc) -> Dict[Tuple[str, str], List[Dict[str, Any]]]:
    """(consistency, persistency) -> that model's cells, one per seed."""
    groups: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for cell in doc.get("cells", []):
        groups.setdefault((cell["consistency"], cell["persistency"]),
                          []).append(cell)
    return groups


def _seed_mean(cells: List[Dict[str, Any]], metric: str,
               ) -> Tuple[Optional[float], List[Tuple[int, float]]]:
    """Seed-averaged summary metric plus the per-seed samples."""
    samples = []
    for cell in cells:
        value = (cell.get("summary") or {}).get(metric)
        if isinstance(value, (int, float)):
            samples.append((cell.get("seed"), float(value)))
    if not samples:
        return None, []
    return sum(v for _, v in samples) / len(samples), samples


def _mean_buckets(cells: List[Dict[str, Any]], side: str,
                  ) -> Optional[Dict[str, float]]:
    """Seed-averaged journey ``buckets_ns`` for ``side`` ("vp"/"dp")."""
    rows = []
    for cell in cells:
        journeys = cell.get("journeys")
        if isinstance(journeys, dict):
            buckets = (journeys.get(side) or {}).get("buckets_ns")
            if isinstance(buckets, dict):
                rows.append(buckets)
    if not rows:
        return None
    return {b: sum(float(r.get(b, 0.0) or 0.0) for r in rows) / len(rows)
            for b in BUCKETS}


# ---------------------------------------------------------------------------
# section renderers
# ---------------------------------------------------------------------------

def _heat_step(value: float, lo: float, hi: float) -> int:
    if hi <= lo:
        return len(SEQUENTIAL_RAMP) // 2
    frac = (value - lo) / (hi - lo)
    return min(len(SEQUENTIAL_RAMP) - 1,
               max(0, int(frac * (len(SEQUENTIAL_RAMP) - 1) + 0.5)))


def _heatmap(doc: Dict[str, Any], metric: str, heading: str,
             unit: str) -> str:
    rows, cols = _grid_axes(doc)
    groups = _cell_groups(doc)
    values: Dict[Tuple[str, str], Optional[float]] = {}
    samples: Dict[Tuple[str, str], List[Tuple[int, float]]] = {}
    errors: Dict[Tuple[str, str], int] = {}
    for key, cells in groups.items():
        values[key], samples[key] = _seed_mean(cells, metric)
        errors[key] = sum(1 for c in cells if c.get("status") != "ok")
    present = [v for v in values.values() if v is not None]
    lo, hi = (min(present), max(present)) if present else (0.0, 0.0)

    body: List[str] = ['<table class="heat" role="grid">']
    body.append("<tr><th></th>" + "".join(
        f"<th scope=\"col\">{_esc(c)}</th>" for c in cols) + "</tr>")
    table_rows: List[str] = []
    for cons in rows:
        tds = [f"<th scope=\"row\">{_esc(cons)}</th>"]
        for pers in cols:
            key = (cons, pers)
            value = values.get(key)
            errs = errors.get(key, 0)
            tip = f"{cons}/{pers} {metric}"
            if samples.get(key):
                tip += " — " + ", ".join(
                    f"seed {s}: {_fmt(v)}" for s, v in samples[key])
            if errs:
                tip += f" — {errs} errored seed(s)"
            if key not in groups:
                tds.append('<td class="empty">·</td>')
            elif value is None:
                tds.append(
                    f'<td class="err" data-metric="{_esc(metric)}" '
                    f'data-cell="{_esc(cons)}/{_esc(pers)}" '
                    f'data-tip="{_esc(tip)}">✗ error</td>')
            else:
                step = _heat_step(value, lo, hi)
                ink = ("var(--heat-ink-dark)"
                       if step >= _LIGHT_TEXT_FROM else
                       "var(--heat-ink-light)")
                badge = (f' <span class="errmark">✗{errs}</span>'
                         if errs else "")
                tds.append(
                    f'<td style="background:{SEQUENTIAL_RAMP[step]};'
                    f'color:{ink}" data-metric="{_esc(metric)}" '
                    f'data-cell="{_esc(cons)}/{_esc(pers)}" '
                    f'data-value="{value!r}" data-tip="{_esc(tip)}">'
                    f'{_fmt(value)}{badge}</td>')
            table_rows.append((cons, pers, value, errs))
        body.append("<tr>" + "".join(tds) + "</tr>")
    body.append("</table>")

    detail = ['<details><summary>Table view</summary><table class="data">',
              "<tr><th>consistency</th><th>persistency</th>"
              f"<th>{_esc(metric)} ({_esc(unit)})</th><th>errors</th></tr>"]
    for cons, pers, value, errs in table_rows:
        detail.append(f"<tr><td>{_esc(cons)}</td><td>{_esc(pers)}</td>"
                      f"<td class=\"num\">"
                      f"{'—' if value is None else repr(value)}</td>"
                      f"<td class=\"num\">{errs}</td></tr>")
    detail.append("</table></details>")
    return (f'<div class="card"><h3>{_esc(heading)} '
            f'<span class="unit">{_esc(unit)}, seed-averaged</span></h3>'
            + "".join(body) + "".join(detail) + "</div>")


def _waterfalls(doc: Dict[str, Any]) -> str:
    rows, cols = _grid_axes(doc)
    groups = _cell_groups(doc)
    bars: List[Tuple[str, str, Dict[str, float]]] = []
    for cons in rows:
        for pers in cols:
            cells = groups.get((cons, pers))
            if not cells:
                continue
            for side in ("vp", "dp"):
                buckets = _mean_buckets(cells, side)
                if buckets is not None:
                    bars.append((f"{cons}/{pers}", side.upper(), buckets))
    if not bars:
        return ""
    peak = max(sum(b.values()) for _, _, b in bars) or 1.0
    width, bar_h, gap = 560, 16, 2
    svg_rows: List[str] = []
    for label, side, buckets in bars:
        x = 0.0
        segs = []
        total = sum(buckets.values())
        for i, bucket in enumerate(BUCKETS):
            ns = buckets.get(bucket, 0.0)
            w = ns / peak * width
            if w <= 0:
                continue
            segs.append(
                f'<rect x="{x:.1f}" width="{max(w - gap, 0.8):.1f}" '
                f'height="{bar_h}" rx="2" class="b{i + 1}">'
                f'<title>{_esc(label)} {side} {bucket}: {_fmt(ns)} ns '
                f'({ns / total * 100 if total else 0:.0f}%)</title></rect>')
            x += w
        svg_rows.append(
            f'<div class="wrow"><span class="wlabel">{_esc(label)} '
            f'<b>{side}</b></span>'
            f'<svg width="{width}" height="{bar_h}" role="img" '
            f'aria-label="{_esc(label)} {side} {_fmt(total)} ns">'
            + "".join(segs) + "</svg>"
            f'<span class="wtotal">{_fmt(total)} ns</span></div>')
    legend = "".join(
        f'<span class="key"><span class="swatch b{i + 1}"></span>'
        f'{_esc(b)}</span>' for i, b in enumerate(BUCKETS))
    detail = ['<details><summary>Table view</summary><table class="data">',
              "<tr><th>model</th><th>path</th>"
              + "".join(f"<th>{_esc(b)} ns</th>" for b in BUCKETS)
              + "</tr>"]
    for label, side, buckets in bars:
        detail.append(f"<tr><td>{_esc(label)}</td><td>{side}</td>" + "".join(
            f"<td class=\"num\">{_fmt(buckets.get(b, 0.0))}</td>"
            for b in BUCKETS) + "</tr>")
    detail.append("</table></details>")
    return ('<div class="card"><h3>Journey waterfalls '
            '<span class="unit">seed-averaged critical-path ns; VP = '
            'visibility point, DP = durability point</span></h3>'
            f'<div class="legend">{legend}</div>'
            + "".join(svg_rows) + "".join(detail) + "</div>")


def _attribution(doc: Dict[str, Any]) -> str:
    by_kind: Dict[str, int] = {}
    by_msg: Dict[str, int] = {}
    profiled = 0
    for cell in doc.get("cells", []):
        profile = cell.get("profile")
        if not isinstance(profile, dict):
            continue
        profiled += 1
        attribution = profile.get("attribution") or {}
        for kind, row in (attribution.get("by_event_kind") or {}).items():
            by_kind[kind] = by_kind.get(kind, 0) + int(row.get("count", 0))
        for msg, row in (attribution.get("by_msg_type") or {}).items():
            by_msg[msg] = by_msg.get(msg, 0) + int(row.get("count", 0))
    if not profiled:
        return ""

    def bar_list(title: str, counts: Dict[str, int]) -> str:
        total = sum(counts.values()) or 1
        peak = max(counts.values()) if counts else 1
        items = []
        for name, count in sorted(counts.items(),
                                  key=lambda kv: (-kv[1], kv[0])):
            w = count / peak * 100
            items.append(
                f'<div class="arow"><span class="alabel">{_esc(name)}'
                f'</span><svg width="260" height="12" role="img" '
                f'aria-label="{_esc(name)} {count}">'
                f'<rect width="{w * 2.6:.1f}" height="12" rx="2" '
                f'class="b1"/></svg>'
                f'<span class="num">{count:,} '
                f'({count / total * 100:.0f}%)</span></div>')
        return f"<h4>{_esc(title)}</h4>" + "".join(items)

    return ('<div class="card"><h3>Kernel attribution '
            f'<span class="unit">event counts summed over {profiled} '
            'profiled cell(s); deterministic counters only</span></h3>'
            + bar_list("by event kind", by_kind)
            + bar_list("by message type", by_msg) + "</div>")


_VERDICT_BADGES = {
    "regression": ("badge crit", "✗ regression"),
    "improvement": ("badge good", "✓ improvement"),
    "info-better": ("badge info", "· faster here"),
    "info-worse": ("badge info", "· slower here"),
}


def _diff_section(doc: Dict[str, Any],
                  baseline_doc: Dict[str, Any]) -> str:
    from repro.obs.diff import DiffError, diff_documents
    try:
        report = diff_documents(baseline_doc, doc, baseline="baseline",
                                candidate="this sweep")
    except DiffError as exc:
        return ('<div class="card"><h3>Baseline diff</h3>'
                f'<p class="badge crit">✗ not comparable</p>'
                f'<p class="unit">{_esc(exc)}</p></div>')
    if report.verdict == "regression":
        banner = (f'<p class="badge crit">✗ regression — '
                  f'{len(report.regressions)} metric(s)</p>')
    else:
        banner = '<p class="badge good">✓ no regression</p>'
    shown = [e for e in report.entries if e.verdict in _VERDICT_BADGES]
    rows = []
    for entry in shown:
        cls, label = _VERDICT_BADGES[entry.verdict]
        delta = ("—" if entry.delta_frac is None
                 else f"{entry.delta_frac * 100:+.1f}%")
        rows.append(
            f'<tr><td>{_esc(entry.label)}</td><td>{_esc(entry.metric)}'
            f'</td><td class="num">{_fmt(entry.baseline)}</td>'
            f'<td class="num">{_fmt(entry.candidate)}</td>'
            f'<td class="num">{delta}</td>'
            f'<td><span class="{cls}">{label}</span></td></tr>')
    table = ""
    if rows:
        table = ('<table class="data"><tr><th>cell</th><th>metric</th>'
                 '<th>baseline</th><th>this sweep</th><th>Δ</th>'
                 '<th>verdict</th></tr>' + "".join(rows) + "</table>")
    else:
        table = ('<p class="unit">All shared metrics within the '
                 f'{report.threshold * 100:.0f}% noise threshold.</p>')
    one_sided = ""
    if report.only_in_baseline or report.only_in_candidate:
        items = ([f"<li>only in baseline: {_esc(k)}</li>"
                  for k in report.only_in_baseline]
                 + [f"<li>only in this sweep: {_esc(k)}</li>"
                    for k in report.only_in_candidate])
        one_sided = ("<details><summary>One-sided cells/metrics "
                     f"({len(items)})</summary><ul>" + "".join(items)
                     + "</ul></details>")
    return ('<div class="card"><h3>Baseline diff '
            f'<span class="unit">threshold {report.threshold * 100:.0f}%; '
            'wall-clock rows are informational</span></h3>'
            + banner + table + one_sided + "</div>")


def _sparkline(series: Sequence[float], width: int = 180,
               height: int = 36) -> str:
    if len(series) < 2:
        return ""
    lo, hi = min(series), max(series)
    span = (hi - lo) or 1.0
    step = width / (len(series) - 1)
    points = " ".join(
        f"{i * step:.1f},{height - 3 - (v - lo) / span * (height - 6):.1f}"
        for i, v in enumerate(series))
    return (f'<svg width="{width}" height="{height}" role="img" '
            f'aria-label="trend {_fmt(series[0])} to {_fmt(series[-1])}">'
            f'<polyline points="{points}" fill="none" class="spark"/>'
            "</svg>")


def _bench_trends(bench_docs: Sequence[Tuple[str, Dict[str, Any]]]) -> str:
    if not bench_docs:
        return ""
    by_name: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
    for fname, doc in bench_docs:
        by_name.setdefault(str(doc.get("bench", fname)), []).append(
            (fname, doc))
    cards: List[str] = []
    for bench in sorted(by_name):
        entries = sorted(by_name[bench])
        # Only artifacts sharing the newest file's config fingerprint
        # chart together; a changed config is a different experiment.
        ref_hash = entries[-1][1].get("config_hash")
        matched = [(f, d) for f, d in entries
                   if d.get("config_hash") == ref_hash]
        excluded = [f for f, d in entries
                    if d.get("config_hash") != ref_hash]
        latest = matched[-1][1]
        metrics = latest.get("metrics", {})
        numeric_keys: List[str] = []
        for row in metrics.values():
            if isinstance(row, dict):
                for key in ("throughput_ops_per_s",
                            "events_per_wall_second", "mean_write_ns"):
                    if isinstance(row.get(key), (int, float)) \
                            and key not in numeric_keys:
                        numeric_keys.append(key)
        lines = []
        for key in numeric_keys[:2]:
            if len(matched) > 1:
                # True trend: this metric's mean across each archived
                # artifact, oldest file first.
                series = []
                for _, d in matched:
                    vals = [row[key] for row in d.get("metrics", {}).values()
                            if isinstance(row, dict)
                            and isinstance(row.get(key), (int, float))]
                    if vals:
                        series.append(sum(vals) / len(vals))
                label = f"{key} across {len(matched)} archives"
            else:
                series = [row[key] for row in metrics.values()
                          if isinstance(row, dict)
                          and isinstance(row.get(key), (int, float))]
                label = f"{key} across {len(series)} rows"
            spark = _sparkline(series)
            if spark:
                lines.append(
                    f'<div class="srow"><span class="alabel">'
                    f'{_esc(label)}</span>{spark}'
                    f'<span class="num">{_fmt(series[-1])}</span></div>')
        note = (f'<p class="unit">fingerprint {_esc(ref_hash or "n/a")}'
                + (f"; excluded (fingerprint mismatch): "
                   f"{_esc(', '.join(excluded))}" if excluded else "")
                + "</p>")
        if lines:
            cards.append(f'<div class="benchcard"><h4>{_esc(bench)}</h4>'
                         + "".join(lines) + note + "</div>")
    if not cards:
        return ""
    return ('<div class="card"><h3>Bench trends '
            '<span class="unit">from BENCH_*.json archives</span></h3>'
            '<div class="benchgrid">' + "".join(cards) + "</div></div>")


# ---------------------------------------------------------------------------
# page assembly
# ---------------------------------------------------------------------------

_CSS = """
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --good: #0ca30c; --crit: #d03b3b;
  --b1: #2a78d6; --b2: #eb6834; --b3: #1baf7a; --b4: #eda100;
  --b5: #e87ba4;
  --heat-ink-light: #0b0b0b; --heat-ink-dark: #ffffff;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ffffff; --ink2: #c3c2b7;
    --grid: #2c2c2a;
    --b1: #3987e5; --b2: #d95926; --b3: #199e70; --b4: #c98500;
    --b5: #d55181;
  }
}
body { background: var(--surface); color: var(--ink); margin: 24px;
  font: 14px/1.45 system-ui, sans-serif; }
h1 { font-size: 20px; margin: 0 0 4px; }
h3 { font-size: 15px; margin: 0 0 10px; }
h4 { font-size: 13px; margin: 12px 0 6px; color: var(--ink2); }
.unit { color: var(--muted); font-weight: normal; font-size: 12px; }
.chips { color: var(--ink2); font-size: 12px; margin-bottom: 18px; }
.chips b { color: var(--ink); }
.card { border: 1px solid var(--grid); border-radius: 8px;
  padding: 14px 16px; margin-bottom: 18px; }
.grid2 { display: flex; flex-wrap: wrap; gap: 18px; }
.grid2 > .card { flex: 1 1 360px; margin-bottom: 0; }
table.heat { border-collapse: separate; border-spacing: 2px;
  font-variant-numeric: tabular-nums; }
table.heat th { font-weight: normal; color: var(--ink2);
  font-size: 12px; padding: 2px 6px; text-align: right; }
table.heat td { padding: 6px 8px; border-radius: 4px; text-align: right;
  min-width: 64px; }
table.heat td.err { background: none;
  border: 1.5px solid var(--crit); color: var(--crit); }
table.heat td.empty { color: var(--muted); }
.errmark { color: var(--heat-ink-dark); font-size: 11px; }
table.data { border-collapse: collapse; margin-top: 8px;
  font-variant-numeric: tabular-nums; font-size: 12.5px; }
table.data th, table.data td { border-bottom: 1px solid var(--grid);
  padding: 3px 10px 3px 0; text-align: left; }
table.data td.num, .num { text-align: right;
  font-variant-numeric: tabular-nums; color: var(--ink2); }
details { margin-top: 8px; }
summary { color: var(--muted); font-size: 12px; cursor: pointer; }
.legend { margin-bottom: 8px; font-size: 12px; color: var(--ink2); }
.key { margin-right: 14px; }
.swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 4px; }
.b1 { fill: var(--b1); background: var(--b1); }
.b2 { fill: var(--b2); background: var(--b2); }
.b3 { fill: var(--b3); background: var(--b3); }
.b4 { fill: var(--b4); background: var(--b4); }
.b5 { fill: var(--b5); background: var(--b5); }
.wrow, .arow, .srow { display: flex; align-items: center; gap: 10px;
  margin: 3px 0; }
.wlabel, .alabel { width: 220px; text-align: right; font-size: 12px;
  color: var(--ink2); flex: none; }
.wtotal { font-size: 12px; color: var(--ink2);
  font-variant-numeric: tabular-nums; }
.badge { display: inline-block; border-radius: 10px; padding: 2px 10px;
  font-size: 12px; border: 1.5px solid var(--grid);
  color: var(--ink2); }
.badge.good { border-color: var(--good); color: var(--good); }
.badge.crit { border-color: var(--crit); color: var(--crit); }
.spark { stroke: var(--b1); stroke-width: 2; }
.benchgrid { display: flex; flex-wrap: wrap; gap: 18px; }
.benchcard { flex: 1 1 280px; }
#tip { position: fixed; display: none; background: var(--ink);
  color: var(--surface); padding: 4px 8px; border-radius: 4px;
  font-size: 12px; pointer-events: none; max-width: 420px; z-index: 9; }
"""

_JS = """
const tip = document.getElementById('tip');
document.addEventListener('mouseover', (e) => {
  const t = e.target.closest('[data-tip]');
  if (!t) { tip.style.display = 'none'; return; }
  tip.textContent = t.dataset.tip;
  tip.style.display = 'block';
});
document.addEventListener('mousemove', (e) => {
  if (tip.style.display === 'none') return;
  tip.style.left = Math.min(e.clientX + 12,
    window.innerWidth - tip.offsetWidth - 8) + 'px';
  tip.style.top = (e.clientY + 14) + 'px';
});
"""


def build_dashboard(doc: Dict[str, Any],
                    baseline: Optional[Dict[str, Any]] = None,
                    bench_docs: Sequence[Tuple[str, Dict[str, Any]]] = (),
                    title: str = "DDP sweep dashboard") -> str:
    """Render one sweep report (plus optional context) to HTML."""
    meta = doc.get("meta", {})
    totals = doc.get("totals", {})
    status = (f'<span class="badge good">✓ {totals.get("ok", 0)} ok</span>'
              if not totals.get("errors") else
              f'<span class="badge crit">✗ {totals.get("errors")} '
              f'errored / {totals.get("cells")} cells</span>')
    chips = (f'workload <b>{_esc(meta.get("workload"))}</b> · '
             f'<b>{_esc(meta.get("servers"))}</b> servers · '
             f'<b>{_esc(meta.get("clients"))}</b> clients · '
             f'<b>{_fmt(meta.get("duration_ns"))}</b> ns · seeds '
             f'<b>{_esc(meta.get("seeds"))}</b> · '
             f'<b>{len(meta.get("models", []))}</b> models · '
             f'config <b>{_esc(meta.get("config_hash"))}</b> · {status}')
    heatmaps = "".join(_heatmap(doc, metric, heading, unit)
                       for metric, heading, unit in HEATMAP_METRICS)
    error_cells = [c for c in doc.get("cells", [])
                   if c.get("status") != "ok"]
    error_card = ""
    if error_cells:
        items = "".join(
            f'<tr><td>{_esc(c["consistency"])}/{_esc(c["persistency"])}'
            f'@seed{_esc(c.get("seed"))}</td>'
            f'<td>{_esc(c.get("error", ""))}</td></tr>'
            for c in error_cells)
        error_card = ('<div class="card"><h3>Errored cells</h3>'
                      '<table class="data"><tr><th>cell</th><th>error</th>'
                      '</tr>' + items + "</table></div>")
    sections = [
        f"<h1>{_esc(title)}</h1>",
        f'<div class="chips">{chips}</div>',
        error_card,
        f'<div class="grid2">{heatmaps}</div>',
        _waterfalls(doc),
        _attribution(doc),
        _diff_section(doc, baseline) if baseline is not None else "",
        _bench_trends(bench_docs),
    ]
    return ("<!DOCTYPE html>\n<html lang=\"en\"><head>"
            "<meta charset=\"utf-8\">"
            "<meta name=\"viewport\" "
            "content=\"width=device-width, initial-scale=1\">"
            f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
            "<body>" + "".join(s for s in sections if s)
            + f'<div id="tip"></div><script>{_JS}</script></body></html>\n')


def load_bench_dir(path: str) -> List[Tuple[str, Dict[str, Any]]]:
    """All parseable ``BENCH_*.json`` files under ``path``, sorted by
    filename; unparseable files are skipped (trend context is
    best-effort, never a reason to fail the dashboard)."""
    docs: List[Tuple[str, Dict[str, Any]]] = []
    for file in sorted(glob.glob(os.path.join(path, "BENCH_*.json"))):
        try:
            with open(file) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict) and isinstance(doc.get("metrics"), dict):
            docs.append((os.path.basename(file), doc))
    return docs


def write_dashboard(path: str, html_text: str) -> None:
    with open(path, "w") as fh:
        fh.write(html_text)
