"""The sweep observatory: a parallel matrix runner with deterministic merge.

The paper's core deliverable is the 5x5 consistency x persistency
matrix, yet until this module the reproduction ran it one cell at a
time.  :func:`run_sweep` fans the ``models x seeds`` matrix across
worker processes (``concurrent.futures.ProcessPoolExecutor``;
``workers=1`` keeps today's in-process path) and merges the results
**deterministically**: cells are keyed and sorted by ``(consistency,
persistency, seed)`` regardless of completion order, and every
wall-clock-derived value is stripped from the merged document, so a
``--workers 8`` sweep emits a ``repro.sweep_report/1`` artifact
byte-identical to a ``--workers 1`` sweep (asserted in
``tests/obs/test_sweep.py`` and in CI).

Three design rules:

* **workers run the existing pipeline** — each cell is one
  :func:`repro.cluster.cluster.run_simulation`-shaped run (built here
  from a :class:`Cluster` so post-run recovery state is reachable),
  with the same observability sinks the ``run`` subcommand attaches:
  journeys, health, kernel profile, black-box audit, per the cell's
  requested ``sections``.  Same-seed runs are byte-identical across
  processes (the PR-1 ``SeededStream`` fix), so fanning out cannot
  change any simulated number.
* **failure is a value** — a worker that raises (or a pool that dies)
  becomes a per-cell ``status: "error"`` entry with the exception text;
  the partial artifact stays schema-valid and the CLI exits non-zero,
  rather than a hung or torn sweep.
* **timing is telemetry, not data** — per-cell wall seconds and
  events/sec (from the always-attached :class:`KernelProfile`) feed the
  live progress display and the caller's ``timing`` side-channel only;
  they never enter the merged artifact (see :func:`strip_wall_clock`).

``REPRO_SWEEP_TEST_CRASH`` (comma-separated ``consistency:persistency``
or ``consistency:persistency:seed`` cells) rigs matching workers to
raise — the hook the failure-path tests and CI use to prove the partial-
artifact contract without patching across process boundaries.
"""

from __future__ import annotations

import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import Summary
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency, DdpModel, Persistency
from repro.obs.journey import JourneyTracker
from repro.obs.monitor import HealthMonitor, health_json
from repro.obs.profile import KernelProfile
from repro.obs.report import _clean, config_fingerprint
from repro.obs.schemas import SWEEP_REPORT_SCHEMA
from repro.workload.ycsb import WORKLOADS

__all__ = ["CellSpec", "CellResult", "SweepProgress", "matrix_specs",
           "run_cell", "run_sweep", "strip_wall_clock", "sweep_meta",
           "build_sweep_report", "write_sweep_report", "sweep_summaries",
           "SECTIONS"]

#: Optional per-cell report sections a sweep can request.
SECTIONS = ("journeys", "health", "profile", "audit")

#: Keys whose values derive from the wall clock.  They are removed
#: (recursively) from every section of the merged artifact: wall time
#: is machine- and schedule-dependent, and the sweep report's contract
#: is byte-identity across worker counts.
_WALL_CLOCK_KEYS = frozenset({
    "wall_seconds", "events_per_wall_second",
    "wall_seconds_per_sim_second", "loop_wall_seconds",
    "attributed_wall_seconds", "attributed_fraction",
    "checker_wall_seconds", "wall_ms",
})

_CRASH_ENV = "REPRO_SWEEP_TEST_CRASH"


@dataclass(frozen=True)
class CellSpec:
    """One (model, seed) cell of a sweep matrix."""

    consistency: str
    persistency: str
    seed: int
    workload: str = "A"
    servers: int = 5
    clients: int = 100
    duration_ns: float = 100_000.0
    warmup_ns: float = 10_000.0
    sections: Tuple[str, ...] = ()

    def __post_init__(self):
        unknown = set(self.sections) - set(SECTIONS)
        if unknown:
            raise ValueError(f"unknown sweep section(s): "
                             f"{', '.join(sorted(unknown))}")

    @property
    def model(self) -> DdpModel:
        return DdpModel(Consistency(self.consistency),
                        Persistency(self.persistency))

    @property
    def sort_key(self) -> Tuple[str, str, int]:
        """The deterministic merge key: completion order never matters."""
        return (self.consistency, self.persistency, self.seed)

    @property
    def label(self) -> str:
        return f"{str(self.model)} seed={self.seed}"


@dataclass
class CellResult:
    """What one cell produced: a deterministic payload plus timing."""

    spec: CellSpec
    status: str                       # "ok" | "error"
    summary: Optional[Summary] = None
    sections: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    timing: Optional[Dict[str, float]] = None
    """``{wall_seconds, events_per_wall_second, events_processed}`` —
    progress telemetry only, never merged into the artifact."""


def matrix_specs(models: Sequence[DdpModel], seeds: Sequence[int],
                 workload: str = "A", servers: int = 5, clients: int = 100,
                 duration_ns: float = 100_000.0,
                 warmup_ns: float = 10_000.0,
                 sections: Sequence[str] = ()) -> List[CellSpec]:
    """The ``models x seeds`` cell list, in deterministic order."""
    specs = [CellSpec(model.consistency.value, model.persistency.value,
                      seed, workload=workload, servers=servers,
                      clients=clients, duration_ns=duration_ns,
                      warmup_ns=warmup_ns, sections=tuple(sections))
             for model in models for seed in seeds]
    return sorted(specs, key=lambda s: s.sort_key)


def strip_wall_clock(value: Any) -> Any:
    """Recursively remove wall-clock-derived keys from a section.

    Every deterministic counter survives; anything measured in real
    seconds (or derived from it) is dropped so the merged artifact is
    byte-identical across machines and worker counts.
    """
    if isinstance(value, dict):
        return {k: strip_wall_clock(v) for k, v in value.items()
                if k not in _WALL_CLOCK_KEYS}
    if isinstance(value, (list, tuple)):
        return [strip_wall_clock(v) for v in value]
    return value


def _rigged_to_crash(spec: CellSpec) -> bool:
    rigged = os.environ.get(_CRASH_ENV, "")
    for entry in rigged.split(","):
        parts = entry.strip().split(":")
        if len(parts) == 2 and (parts[0], parts[1]) == (spec.consistency,
                                                        spec.persistency):
            return True
        if len(parts) == 3 and (parts[0], parts[1], parts[2]) == (
                spec.consistency, spec.persistency, str(spec.seed)):
            return True
    return False


def _cell_meta(spec: CellSpec) -> Dict[str, Any]:
    """Run metadata for a cell's embedded audit (mirrors the ``run``
    subcommand's ``_run_meta`` shape)."""
    model = spec.model
    return {
        "model": str(model),
        "consistency": spec.consistency,
        "persistency": spec.persistency,
        "workload": spec.workload,
        "servers": spec.servers,
        "clients": spec.clients,
        "seed": spec.seed,
        "duration_ns": spec.duration_ns,
        "warmup_ns": spec.warmup_ns,
        "config_hash": config_fingerprint({
            "model": str(model),
            "workload": spec.workload,
            "servers": spec.servers,
            "clients": spec.clients,
        }),
    }


def run_cell(spec: CellSpec) -> CellResult:
    """Run one cell in this process (the worker body).

    Attaches a :class:`KernelProfile` unconditionally — profiled runs
    are byte-identical to unprofiled ones (asserted since PR 6), and
    its snapshot is the cell's timing telemetry — plus whichever
    optional sinks ``spec.sections`` requests.
    """
    if _rigged_to_crash(spec):
        raise RuntimeError(f"rigged crash ({_CRASH_ENV}) for cell "
                           f"{spec.consistency}:{spec.persistency}")
    model = spec.model
    profile = KernelProfile()
    journey = (JourneyTracker(spec.servers)
               if "journeys" in spec.sections else None)
    monitor = HealthMonitor() if "health" in spec.sections else None
    recorder = None
    if "audit" in spec.sections:
        from repro.obs.history import HistoryRecorder
        recorder = HistoryRecorder()
    cluster = Cluster(model,
                      config=ClusterConfig(
                          servers=spec.servers,
                          clients_per_server=spec.clients // spec.servers,
                          seed=spec.seed),
                      workload=WORKLOADS[spec.workload],
                      tracer=journey, profile=profile, monitor=monitor,
                      history=recorder)
    summary = cluster.run(spec.duration_ns, warmup_ns=spec.warmup_ns)
    sections: Dict[str, Any] = {}
    if journey is not None:
        # Deferred: waterfall imports obs.journey, so a module-level
        # import here would close an import cycle through obs.__init__.
        from repro.analysis.waterfall import (aggregate_journeys,
                                              waterfall_json)
        report = aggregate_journeys(journey.journeys, spec.servers,
                                    label=str(model),
                                    dropped=journey.dropped)
        sections["journeys"] = _clean(waterfall_json(report))
    if monitor is not None:
        sections["health"] = _clean(health_json(monitor))
    if "profile" in spec.sections:
        sections["profile"] = strip_wall_clock(_clean(profile.snapshot()))
    if recorder is not None:
        from repro.audit import audit_history
        from repro.obs.history import recovered_from_cluster
        recorder.meta = _cell_meta(spec)
        recorder.recovered = recovered_from_cluster(cluster)
        audit = audit_history(recorder.history())
        sections["audit"] = strip_wall_clock(_clean(audit))
    snapshot = profile.snapshot()
    return CellResult(
        spec=spec, status="ok", summary=summary, sections=sections,
        timing={"wall_seconds": snapshot["wall_seconds"],
                "events_per_wall_second":
                    snapshot["events_per_wall_second"],
                "events_processed": snapshot["events_processed"]})


class SweepProgress:
    """Live sweep telemetry: per-cell state, events/sec, wall + ETA.

    TTY streams get an in-place status line (carriage-return rewrite);
    anything else — CI logs, pipes — gets one plain line per finished
    cell, so the output stays line-oriented and diffable.  Progress goes
    to ``stderr`` by default: stdout carries the result tables and
    artifacts.
    """

    def __init__(self, total: int, workers: int = 1, stream=None):
        self.total = total
        self.workers = max(1, workers)
        self.stream = sys.stderr if stream is None else stream
        self.tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self.done = 0
        self.errors = 0
        # repro: lint-ok[wall-clock-ban] progress telemetry: ETA needs real elapsed time
        self._start = time.perf_counter()

    @property
    def elapsed_seconds(self) -> float:
        # repro: lint-ok[wall-clock-ban] progress telemetry: ETA needs real elapsed time
        return time.perf_counter() - self._start

    def _eta_seconds(self) -> float:
        if self.done == 0:
            return 0.0
        remaining = self.total - self.done
        return self.elapsed_seconds / self.done * remaining

    def cell_done(self, result: CellResult) -> None:
        self.done += 1
        if result.status != "ok":
            self.errors += 1
        rate = ""
        if result.timing:
            rate = (f"  {result.timing['events_per_wall_second'] / 1e3:.0f}k"
                    f" ev/s  cell {result.timing['wall_seconds']:.1f}s")
        state = "ok" if result.status == "ok" else "ERROR"
        line = (f"[{self.done}/{self.total}] {result.spec.label:<42} "
                f"{state}{rate}  elapsed {self.elapsed_seconds:.1f}s"
                f"  eta {self._eta_seconds():.0f}s")
        if self.tty:
            self.stream.write("\r\x1b[2K" + line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def finish(self) -> None:
        if self.tty:
            self.stream.write("\n")
            self.stream.flush()


def _error_result(spec: CellSpec, exc: BaseException) -> CellResult:
    return CellResult(spec=spec, status="error",
                      error=f"{type(exc).__name__}: {exc}")


def run_sweep(specs: Sequence[CellSpec], workers: int = 1,
              progress: Optional[SweepProgress] = None) -> List[CellResult]:
    """Run every cell, fanning across ``workers`` processes.

    ``workers <= 1`` runs in-process (no executor, today's path).  The
    returned list is sorted by the deterministic cell key; a cell whose
    worker raised (or whose pool died) is an ``error`` result, never a
    missing one.
    """
    results: List[CellResult] = []
    if workers <= 1:
        for spec in specs:
            try:
                result = run_cell(spec)
            except Exception as exc:  # noqa: BLE001 - failure is a value
                result = _error_result(spec, exc)
            results.append(result)
            if progress is not None:
                progress.cell_done(result)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(run_cell, spec): spec for spec in specs}
            for future in as_completed(futures):
                spec = futures[future]
                try:
                    result = future.result()
                except Exception as exc:  # noqa: BLE001 - failure is a value
                    result = _error_result(spec, exc)
                results.append(result)
                if progress is not None:
                    progress.cell_done(result)
    if progress is not None:
        progress.finish()
    return sorted(results, key=lambda r: r.spec.sort_key)


def sweep_meta(specs: Sequence[CellSpec]) -> Dict[str, Any]:
    """The merged report's ``meta``: the matrix shape, no timing, no
    worker count — nothing that may differ between equivalent sweeps."""
    if not specs:
        raise ValueError("cannot build a sweep report from zero cells")
    first = specs[0]
    models = sorted({f"{s.consistency}/{s.persistency}" for s in specs})
    seeds = sorted({s.seed for s in specs})
    return {
        "workload": first.workload,
        "servers": first.servers,
        "clients": first.clients,
        "duration_ns": first.duration_ns,
        "warmup_ns": first.warmup_ns,
        "models": models,
        "seeds": seeds,
        "sections": sorted(set(first.sections)),
        "config_hash": config_fingerprint({
            "workload": first.workload,
            "servers": first.servers,
            "clients": first.clients,
            "models": models,
        }),
    }


def build_sweep_report(results: Sequence[CellResult]) -> Dict[str, Any]:
    """Merge cell results into the ``repro.sweep_report/1`` document.

    Deterministic by construction: cells sorted by ``(consistency,
    persistency, seed)``, timing stripped, NaN/inf cleaned — the same
    inputs produce the same bytes whatever the completion order.
    """
    ordered = sorted(results, key=lambda r: r.spec.sort_key)
    cells: List[Dict[str, Any]] = []
    for result in ordered:
        spec = result.spec
        cell: Dict[str, Any] = {
            "consistency": spec.consistency,
            "persistency": spec.persistency,
            "seed": spec.seed,
            "model": str(spec.model),
            "status": result.status,
        }
        if result.status == "ok":
            cell["summary"] = _clean(result.summary)
            for name in SECTIONS:
                if name in result.sections:
                    cell[name] = result.sections[name]
        else:
            cell["error"] = result.error or "unknown error"
        cells.append(cell)
    ok = sum(1 for r in ordered if r.status == "ok")
    return {
        "schema": SWEEP_REPORT_SCHEMA,
        "meta": sweep_meta([r.spec for r in ordered]),
        "cells": cells,
        "totals": {"cells": len(cells), "ok": ok,
                   "errors": len(cells) - ok},
    }


def write_sweep_report(path: str, report: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")


def sweep_summaries(models: Sequence[DdpModel], workload: str = "A",
                    servers: int = 5, clients: int = 100,
                    duration_ns: float = 100_000.0,
                    warmup_ns: float = 10_000.0, seed: int = 2021,
                    workers: int = 1,
                    ) -> Dict[Tuple[str, str], Tuple[Summary, float]]:
    """Benchmark-harness entry: one :class:`Summary` (plus the cell's
    own wall seconds) per model, fanned across ``workers``.

    Raises on any errored cell — a benchmark sweep has no use for a
    partial matrix.  Used by ``benchmarks/conftest.py`` to prefetch the
    fig6 matrix in parallel while keeping per-cell wall clock
    comparable with pre-parallel baselines.
    """
    specs = matrix_specs(models, [seed], workload=workload,
                         servers=servers, clients=clients,
                         duration_ns=duration_ns, warmup_ns=warmup_ns)
    results = run_sweep(specs, workers=workers)
    out: Dict[Tuple[str, str], Tuple[Summary, float]] = {}
    for result in results:
        if result.status != "ok":
            raise RuntimeError(f"sweep cell {result.spec.label} failed: "
                               f"{result.error}")
        out[(result.spec.consistency, result.spec.persistency)] = (
            result.summary, result.timing["wall_seconds"])
    return out
