"""The machine-readable run report.

One JSON artifact per run, containing everything the paper's evaluation
plots need without re-running: the end-of-run :class:`Summary`, windowed
throughput / p50 / p99 latency series (whole cluster and per node),
windowed per-message-type traffic, per-node Visibility-Point and
Durability-Point lag series, and (optionally) the kernel profile.

Schema (see DESIGN.md "Run-report JSON" for field-level docs)::

    {
      "schema": "repro.run_report/6",
      "meta":     {model, consistency, persistency, servers, clients,
                   seed, workload, duration_ns, warmup_ns, window_ns,
                   config_hash},
      "summary":  {...Summary fields...},
      "windows":  [{start_ns, end_ns, ops, throughput_ops_per_s,
                    mean_ns, p50_ns, p99_ns}],
      "windows_by_node": {"0": [...], ...},
      "messages": {"by_type": {...}, "bytes_by_type": {...},
                   "windows_by_type": {"INV": [..counts..], ...}},
      "lag":      {"per_node": {"0": [{start_ns, vp_mean_ns, vp_p99_ns,
                                       dp_mean_ns, dp_p99_ns, ...}]},
                   "summary": {...PointsSummary fields...}},
      "profile":  {...KernelProfile.snapshot()...},
      "trace":    {"records": n, "dropped": n, "categories": {...}},
      "journeys": {...repro.analysis.waterfall.waterfall_json(...)...},
      "health":   {...repro.obs.monitor.health_json(...)...},
      "faults":   {...repro.faults.faults_json(...)...},
      "audit":    {...repro.audit.audit_history(...)...}
    }

Schema history: ``/1`` (PR 1) lacked the ``journeys`` section; ``/2``
adds it (critical-path waterfall aggregates, see DESIGN.md "Journey
waterfalls"); ``/3`` adds the optional ``health`` section (periodic
pressure samples and invariant-probe violations, see docs/handbook.md)
and the ``meta.config_hash`` fingerprint that ``repro diff`` uses to
refuse apples-to-oranges comparisons; ``/4`` adds the optional
``faults`` section (the fault plan as injected, lifecycle event log,
membership outcome, and round-retry counters, see docs/handbook.md);
``/5`` enriches the ``profile`` section with the kernel performance
observatory (``loop_wall_seconds`` plus nested ``attribution`` —
per-event-kind and per-``MsgType``-handler wall/counts — and
``scheduling`` — heap-depth and tie-batch histograms, defuse/cancel
counters, trampoline hops; see docs/handbook.md "Profiling the
kernel"); ``/6`` adds the optional ``audit`` section (the embedded
``repro.audit_report/1`` document from the black-box contract auditor,
see docs/handbook.md "Auditing").  Fields of older schemas are
unchanged.

NaN/inf values (empty windows, models that never persist) are emitted
as ``null`` so the document is strict JSON.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any, Dict, Optional

from repro.analysis.metrics import Metrics, Summary
from repro.obs.schemas import RUN_REPORT_SCHEMA as SCHEMA

__all__ = ["SCHEMA", "config_fingerprint", "build_run_report",
           "write_run_report"]


def _clean(value: Any) -> Any:
    """Recursively make a value strict-JSON-safe (NaN/inf -> null)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _clean(dataclasses.asdict(value))
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return str(value)


def config_fingerprint(config: Dict[str, Any]) -> str:
    """A short, stable fingerprint of a resolved run configuration.

    blake2b (not the salted builtin ``hash()``) over the canonical JSON
    of the cleaned config dict, so the same configuration hashes the
    same across processes and Python versions.  ``repro diff`` refuses
    to compare artifacts whose fingerprints differ.  Seeds and run
    durations are echoed separately in the report meta and deliberately
    left *out* of the dict callers pass here: two runs of the same
    cluster/workload shape are comparable even across seeds.
    """
    payload = json.dumps(_clean(dict(config)), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.blake2b(payload.encode("utf-8"),
                           digest_size=8).hexdigest()


def build_run_report(summary: Summary, metrics: Metrics,
                     window_ns: float,
                     meta: Optional[Dict[str, Any]] = None,
                     points: Any = None,
                     profile: Any = None,
                     tracer: Any = None,
                     journeys: Any = None,
                     monitor: Any = None,
                     faults: Any = None,
                     audit: Any = None) -> Dict[str, Any]:
    """Assemble the report dict from a finished run's collectors.

    ``points`` is a :class:`repro.analysis.points.PointsTracker` (or
    None), ``profile`` a :class:`repro.obs.profile.KernelProfile`,
    ``tracer`` a :class:`repro.sim.trace.Tracer`, ``journeys`` a
    :class:`repro.analysis.waterfall.WaterfallReport`, ``monitor`` a
    :class:`repro.obs.monitor.HealthMonitor`, ``faults`` a
    :class:`repro.faults.FaultInjector`, ``audit`` a
    ``repro.audit_report/1`` document from
    :func:`repro.audit.audit_history`; all optional so callers include
    only what they measured.
    """
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "meta": dict(meta or {}, window_ns=window_ns),
        "summary": _clean(summary),
        "windows": _clean(metrics.op_series(window_ns)),
        "windows_by_node": _clean(metrics.op_series_by_node(window_ns)),
        "messages": _clean({
            "by_type": metrics.messages_by_type,
            "bytes_by_type": metrics.bytes_by_type,
            "windows_by_type": metrics.message_window_series(),
        }),
    }
    if points is not None:
        report["lag"] = _clean({
            "per_node": points.window_lags(window_ns),
            "summary": points.summarize(),
        })
    if profile is not None:
        report["profile"] = _clean(profile.snapshot())
    if tracer is not None:
        report["trace"] = _clean({
            "records": len(tracer),
            "dropped": tracer.dropped,
            "categories": tracer.categories(),
        })
    if journeys is not None:
        from repro.analysis.waterfall import waterfall_json
        report["journeys"] = _clean(waterfall_json(journeys))
    if monitor is not None:
        from repro.obs.monitor import health_json
        report["health"] = _clean(health_json(monitor))
    if faults is not None:
        from repro.faults.injector import faults_json
        report["faults"] = _clean(faults_json(faults))
    if audit is not None:
        report["audit"] = _clean(audit)
    return report


def write_run_report(path: str, report: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
