"""Cross-run regression diffing for run reports and bench artifacts.

Three PRs of observability produce machine-readable artifacts
(``repro.run_report/*`` from the CLI, ``BENCH_*.json`` from the
benchmark suite) that, until now, nobody compared.  This module turns
two such artifacts into a decision:

* **compatibility check** — artifacts are only compared apples-to-apples
  (same schema family, and matching ``config_hash`` where present; a
  mismatch is an error unless forced);
* **per-metric deltas** — every shared numeric metric of the summary
  (run reports) or of each swept configuration (bench artifacts) is
  diffed with a relative noise threshold;
* **verdict** — metrics have directions (throughput up = good, latency
  up = bad, counters informational), so the diff ends in a
  ``regression`` / ``no-regression`` verdict naming the offending
  metrics — the contract the CI perf gate enforces.

Output is markdown (:func:`format_markdown`) for humans and
``repro.diff_report/1`` JSON (:func:`diff_json`) for machines.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.schemas import (DIFF_REPORT_SCHEMA as DIFF_SCHEMA,
                               SchemaError, schema_tags, validate_artifact)

__all__ = ["DiffError", "MetricDelta", "DiffReport", "load_artifact",
           "diff_documents", "diff_paths", "format_markdown", "diff_json"]

RUN_REPORT_SCHEMAS = schema_tags("repro.run_report")
BENCH_SCHEMAS = schema_tags("repro.bench")
SWEEP_SCHEMAS = schema_tags("repro.sweep_report")

#: Metric name -> direction.  "higher" means an increase is good (a
#: decrease beyond the threshold is a regression), "lower" the reverse;
#: anything not listed is informational: reported, never a verdict.
METRIC_DIRECTIONS: Dict[str, str] = {
    "throughput_ops_per_s": "higher",
    "mean_read_ns": "lower",
    "mean_write_ns": "lower",
    "mean_access_ns": "lower",
    "p95_read_ns": "lower",
    "p95_write_ns": "lower",
    "p99_read_ns": "lower",
    "p99_write_ns": "lower",
    # Audit totals (the ``audit`` row of run_report/6): a new contract
    # violation in the candidate is a regression, not noise.
    "violations_total": "lower",
    "cells_failed": "lower",
    "target_failed_checks": "lower",
    # Sweep reports: a cell that errored in the candidate but ran clean
    # in the baseline is a regression in its own right.
    "cell_error": "lower",
}

#: Wall-clock metrics (the ``profile`` section of run reports, and the
#: kernel bench): direction-annotated so the diff *shows* whether the
#: kernel got faster or slower, but machine-dependent, so they are
#: always informational — ``info-better`` / ``info-worse`` verdicts
#: that never enter the regression verdict.
WALL_CLOCK_DIRECTIONS: Dict[str, str] = {
    "events_per_wall_second": "higher",
    "wall_seconds": "lower",
    "loop_wall_seconds": "lower",
    "wall_seconds_per_sim_second": "lower",
    "ns_per_event": "lower",
    "checker_wall_seconds": "lower",
}

DEFAULT_THRESHOLD = 0.05
"""Relative change below which a delta is attributed to noise."""


class DiffError(Exception):
    """Unusable input (unreadable, bad schema, incompatible configs).

    The CLI maps this to exit code 2 with a one-line message.
    """


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across the two artifacts."""

    label: str
    """Which result row the metric belongs to ("summary" for run
    reports, the swept-configuration label for bench artifacts)."""
    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    delta_frac: Optional[float]
    """(candidate - baseline) / baseline, or None if undefined."""
    direction: str
    """"higher" | "lower" | "info"."""
    verdict: str
    """"ok" | "regression" | "improvement" | "info" | "info-better" |
    "info-worse" | "n/a".  The ``info-*`` verdicts are direction-
    annotated wall-clock observations (see ``WALL_CLOCK_DIRECTIONS``);
    they never count toward the regression verdict."""


@dataclass
class DiffReport:
    """The outcome of comparing two artifacts."""

    baseline: str
    candidate: str
    schema_family: str
    config_hash: Tuple[Optional[str], Optional[str]]
    threshold: float
    entries: List[MetricDelta] = field(default_factory=list)
    forced: bool = False
    only_in_baseline: List[str] = field(default_factory=list)
    only_in_candidate: List[str] = field(default_factory=list)
    """``row/metric`` keys present in exactly one artifact (rows missing
    from the other side contribute all their metrics).  One-sided keys
    never affect the verdict, but a silent disappearance of a metric is
    itself a signal, so they are always surfaced."""

    @property
    def regressions(self) -> List[MetricDelta]:
        return [e for e in self.entries if e.verdict == "regression"]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [e for e in self.entries if e.verdict == "improvement"]

    @property
    def wall_clock_notes(self) -> List[MetricDelta]:
        """Direction-annotated wall-clock rows (informational only)."""
        return [e for e in self.entries
                if e.verdict in ("info-better", "info-worse")]

    @property
    def verdict(self) -> str:
        return "regression" if self.regressions else "no-regression"


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------

#: The artifact kinds ``repro diff`` can compare.
_DIFFABLE = RUN_REPORT_SCHEMAS + BENCH_SCHEMAS + SWEEP_SCHEMAS


def load_artifact(path: str) -> Dict[str, Any]:
    """Load and schema-check one artifact; :class:`DiffError` on any
    unusable input."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise DiffError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DiffError(f"{path} is not valid JSON ({exc})") from exc
    try:
        validate_artifact(doc, path=path)
    except SchemaError as exc:
        raise DiffError(str(exc)) from exc
    schema = doc["schema"]
    if schema not in _DIFFABLE:
        raise DiffError(f"{path}: cannot diff a {schema} artifact "
                        f"(expected one of {', '.join(_DIFFABLE)})")
    return doc


def _schema_family(doc: Dict[str, Any]) -> str:
    if doc["schema"] in BENCH_SCHEMAS:
        return "bench"
    if doc["schema"] in SWEEP_SCHEMAS:
        return "sweep_report"
    return "run_report"


def _doc_config_hash(doc: Dict[str, Any]) -> Optional[str]:
    if _schema_family(doc) == "bench":
        value = doc.get("config_hash")
    else:
        value = doc.get("meta", {}).get("config_hash")
    return value if isinstance(value, str) else None


def _sweep_cell_label(cell: Dict[str, Any]) -> str:
    return (f"{cell.get('consistency', '?')}/{cell.get('persistency', '?')}"
            f"@seed{cell.get('seed', '?')}")


def _metric_rows(doc: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """label -> {metric: value} for any diffable artifact kind."""
    if _schema_family(doc) == "bench":
        rows = {}
        for label, metrics in doc.get("metrics", {}).items():
            if isinstance(metrics, dict):
                rows[label] = {k: v for k, v in metrics.items()
                               if isinstance(v, (int, float))}
        return rows
    if _schema_family(doc) == "sweep_report":
        # One row per matrix cell.  ``cell_error`` (0 ok / 1 errored)
        # diffs with direction "lower", so a cell that crashed only in
        # the candidate is a regression even with no shared metrics;
        # cells present on one side only surface via only_in_*.
        rows = {}
        for cell in doc.get("cells", []):
            if not isinstance(cell, dict):
                continue
            metrics = {"cell_error":
                       0 if cell.get("status") == "ok" else 1}
            summary = cell.get("summary")
            if isinstance(summary, dict):
                metrics.update({k: v for k, v in summary.items()
                                if isinstance(v, (int, float))})
            rows[_sweep_cell_label(cell)] = metrics
        return rows
    summary = doc.get("summary", {})
    rows = {"summary": {k: v for k, v in summary.items()
                        if isinstance(v, (int, float))}}
    # The profile section (when the run was profiled): deterministic
    # counters diff as plain info, wall-clock metrics as direction-
    # annotated info rows (see WALL_CLOCK_DIRECTIONS).  Nested
    # attribution/scheduling dicts are not flattened into rows.
    profile = doc.get("profile")
    if isinstance(profile, dict):
        rows["profile"] = {k: v for k, v in profile.items()
                           if isinstance(v, (int, float))}
    # The audit section (run_report/6): violation totals gate the
    # verdict (a new violation is a regression), checker wall time is
    # a direction-annotated info row.
    audit = doc.get("audit")
    if isinstance(audit, dict) and isinstance(audit.get("totals"), dict):
        rows["audit"] = {k: v for k, v in audit["totals"].items()
                         if isinstance(v, (int, float))}
    return rows


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

def _compare_one(label: str, metric: str, base: Optional[float],
                 cand: Optional[float], threshold: float) -> MetricDelta:
    wall_clock = metric in WALL_CLOCK_DIRECTIONS
    direction = (WALL_CLOCK_DIRECTIONS[metric] if wall_clock
                 else METRIC_DIRECTIONS.get(metric, "info"))
    if (base is None or cand is None
            or (isinstance(base, float) and math.isnan(base))
            or (isinstance(cand, float) and math.isnan(cand))):
        return MetricDelta(label, metric, base, cand, None, direction, "n/a")
    delta = (cand - base) / base if base else (0.0 if cand == base else None)
    if direction == "info":
        return MetricDelta(label, metric, base, cand, delta, direction,
                           "info")
    if delta is None:
        # base == 0, cand != 0: the relative delta is undefined but the
        # change is real — judge it by direction (e.g. a violation
        # where the baseline had none is a regression, not "n/a").
        worsened = cand > base if direction == "lower" else cand < base
        if worsened:
            verdict = "info-worse" if wall_clock else "regression"
        else:
            verdict = "info-better" if wall_clock else "improvement"
        return MetricDelta(label, metric, base, cand, None, direction,
                           verdict)
    worse = -delta if direction == "higher" else delta
    if worse > threshold:
        verdict = "info-worse" if wall_clock else "regression"
    elif -worse > threshold:
        verdict = "info-better" if wall_clock else "improvement"
    else:
        verdict = "info" if wall_clock else "ok"
    return MetricDelta(label, metric, base, cand, delta, direction, verdict)


def diff_documents(base_doc: Dict[str, Any], cand_doc: Dict[str, Any],
                   baseline: str = "baseline", candidate: str = "candidate",
                   threshold: float = DEFAULT_THRESHOLD,
                   force: bool = False) -> DiffReport:
    """Compare two loaded artifacts; :class:`DiffError` if they are not
    comparable (different kinds, or conflicting config hashes) unless
    ``force`` is set."""
    family_a, family_b = _schema_family(base_doc), _schema_family(cand_doc)
    if family_a != family_b:
        raise DiffError(f"cannot diff a {family_a} artifact against a "
                        f"{family_b} artifact")
    hash_a, hash_b = _doc_config_hash(base_doc), _doc_config_hash(cand_doc)
    if (hash_a is not None and hash_b is not None and hash_a != hash_b
            and not force):
        raise DiffError(
            f"config mismatch: {baseline} was produced by config "
            f"{hash_a} but {candidate} by {hash_b} — an apples-to-"
            f"oranges comparison (pass --force to diff anyway)")
    report = DiffReport(baseline=baseline, candidate=candidate,
                        schema_family=family_a,
                        config_hash=(hash_a, hash_b),
                        threshold=threshold, forced=force)
    rows_a, rows_b = _metric_rows(base_doc), _metric_rows(cand_doc)
    shared_labels = [label for label in rows_a if label in rows_b]
    if not shared_labels:
        raise DiffError("the artifacts share no result rows to compare")
    for label in sorted(shared_labels):
        base_metrics, cand_metrics = rows_a[label], rows_b[label]
        for metric in sorted(set(base_metrics) & set(cand_metrics)):
            report.entries.append(_compare_one(
                label, metric, base_metrics.get(metric),
                cand_metrics.get(metric), threshold))
        for metric in sorted(set(base_metrics) - set(cand_metrics)):
            report.only_in_baseline.append(f"{label}/{metric}")
        for metric in sorted(set(cand_metrics) - set(base_metrics)):
            report.only_in_candidate.append(f"{label}/{metric}")
    # Rows missing entirely on one side are listed once by label.
    report.only_in_baseline.extend(sorted(set(rows_a) - set(rows_b)))
    report.only_in_candidate.extend(sorted(set(rows_b) - set(rows_a)))
    return report


def diff_paths(baseline: str, candidate: str,
               threshold: float = DEFAULT_THRESHOLD,
               force: bool = False) -> DiffReport:
    """Load two artifact files and compare them."""
    return diff_documents(load_artifact(baseline), load_artifact(candidate),
                          baseline=baseline, candidate=candidate,
                          threshold=threshold, force=force)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    if abs(value) >= 1e6:
        return f"{value:,.0f}"
    if isinstance(value, float) and value != int(value):
        return f"{value:,.1f}"
    return f"{value:,.0f}"


def _fmt_delta(delta: Optional[float]) -> str:
    return "-" if delta is None else f"{delta:+.1%}"


def format_markdown(report: DiffReport, show_ok: bool = True) -> str:
    """A human-readable markdown diff (verdict first, then the table)."""
    lines = [
        f"# repro diff — {report.verdict}",
        "",
        f"* baseline:  `{report.baseline}` (config {report.config_hash[0] or 'unhashed'})",
        f"* candidate: `{report.candidate}` (config {report.config_hash[1] or 'unhashed'})",
        f"* noise threshold: {report.threshold:.0%}"
        + ("  (forced past a config mismatch)" if report.forced
           and report.config_hash[0] != report.config_hash[1] else ""),
        "",
    ]
    if report.regressions:
        lines.append("Regressions:")
        for entry in report.regressions:
            lines.append(f"* **{entry.label} / {entry.metric}**: "
                         f"{_fmt(entry.baseline)} -> {_fmt(entry.candidate)} "
                         f"({_fmt_delta(entry.delta_frac)})")
        lines.append("")
    if report.improvements:
        lines.append("Improvements:")
        for entry in report.improvements:
            lines.append(f"* {entry.label} / {entry.metric}: "
                         f"{_fmt(entry.baseline)} -> {_fmt(entry.candidate)} "
                         f"({_fmt_delta(entry.delta_frac)})")
        lines.append("")
    if report.wall_clock_notes:
        lines.append("Wall-clock (informational, excluded from verdict):")
        for entry in report.wall_clock_notes:
            arrow = "faster" if entry.verdict == "info-better" else "slower"
            lines.append(f"* {entry.label} / {entry.metric}: "
                         f"{_fmt(entry.baseline)} -> {_fmt(entry.candidate)} "
                         f"({_fmt_delta(entry.delta_frac)}, {arrow})")
        lines.append("")
    if report.only_in_baseline:
        lines.append("Only in baseline (not compared):")
        lines.extend(f"* `{key}`" for key in report.only_in_baseline)
        lines.append("")
    if report.only_in_candidate:
        lines.append("Only in candidate (not compared):")
        lines.extend(f"* `{key}`" for key in report.only_in_candidate)
        lines.append("")
    entries = (report.entries if show_ok
               else [e for e in report.entries
                     if e.verdict in ("regression", "improvement")])
    if entries:
        lines.append("| row | metric | baseline | candidate | delta | verdict |")
        lines.append("|---|---|---:|---:|---:|---|")
        for entry in entries:
            lines.append(
                f"| {entry.label} | {entry.metric} | {_fmt(entry.baseline)} "
                f"| {_fmt(entry.candidate)} | {_fmt_delta(entry.delta_frac)} "
                f"| {entry.verdict} |")
    return "\n".join(lines)


def diff_json(report: DiffReport) -> Dict[str, Any]:
    """The machine-readable ``repro.diff_report/1`` document."""
    def clean(value: Optional[float]) -> Optional[float]:
        if value is None:
            return None
        return value if math.isfinite(value) else None

    return {
        "schema": DIFF_SCHEMA,
        "baseline": report.baseline,
        "candidate": report.candidate,
        "kind": report.schema_family,
        "config_hash": {"baseline": report.config_hash[0],
                        "candidate": report.config_hash[1]},
        "threshold": report.threshold,
        "forced": report.forced,
        "verdict": report.verdict,
        "regressions": [f"{e.label}/{e.metric}" for e in report.regressions],
        "improvements": [f"{e.label}/{e.metric}"
                         for e in report.improvements],
        "wall_clock_notes": [f"{e.label}/{e.metric}"
                             for e in report.wall_clock_notes],
        "only_in_baseline": list(report.only_in_baseline),
        "only_in_candidate": list(report.only_in_candidate),
        "metrics": [
            {"row": e.label, "metric": e.metric,
             "baseline": clean(e.baseline), "candidate": clean(e.candidate),
             "delta_frac": clean(e.delta_frac), "direction": e.direction,
             "verdict": e.verdict}
            for e in report.entries
        ],
    }
