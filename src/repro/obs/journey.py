"""Per-update journey tracking: one record that follows a write end to end.

The paper's framework is built on two per-update instants — the
Visibility Point and the Durability Point — and PR 1's
:class:`~repro.analysis.points.PointsTracker` measures *when* each is
reached.  This module records *how*: a :class:`JourneyTracker` is a
tracer-interface sink (plug it into an engine's ``tracer``, alone or
via a :class:`~repro.obs.fanout.FanoutTracer`) that stitches the
engine's existing emissions into one :class:`UpdateJourney` per write:

* client issue and coordinator handling (``write_issue`` with its
  ``start``/``stall_ns``/forwarding details),
* per-replica INV/UPD send and receive times (``msg_send`` /
  ``msg_recv``, correlated by ``(key, version)`` and ``op_id``),
* ACK / ACK_p arrival and VAL / VAL_p broadcast times,
* per-replica apply (VP contribution) and persist (DP contribution)
  instants from the replica observer,
* persist enqueue (``persist_issue`` with its *trigger* — what placed
  the persist: inline, eager, lazy, scope end, ENDX, or strict),
* NVM device service time of the completing media write
  (``nvm_persist`` spans, matched by node/address/end-time), and
* causal buffering waits (``causal_buffered`` / ``causal_released``).

:mod:`repro.analysis.waterfall` turns journeys into critical-path
decompositions (network / coordination-wait / NVM-queue / device /
compute buckets that sum to the end-to-end VP and DP latency) and
aggregates them into waterfall reports.

Like every sink, the tracker is passive: it never changes the
simulation, and a run with it attached is byte-identical to one
without (asserted in ``tests/obs/test_tracing_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["UpdateJourney", "JourneyTracker"]

Version = Tuple[int, int]

_INV_LIKE = ("INV", "UPD")
_ACK_C_LIKE = ("ACK", "ACK_C")


@dataclass
class UpdateJourney:
    """Everything observed about one write ``(key, version)``."""

    key: int
    version: Version
    coordinator: int
    client_issue_ns: float
    """When the write entered the coordinator (before request
    processing, stalls, and — under the leader variant — including the
    forwarding hop)."""
    issue_ns: float
    """When the coordinator allocated the version (the instant
    VP/DP lags are traditionally measured from)."""
    stall_ns: float = 0.0
    """Coordinator write-stall on an outstanding invalidation."""
    fwd_net_ns: float = 0.0
    """Leader variant: forward-hop wire time (origin -> leader)."""
    fwd_wait_ns: float = 0.0
    """Leader variant: wait for a leader request worker."""
    complete_ns: Optional[float] = None
    """When the client write returned (the model's completion point)."""
    op_id: Optional[int] = None
    sends: Dict[int, float] = field(default_factory=dict)
    """dst node -> INV/UPD injection time at the coordinator."""
    lazy_dsts: frozenset = frozenset()
    recvs: Dict[int, float] = field(default_factory=dict)
    """node -> INV/UPD arrival time (dispatcher pickup)."""
    applies: Dict[int, float] = field(default_factory=dict)
    """node -> volatile apply time (this node's VP contribution)."""
    acks: Dict[int, float] = field(default_factory=dict)
    """follower -> ACK/ACK_c arrival back at the coordinator."""
    ack_ps: Dict[int, float] = field(default_factory=dict)
    """follower -> ACK_p arrival back at the coordinator."""
    val_ns: Optional[float] = None
    """VAL/VAL_c broadcast time (transient state cleared)."""
    val_p_ns: Optional[float] = None
    """VAL_p broadcast time (cluster durability announced)."""
    persist_issues: Dict[int, float] = field(default_factory=dict)
    """node -> persist enqueue time."""
    persist_triggers: Dict[int, str] = field(default_factory=dict)
    """node -> what placed the persist (inline/eager/lazy/scope/endx/strict)."""
    persists: Dict[int, float] = field(default_factory=dict)
    """node -> durable time (this node's DP contribution)."""
    device_ns: Dict[int, float] = field(default_factory=dict)
    """node -> media service time of the completing NVM write."""
    buffer_wait_ns: Dict[int, float] = field(default_factory=dict)
    """node -> causal-buffering wait before this update could apply."""

    # -- derived -----------------------------------------------------------

    def vp_ns(self, num_nodes: int) -> Optional[float]:
        """End-to-end visibility latency (client issue -> applied at all
        ``num_nodes`` replicas), or None while incomplete."""
        if len(self.applies) < num_nodes:
            return None
        return max(self.applies.values()) - self.client_issue_ns

    def dp_ns(self, num_nodes: int) -> Optional[float]:
        """End-to-end durability latency (client issue -> persisted at
        all ``num_nodes`` replicas), or None while incomplete.  Writes
        whose NVM traffic was absorbed by write combining at some node
        never complete (the newer version's journey carries the DP)."""
        if len(self.persists) < num_nodes:
            return None
        return max(self.persists.values()) - self.client_issue_ns

    @property
    def vp_node(self) -> Optional[int]:
        """The replica that reached visibility last (the VP critical
        path runs through it)."""
        if not self.applies:
            return None
        return max(self.applies, key=lambda n: (self.applies[n], n))

    @property
    def dp_node(self) -> Optional[int]:
        if not self.persists:
            return None
        return max(self.persists, key=lambda n: (self.persists[n], n))


class JourneyTracker:
    """A tracer sink that assembles :class:`UpdateJourney` records.

    ``sample_every=N`` tracks every Nth issued write (1 = all);
    ``max_journeys`` caps memory, counting overflow in ``dropped`` so a
    truncated population is never silently presented as complete.
    """

    enabled = True

    def __init__(self, num_nodes: int, sample_every: int = 1,
                 max_journeys: Optional[int] = None):
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive: {sample_every}")
        if max_journeys is not None and max_journeys <= 0:
            raise ValueError(f"max_journeys must be positive: {max_journeys}")
        self.num_nodes = num_nodes
        self.sample_every = sample_every
        self.max_journeys = max_journeys
        self.dropped = 0
        self._issued = 0
        self._journeys: Dict[Tuple[int, Version], UpdateJourney] = {}
        self._by_op: Dict[int, Tuple[int, Version]] = {}
        # (node, address) -> (end time, service ns) of the last NVM
        # persist span, matched against the durability instant.
        self._nvm_spans: Dict[Tuple[int, int], Tuple[float, float]] = {}
        # (node, key, version) -> buffered-at time for causal waits.
        self._buffered: Dict[Tuple[int, int, Version], float] = {}

    # -- tracer interface --------------------------------------------------

    def emit(self, time: float, category: str, node: Optional[int] = None,
             **details: Any) -> None:
        handler = _HANDLERS.get(category)
        if handler is not None:
            handler(self, time, node, details)

    def span(self, start: float, end: float, category: str,
             node: Optional[int] = None, **details: Any) -> None:
        self.emit(end, category, node=node, dur=end - start, **details)

    # -- category handlers -------------------------------------------------

    def _on_write_issue(self, time, node, details) -> None:
        self._issued += 1
        if (self._issued - 1) % self.sample_every != 0:
            return
        if (self.max_journeys is not None
                and len(self._journeys) >= self.max_journeys):
            self.dropped += 1
            return
        jkey = (details["key"], details["version"])
        self._journeys.setdefault(jkey, UpdateJourney(
            key=details["key"], version=details["version"], coordinator=node,
            client_issue_ns=details.get("start", time), issue_ns=time,
            stall_ns=details.get("stall_ns", 0.0),
            fwd_net_ns=details.get("fwd_net_ns", 0.0),
            fwd_wait_ns=details.get("fwd_wait_ns", 0.0)))

    def _journey_for(self, details) -> Optional[UpdateJourney]:
        version = details.get("version")
        if version is not None and details.get("key") is not None:
            journey = self._journeys.get((details["key"], version))
            if journey is not None:
                return journey
        op_id = details.get("op_id")
        if op_id is not None:
            jkey = self._by_op.get(op_id)
            if jkey is not None:
                return self._journeys.get(jkey)
        return None

    def _on_msg_send(self, time, node, details) -> None:
        journey = self._journey_for(details)
        if journey is None:
            return
        msg = details.get("msg")
        if msg in _INV_LIKE and node == journey.coordinator:
            dst = details.get("dst")
            if dst is not None and dst not in journey.sends:
                journey.sends[dst] = time
                # Chain propagation (the sequential-visit ablation) defers
                # each send behind the previous delivery — a coordination
                # choice, bucketed like a lazy delay.
                if details.get("lazy") or details.get("chain"):
                    journey.lazy_dsts = journey.lazy_dsts | {dst}
            if details.get("op_id") is not None and journey.op_id is None:
                journey.op_id = details["op_id"]
                self._by_op[details["op_id"]] = (journey.key, journey.version)
        elif msg in ("VAL", "VAL_C") and journey.val_ns is None:
            journey.val_ns = time
        elif msg == "VAL_P" and journey.val_p_ns is None:
            journey.val_p_ns = time

    def _on_msg_recv(self, time, node, details) -> None:
        journey = self._journey_for(details)
        if journey is None:
            return
        msg = details.get("msg")
        if msg in _INV_LIKE:
            journey.recvs.setdefault(node, time)
        elif msg in _ACK_C_LIKE and node == journey.coordinator:
            src = details.get("src")
            if src is not None:
                journey.acks.setdefault(src, time)
        elif msg == "ACK_P" and node == journey.coordinator:
            src = details.get("src")
            if src is not None:
                journey.ack_ps.setdefault(src, time)

    def _on_apply(self, time, node, details) -> None:
        journey = self._journeys.get((details["key"], details["version"]))
        if journey is not None:
            journey.applies.setdefault(node, time)

    def _on_persist_issue(self, time, node, details) -> None:
        journey = self._journeys.get((details["key"], details["version"]))
        if journey is not None and node not in journey.persist_issues:
            journey.persist_issues[node] = time
            journey.persist_triggers[node] = details.get("trigger", "inline")

    def _on_nvm_persist(self, time, node, details) -> None:
        address = details.get("address")
        if address is not None:
            self._nvm_spans[(node, address)] = (
                time, details.get("service_ns", 0.0))

    def _on_persist(self, time, node, details) -> None:
        journey = self._journeys.get((details["key"], details["version"]))
        if journey is None or node in journey.persists:
            return
        journey.persists[node] = time
        span = self._nvm_spans.get((node, journey.key))
        if span is not None and span[0] == time:
            journey.device_ns[node] = span[1]

    def _on_causal_buffered(self, time, node, details) -> None:
        version = details.get("version")
        if version is not None:
            self._buffered.setdefault((node, details["key"], version), time)

    def _on_causal_released(self, time, node, details) -> None:
        version = details.get("version")
        if version is None:
            return
        buffered_at = self._buffered.pop((node, details["key"], version), None)
        if buffered_at is None:
            return
        journey = self._journeys.get((details["key"], version))
        if journey is not None:
            journey.buffer_wait_ns[node] = (
                journey.buffer_wait_ns.get(node, 0.0) + time - buffered_at)

    def _on_write_complete(self, time, node, details) -> None:
        journey = self._journeys.get((details["key"], details["version"]))
        if journey is not None and journey.complete_ns is None:
            journey.complete_ns = time

    # -- access ------------------------------------------------------------

    @property
    def journeys(self) -> List[UpdateJourney]:
        return list(self._journeys.values())

    def get(self, key: int, version: Version) -> Optional[UpdateJourney]:
        return self._journeys.get((key, version))

    def __len__(self) -> int:
        return len(self._journeys)


_HANDLERS = {
    "write_issue": JourneyTracker._on_write_issue,
    "msg_send": JourneyTracker._on_msg_send,
    "msg_recv": JourneyTracker._on_msg_recv,
    "apply": JourneyTracker._on_apply,
    "persist_issue": JourneyTracker._on_persist_issue,
    "nvm_persist": JourneyTracker._on_nvm_persist,
    "persist": JourneyTracker._on_persist,
    "causal_buffered": JourneyTracker._on_causal_buffered,
    "causal_released": JourneyTracker._on_causal_released,
    "write_complete": JourneyTracker._on_write_complete,
}
