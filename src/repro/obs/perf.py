"""The kernel performance observatory: flamegraphs and hotspot tables.

Two complementary views of where a run's wall-clock goes, feeding the
ROADMAP item-1 kernel-speedup work (in the spirit of always-on,
low-overhead profiling a la Google-Wide Profiling):

* :class:`FrameSampler` — an opt-in statistical sampler.  A daemon
  thread polls ``sys._current_frames()`` for the simulation thread at a
  configurable wall interval (signal-free, so it works anywhere and
  never perturbs the sim — the GIL guarantees a consistent frame
  chain).  Samples are tagged with the active *sim phase* (kernel /
  protocol / store / workload / observability) inferred from the
  deepest ``repro.*`` frame, and export as Brendan-Gregg folded stacks
  (``stackcollapse`` format, one ``frame;frame;frame count`` line) or
  speedscope JSON.
* :func:`format_hotspots` — the ``repro profile`` hotspot table, built
  from a :class:`~repro.obs.profile.KernelProfile`'s attribution
  buckets: event kinds and message handlers ranked by cumulative wall
  time, with per-event overhead and share of the event-loop wall.

Determinism note: nothing here touches the simulator.  The sampler only
*reads* interpreter frames; the hotspot table only reads counters the
kernel already maintains behind its single ``is not None`` check.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FrameSampler",
    "classify_phase",
    "format_hotspots",
    "hotspot_rows",
]

# Deepest repro.* frame decides the phase: the kernel shows up under
# every stack, so a protocol handler mid-callback counts as protocol
# work, not kernel work, matching how a human reads the flamegraph.
_PHASE_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("repro.sim", "kernel"),
    ("repro.store", "store"),
    ("repro.workload", "workload"),
    ("repro.obs", "observability"),
    ("repro.analysis", "observability"),
    ("repro.devtools", "observability"),
)
_PROTOCOL_PREFIX = "repro."  # any other repro.* module is protocol/model code


def classify_phase(stack: Sequence[str]) -> str:
    """Phase label for a root-first stack of ``module:function`` frames."""
    for frame in reversed(stack):
        module = frame.partition(":")[0]
        for prefix, phase in _PHASE_PREFIXES:
            if module == prefix or module.startswith(prefix + "."):
                return phase
        if module == "repro" or module.startswith(_PROTOCOL_PREFIX):
            return "protocol"
    return "other"


class FrameSampler:
    """Signal-free statistical sampler of one thread's Python stacks.

    Construct it on the thread that will run the simulation (the target
    thread id defaults to the constructing thread), then::

        sampler = FrameSampler(interval_s=0.005)
        sampler.start()
        ...  # run the simulation
        sampler.stop()
        sampler.write_folded("profile.folded")
        sampler.write_speedscope("profile.speedscope.json")

    Samples accumulate as ``(phase, stack, weight_seconds)`` tuples in
    :attr:`samples`; ``stack`` is root-first ``module:function`` frames.
    :meth:`sample_once` is public so tests can sample deterministically
    without the polling thread.
    """

    def __init__(self, interval_s: float = 0.005,
                 target_thread_id: Optional[int] = None):
        if interval_s <= 0:
            raise ValueError(f"sample interval must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self.target_thread_id = (threading.get_ident()
                                 if target_thread_id is None
                                 else target_thread_id)
        self.samples: List[Tuple[str, Tuple[str, ...], float]] = []
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()

    # -- collection ----------------------------------------------------------

    def sample_once(self, weight_s: Optional[float] = None) -> bool:
        """Capture one stack of the target thread.  Returns False if the
        thread has no frames (exited).  ``weight_s`` defaults to the
        configured interval."""
        frame = sys._current_frames().get(self.target_thread_id)
        if frame is None:
            return False
        stack: List[str] = []
        own_module = __name__
        while frame is not None:
            module = frame.f_globals.get("__name__", "?")
            stack.append(f"{module}:{frame.f_code.co_name}")
            frame = frame.f_back
        stack.reverse()
        # When sampling our own thread (tests), trim the sampler's frames
        # so the leaf is the caller, as it would be for a polled target.
        while stack and stack[-1].startswith(own_module + ":"):
            stack.pop()
        if not stack:
            return False
        weight = self.interval_s if weight_s is None else weight_s
        self.samples.append((classify_phase(stack), tuple(stack), weight))
        return True

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop_event.clear()
        self._thread = threading.Thread(target=self._poll, daemon=True,
                                        name="repro-frame-sampler")
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join()
        self._thread = None

    def _poll(self) -> None:
        # repro: lint-ok[wall-clock-ban] sampler weights are real elapsed time between polls
        last = time.perf_counter()
        while not self._stop_event.wait(self.interval_s):
            # repro: lint-ok[wall-clock-ban] sampler weights are real elapsed time between polls
            now = time.perf_counter()
            self.sample_once(weight_s=now - last)
            last = now

    # -- export --------------------------------------------------------------

    def folded_counts(self) -> Dict[str, float]:
        """Aggregate samples to ``phase;frame;frame -> weight_seconds``."""
        counts: Dict[str, float] = {}
        for phase, stack, weight in self.samples:
            key = ";".join((phase,) + stack)
            counts[key] = counts.get(key, 0.0) + weight
        return counts

    def write_folded(self, path: str) -> int:
        """Write Brendan-Gregg folded stacks (for ``flamegraph.pl`` /
        speedscope import).  Counts are integer milliseconds so standard
        tooling, which expects integers, renders sane widths.  Returns
        the number of stack lines written."""
        counts = self.folded_counts()
        lines = [f"{key} {max(1, round(weight * 1e3))}"
                 for key, weight in sorted(counts.items())]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        return len(lines)

    def speedscope_document(self, name: str = "repro") -> Dict[str, Any]:
        """The profile as a speedscope file-format document
        (``type: sampled``, weights in seconds)."""
        frame_index: Dict[str, int] = {}
        frames: List[Dict[str, str]] = []
        sample_stacks: List[List[int]] = []
        weights: List[float] = []
        for phase, stack, weight in self.samples:
            indices = []
            for frame_name in (f"[{phase}]",) + stack:
                index = frame_index.get(frame_name)
                if index is None:
                    index = frame_index[frame_name] = len(frames)
                    frames.append({"name": frame_name})
                indices.append(index)
            sample_stacks.append(indices)
            weights.append(weight)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [{
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": total,
                "samples": sample_stacks,
                "weights": weights,
            }],
            "exporter": "repro.obs.perf",
            "name": name,
        }

    def write_speedscope(self, path: str, name: str = "repro") -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.speedscope_document(name), fh, indent=1,
                      sort_keys=True)
            fh.write("\n")

    def phase_totals(self) -> Dict[str, float]:
        """Sampled wall seconds per phase (the coarse breakdown)."""
        totals: Dict[str, float] = {}
        for phase, _stack, weight in self.samples:
            totals[phase] = totals.get(phase, 0.0) + weight
        return totals


# ---------------------------------------------------------------------------
# hotspot table
# ---------------------------------------------------------------------------

def hotspot_rows(profile: Any) -> List[Dict[str, Any]]:
    """Attribution buckets of a :class:`KernelProfile`, ranked by
    cumulative wall seconds (descending), ties broken by name.

    Each row: ``section`` (``event_kind`` or ``msg_type``), ``name``,
    ``count``, ``wall_seconds``, ``ns_per_event``, and ``share`` of the
    event-loop wall (msg_type rows are a *refinement* of the
    process-resume event rows, so shares across sections overlap).
    """
    loop = profile.loop_wall_seconds
    rows: List[Dict[str, Any]] = []
    for section, table in (("event_kind", profile.by_event_kind),
                           ("msg_type", profile.by_msg_type)):
        for name, stats in table.items():
            count, wall = stats[0], stats[1]
            rows.append({
                "section": section,
                "name": name,
                "count": count,
                "wall_seconds": wall,
                "ns_per_event": (wall / count * 1e9) if count else 0.0,
                "share": (wall / loop) if loop > 0 else 0.0,
            })
    rows.sort(key=lambda row: (-row["wall_seconds"], row["name"]))
    return rows


def format_hotspots(profile: Any, top: Optional[int] = None) -> str:
    """Human-readable hotspot table for ``repro profile``."""
    loop = profile.loop_wall_seconds
    attributed = profile.attributed_wall_seconds
    coverage = (attributed / loop * 100.0) if loop > 0 else 0.0
    lines = [
        f"kernel loop: {loop * 1e3:.1f} ms wall, "
        f"{profile.events_processed} events, "
        f"{coverage:.1f}% attributed to event buckets",
    ]
    header = (f"{'bucket':<28} {'count':>10} {'wall ms':>10} "
              f"{'ns/event':>10} {'share':>7}")
    rule = "-" * len(header)
    for section, title in (("event_kind", "by event kind"),
                           ("msg_type", "by message handler (refines "
                                        "process-resume time)")):
        rows = [row for row in hotspot_rows(profile)
                if row["section"] == section]
        if top is not None:
            rows = rows[:top]
        if not rows:
            continue
        lines += ["", title, header, rule]
        for row in rows:
            lines.append(
                f"{row['name']:<28} {row['count']:>10} "
                f"{row['wall_seconds'] * 1e3:>10.2f} "
                f"{row['ns_per_event']:>10.0f} "
                f"{row['share'] * 100:>6.1f}%")
    scheduling = profile.snapshot()["scheduling"]
    lines += [
        "",
        "scheduling: "
        f"max tie-batch {scheduling['max_tie_batch']}, "
        f"defused ratio {scheduling['defused_ratio']:.4f}, "
        f"{scheduling['callbacks_cancelled']} callbacks cancelled, "
        f"{scheduling['hops_per_message']:.2f} trampoline hops/message",
    ]
    return "\n".join(lines)
