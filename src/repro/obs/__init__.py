"""Observability: trace export, kernel profiling, run reports, health.

This package turns the raw signals the simulation already produces
(:class:`repro.sim.trace.Tracer` records, :class:`repro.analysis.metrics.
Metrics` operation records, :class:`repro.analysis.points.PointsTracker`
VP/DP events) into artifacts a human or a tool can consume:

* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  Perfetto / ``chrome://tracing``) and a JSONL streaming sink.
* :mod:`repro.obs.profile` — :class:`KernelProfile`, cheap counters for
  the simulation kernel itself (events processed, heap high-water mark,
  processes spawned, wall-clock per simulated second) plus per-event-kind
  and per-message-handler wall attribution and scheduling statistics.
* :mod:`repro.obs.perf` — the kernel performance observatory surface:
  :class:`FrameSampler` (statistical sampling to folded stacks /
  speedscope JSON, phase-tagged) and the ``repro profile`` hotspot table.
* :mod:`repro.obs.report` — the machine-readable run-report JSON with
  windowed throughput/latency series and per-node VP/DP lag.
* :mod:`repro.obs.fanout` — :class:`FanoutTracer` to feed one engine's
  emissions to several sinks (e.g. a Tracer and a PointsTracker).
* :mod:`repro.obs.journey` — :class:`JourneyTracker`, a sink that
  assembles one end-to-end :class:`UpdateJourney` per write for the
  critical-path waterfalls of :mod:`repro.analysis.waterfall`.
* :mod:`repro.obs.monitor` — :class:`HealthMonitor`, a DES-clock-driven
  periodic sampler of cluster pressure (persist queues, causal buffers,
  inflight rounds, hot keys) with online invariant probes.
* :mod:`repro.obs.diff` — cross-run regression diffing of run reports
  and ``BENCH_*.json`` artifacts (the ``repro diff`` subcommand and the
  CI perf gate).
* :mod:`repro.obs.history` — :class:`HistoryRecorder`, the bounded
  client-boundary operation recorder behind the black-box contract
  auditor (:mod:`repro.audit`), and the ``repro.history/1`` artifact.
* :mod:`repro.obs.schemas` — the one registry of every artifact schema
  tag, with :func:`validate_artifact` used by all CLI load paths.
* :mod:`repro.obs.sweep` — the sweep observatory: the models x seeds
  matrix fanned across worker processes and merged deterministically
  into ``repro.sweep_report/1`` (byte-identical for any worker count).
* :mod:`repro.obs.dashboard` — the ``repro dash`` renderer: one
  self-contained static HTML page (heatmaps, waterfalls, kernel
  attribution, baseline diff, bench trends) from a sweep report.
"""

from repro.obs.dashboard import (
    build_dashboard,
    load_bench_dir,
    write_dashboard,
)
from repro.obs.diff import (
    DiffError,
    DiffReport,
    diff_documents,
    diff_json,
    diff_paths,
    format_markdown,
    load_artifact,
)
from repro.obs.export import (
    JsonlSink,
    chrome_trace_events,
    chrome_trace_payload,
    journey_chrome_events,
    write_chrome_trace,
)
from repro.obs.fanout import FanoutTracer
from repro.obs.history import (
    HISTORY_SCHEMA,
    History,
    HistoryOpRecord,
    HistoryRecorder,
    load_history,
    recovered_from_cluster,
    write_history,
)
from repro.obs.journey import JourneyTracker, UpdateJourney
from repro.obs.monitor import (
    HealthMonitor,
    HealthSample,
    HealthViolation,
    health_chrome_events,
    health_json,
)
from repro.obs.perf import (
    FrameSampler,
    classify_phase,
    format_hotspots,
    hotspot_rows,
)
from repro.obs.profile import KernelProfile
from repro.obs.report import (
    build_run_report,
    config_fingerprint,
    write_run_report,
)
from repro.obs.schemas import (
    SchemaError,
    parse_schema_tag,
    schema_tag,
    schema_tags,
    validate_artifact,
)
from repro.obs.sweep import (
    CellResult,
    CellSpec,
    SweepProgress,
    build_sweep_report,
    matrix_specs,
    run_cell,
    run_sweep,
    strip_wall_clock,
    sweep_summaries,
    write_sweep_report,
)

__all__ = [
    "JsonlSink",
    "chrome_trace_events",
    "chrome_trace_payload",
    "journey_chrome_events",
    "write_chrome_trace",
    "FanoutTracer",
    "HISTORY_SCHEMA",
    "History",
    "HistoryOpRecord",
    "HistoryRecorder",
    "load_history",
    "recovered_from_cluster",
    "write_history",
    "JourneyTracker",
    "UpdateJourney",
    "HealthMonitor",
    "HealthSample",
    "HealthViolation",
    "health_chrome_events",
    "health_json",
    "KernelProfile",
    "FrameSampler",
    "classify_phase",
    "format_hotspots",
    "hotspot_rows",
    "build_run_report",
    "config_fingerprint",
    "write_run_report",
    "DiffError",
    "DiffReport",
    "diff_documents",
    "diff_json",
    "diff_paths",
    "format_markdown",
    "load_artifact",
    "SchemaError",
    "parse_schema_tag",
    "schema_tag",
    "schema_tags",
    "validate_artifact",
    "CellResult",
    "CellSpec",
    "SweepProgress",
    "build_sweep_report",
    "matrix_specs",
    "run_cell",
    "run_sweep",
    "strip_wall_clock",
    "sweep_summaries",
    "write_sweep_report",
    "build_dashboard",
    "load_bench_dir",
    "write_dashboard",
]
