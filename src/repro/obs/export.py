"""Trace exporters: Chrome ``trace_event`` JSON and JSONL streaming.

The Chrome format (the ``traceEvents`` array consumed by Perfetto and
``chrome://tracing``) maps onto the simulation like this:

* **pid** — one "process" per node: ``pid = node_id + 1``; records with
  no node (cluster-wide events) go to ``pid 0`` ("cluster").
* **tid** — one "thread" per lane; categories are grouped into lanes
  (requests, protocol, replication, durability, network, memory,
  recovery) so related events share a timeline row.
* **ts / dur** — microseconds, as the format requires; simulated
  nanoseconds are divided by 1000, keeping sub-ns precision as decimals.
* **ph** — ``"X"`` for spans (emitted with ``dur``), ``"i"`` for
  instants, straight from :class:`repro.sim.trace.TraceRecord.phase`.

Everything is emitted in deterministic order (records in emission order,
metadata sorted), so two runs with the same seed produce byte-identical
files — asserted by the test suite.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from repro.sim.trace import INSTANT, SPAN, TraceRecord

__all__ = ["LANES", "chrome_trace_events", "journey_chrome_events",
           "chrome_trace_payload", "write_chrome_trace", "JsonlSink"]

CLUSTER_PID = 0
"""pid for records carrying no node id."""

LANES: Dict[str, Iterable[str]] = {
    "requests": ("write_issue", "read_stall", "write_stall",
                 "read_blocked_unpersisted", "txn_begin", "txn_commit",
                 "txn_abort", "scope_persist", "fwd_write"),
    "protocol": ("msg_send", "msg_recv", "msg_handle", "xdc_upd"),
    "replication": ("apply", "causal_buffered", "causal_released"),
    "durability": ("persist", "persist_issue", "nvm_persist"),
    "network": ("net_send", "net_deliver"),
    "memory": ("dram_access", "llc_access"),
    "recovery": ("recovery_scan", "recovery_reconcile", "recovery_resolve",
                 "recovery_done"),
    "journey": ("journey_vp", "journey_dp", "write_complete"),
    "health": ("health", "health.kernel", "health.pressure",
               "health_violation", "fault"),
}

_LANE_NAMES = list(LANES) + ["misc"]
_CATEGORY_LANE: Dict[str, int] = {
    category: index
    for index, (_lane, categories) in enumerate(LANES.items())
    for category in categories
}
_MISC_TID = len(LANES)


def _lane_of(category: str) -> int:
    return _CATEGORY_LANE.get(category, _MISC_TID)


def _jsonable(value: Any) -> Any:
    """Details may carry tuples (versions), enums, arbitrary objects."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def chrome_trace_events(records: Iterable[TraceRecord]) -> List[dict]:
    """Convert trace records to ``trace_event`` dicts (no metadata)."""
    events: List[dict] = []
    for record in records:
        pid = CLUSTER_PID if record.node is None else record.node + 1
        event: Dict[str, Any] = {
            "name": record.category,
            "cat": _LANE_NAMES[_lane_of(record.category)],
            "ph": record.phase,
            "pid": pid,
            "tid": _lane_of(record.category),
        }
        if record.phase == SPAN:
            event["ts"] = record.start / 1000.0
            event["dur"] = record.dur / 1000.0
        else:
            event["ts"] = record.time / 1000.0
            if record.phase == INSTANT:
                event["s"] = "t"  # thread-scoped instant
        if record.details:
            event["args"] = {k: _jsonable(v)
                             for k, v in record.details.items()}
        events.append(event)
    return events


def journey_chrome_events(journeys: Iterable[Any],
                          num_nodes: int) -> List[dict]:
    """Journey lanes: one ``journey_vp`` / ``journey_dp`` span per
    completed update, anchored at its coordinator's process, carrying
    the critical-path bucket split in ``args``."""
    from repro.analysis.waterfall import decompose

    events: List[dict] = []
    for journey in journeys:
        breakdown = decompose(journey, num_nodes)
        for name in ("journey_vp", "journey_dp"):
            path = breakdown.vp if name == "journey_vp" else breakdown.dp
            if path is None:
                continue
            events.append({
                "name": name,
                "cat": "journey",
                "ph": SPAN,
                "pid": journey.coordinator + 1,
                "tid": _lane_of(name),
                "ts": journey.client_issue_ns / 1000.0,
                "dur": path.latency_ns / 1000.0,
                "args": _jsonable({
                    "key": journey.key,
                    "version": list(journey.version),
                    "via_node": path.node,
                    "buckets_ns": path.buckets,
                }),
            })
    return events


def _metadata_events(records: Iterable[TraceRecord]) -> List[dict]:
    """process/thread naming so Perfetto shows node/lane labels."""
    pids = sorted({CLUSTER_PID if r.node is None else r.node + 1
                   for r in records})
    events: List[dict] = []
    for pid in pids:
        name = "cluster" if pid == CLUSTER_PID else f"node{pid - 1}"
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})
        for tid, lane in enumerate(_LANE_NAMES):
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": lane}})
    return events


def chrome_trace_payload(records: Iterable[TraceRecord],
                         dropped: int = 0,
                         meta: Optional[Dict[str, Any]] = None,
                         extra_events: Optional[List[dict]] = None) -> dict:
    """The full JSON document: metadata + events + run information.

    ``extra_events`` are appended after the record events — e.g. the
    journey lanes from :func:`journey_chrome_events`.
    """
    records = list(records)
    other: Dict[str, Any] = {"record_count": len(records),
                             "dropped_records": dropped}
    if meta:
        other.update({str(k): _jsonable(v) for k, v in meta.items()})
    return {
        "traceEvents": (_metadata_events(records)
                        + chrome_trace_events(records)
                        + list(extra_events or [])),
        "displayTimeUnit": "ns",
        "otherData": other,
    }


def write_chrome_trace(path: str, records: Iterable[TraceRecord],
                       dropped: int = 0,
                       meta: Optional[Dict[str, Any]] = None,
                       extra_events: Optional[List[dict]] = None) -> None:
    """Write a Perfetto-loadable trace file (deterministic bytes)."""
    payload = chrome_trace_payload(records, dropped=dropped, meta=meta,
                                   extra_events=extra_events)
    with open(path, "w") as fh:
        json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")


class JsonlSink:
    """A duck-typed tracer that streams records as JSON lines.

    Unlike :class:`~repro.sim.trace.Tracer` it holds no memory at all:
    each ``emit`` is serialized and written immediately, so arbitrarily
    long runs stream to disk.  Plug it into a
    :class:`~repro.obs.fanout.FanoutTracer` to both keep records and
    stream them.
    """

    enabled = True

    def __init__(self, destination: Union[str, IO[str]]):
        if isinstance(destination, str):
            self._fh: IO[str] = open(destination, "w")
            self._owns = True
        else:
            self._fh = destination
            self._owns = False
        self.emitted = 0

    def emit(self, time: float, category: str, node: Optional[int] = None,
             dur: Optional[float] = None, phase: Optional[str] = None,
             **details: Any) -> None:
        line: Dict[str, Any] = {"ts": time, "cat": category}
        if node is not None:
            line["node"] = node
        if dur is not None:
            line["dur"] = dur
        line["ph"] = phase if phase is not None else (
            SPAN if dur is not None else INSTANT)
        if details:
            line["args"] = {k: _jsonable(v) for k, v in details.items()}
        self._fh.write(json.dumps(line, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self.emitted += 1

    def span(self, start: float, end: float, category: str,
             node: Optional[int] = None, **details: Any) -> None:
        self.emit(end, category, node=node, dur=end - start, **details)

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> JsonlSink:
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
