"""Profiling the simulation kernel itself.

Every future "make a hot path measurably faster" PR needs to know what
the kernel spent its time on.  :class:`KernelProfile` is a plain counter
object the :class:`repro.sim.engine.Simulator` increments when attached
(``sim.profile = profile``); detached (the default), the kernel pays one
``is not None`` check per step.

Collected:

* ``events_processed`` — heap pops (kernel iterations).
* ``heap_peak`` — high-water mark of the event heap (scheduling depth).
* ``processes_spawned`` — generator processes launched.
* wall-clock — real seconds between :meth:`start` and :meth:`stop`,
  reported per simulated second so runs of different lengths compare.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

__all__ = ["KernelProfile"]


class KernelProfile:
    """Cheap kernel counters plus wall-clock accounting."""

    __slots__ = ("events_processed", "heap_peak", "processes_spawned",
                 "_wall_start", "wall_seconds", "sim_ns")

    def __init__(self):
        self.events_processed = 0
        self.heap_peak = 0
        self.processes_spawned = 0
        self._wall_start: Optional[float] = None
        self.wall_seconds = 0.0
        self.sim_ns = 0.0

    # -- lifecycle -----------------------------------------------------------

    def attach(self, sim: Any) -> KernelProfile:
        """Install on a simulator and start the wall clock."""
        sim.profile = self
        self.start()
        return self

    def start(self) -> None:
        # repro: lint-ok[wall-clock-ban] the profiler's whole job is measuring real elapsed time
        self._wall_start = time.perf_counter()

    def stop(self, sim_now: float) -> None:
        """Freeze wall-clock and simulated extent (idempotent)."""
        if self._wall_start is not None:
            # repro: lint-ok[wall-clock-ban] the profiler's whole job is measuring real elapsed time
            self.wall_seconds += time.perf_counter() - self._wall_start
            self._wall_start = None
        self.sim_ns = sim_now

    # -- derived -------------------------------------------------------------

    @property
    def events_per_wall_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds

    @property
    def wall_seconds_per_sim_second(self) -> float:
        """Slowdown factor: real seconds per simulated second."""
        if self.sim_ns <= 0:
            return 0.0
        return self.wall_seconds / (self.sim_ns * 1e-9)

    def snapshot(self) -> Dict[str, float]:
        """The run-report ``profile`` section."""
        return {
            "events_processed": self.events_processed,
            "heap_peak": self.heap_peak,
            "processes_spawned": self.processes_spawned,
            "sim_ns": self.sim_ns,
            "wall_seconds": self.wall_seconds,
            "events_per_wall_second": self.events_per_wall_second,
            "wall_seconds_per_sim_second": self.wall_seconds_per_sim_second,
        }

    def format(self) -> str:
        return (f"kernel: {self.events_processed} events, "
                f"heap peak {self.heap_peak}, "
                f"{self.processes_spawned} processes, "
                f"{self.wall_seconds * 1e3:.1f} ms wall "
                f"({self.events_per_wall_second / 1e6:.2f} Mevents/s, "
                f"{self.wall_seconds_per_sim_second:.0f}x slowdown)")
