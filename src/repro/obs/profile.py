"""Profiling the simulation kernel itself.

Every future "make a hot path measurably faster" PR needs to know what
the kernel spent its time on.  :class:`KernelProfile` is a plain counter
object the :class:`repro.sim.engine.Simulator` increments when attached
(``sim.profile = profile``); detached (the default), the kernel pays one
``is not None`` check per step.

Collected:

* ``events_processed`` — heap pops (kernel iterations).
* ``heap_peak`` — high-water mark of the event heap (scheduling depth).
* ``processes_spawned`` — generator processes launched.
* wall-clock — real seconds between :meth:`start` and :meth:`stop`,
  reported per simulated second so runs of different lengths compare.

Attribution (the performance observatory, ``repro.obs.perf``):

* ``by_event_kind`` — per event ``kind`` (timeout, msg_delivery,
  process_start/end, call_at, composite, interrupt, event) the pop
  count and cumulative wall seconds spent running its callbacks.
* ``by_msg_type`` — per protocol :class:`~repro.core.messages.MsgType`
  handler, the message count, cumulative wall seconds, and generator
  resume segments (filled in by :meth:`drive_handler`, which
  ``core.engine`` routes dispatch through when a profile is attached).
* scheduling statistics — heap-depth histogram (power-of-two buckets),
  same-timestamp tie-batch size histogram, defused-event and cancelled
  -callback counts, and trampoline hops per resume.

All wall-clock reads live here (waivered) so the kernel stays clean of
``time`` imports; ``loop_wall_seconds`` brackets only the event loop, so
attribution buckets sum to ~100% of it (the hotspot-table denominator).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Generator, List, Optional

__all__ = ["KernelProfile"]


class KernelProfile:
    """Cheap kernel counters plus wall-clock accounting."""

    __slots__ = ("events_processed", "heap_peak", "processes_spawned",
                 "_wall_start", "wall_seconds", "sim_ns",
                 "loop_wall_seconds", "by_event_kind", "by_msg_type",
                 "heap_depth_hist", "_last_stamp",
                 "tie_batch_hist", "_tie_when", "_tie_run",
                 "events_defused", "callbacks_cancelled",
                 "trampoline_hops", "resume_segments")

    def __init__(self):
        self.events_processed = 0
        self.heap_peak = 0
        self.processes_spawned = 0
        self._wall_start: Optional[float] = None
        self.wall_seconds = 0.0
        self.sim_ns = 0.0
        # Event-loop wall time only (between loop_enter/loop_exit); the
        # denominator for attribution shares, excluding setup/teardown.
        self.loop_wall_seconds = 0.0
        # kind -> [count, wall_seconds]
        self.by_event_kind: Dict[str, List] = {}
        # MsgType.value -> [count, wall_seconds, resume_segments]
        self.by_msg_type: Dict[str, List] = {}
        # heap depth bit_length bucket -> pops observed at that depth
        # (bucket b covers depths 2**(b-1) .. 2**b - 1; bucket 0 is depth 0)
        self.heap_depth_hist: Dict[int, int] = {}
        # Chained step timestamp: each step's window runs from the
        # previous step's end, so loop overhead (pop, peek, bookkeeping)
        # is attributed to event buckets instead of silently leaking —
        # the buckets sum to ~100% of loop_wall_seconds.
        self._last_stamp: Optional[float] = None
        # tie-batch size -> batches (consecutive pops at one timestamp)
        self.tie_batch_hist: Dict[int, int] = {}
        self._tie_when: Optional[float] = None
        self._tie_run = 0
        self.events_defused = 0
        self.callbacks_cancelled = 0
        self.trampoline_hops = 0
        self.resume_segments = 0

    # -- lifecycle -----------------------------------------------------------

    def attach(self, sim: Any) -> KernelProfile:
        """Install on a simulator and start the wall clock."""
        sim.profile = self
        self.start()
        return self

    def start(self) -> None:
        # repro: lint-ok[wall-clock-ban] the profiler's whole job is measuring real elapsed time
        self._wall_start = time.perf_counter()

    def stop(self, sim_now: float) -> None:
        """Freeze wall-clock and simulated extent (idempotent)."""
        if self._wall_start is not None:
            # repro: lint-ok[wall-clock-ban] the profiler's whole job is measuring real elapsed time
            self.wall_seconds += time.perf_counter() - self._wall_start
            self._wall_start = None
        self._flush_tie_run()
        self.sim_ns = sim_now

    # -- kernel hooks --------------------------------------------------------
    #
    # Called by Simulator._profiled_step / run / Process._resume; never on
    # the unprofiled path, so the cost lands only on runs that asked for it.

    def step_start(self, depth: int, when: float) -> float:
        """Before a heap pop: scheduling stats.  Returns the wall t0."""
        self.events_processed += 1
        if depth > self.heap_peak:
            self.heap_peak = depth
        bucket = depth.bit_length()
        hist = self.heap_depth_hist
        hist[bucket] = hist.get(bucket, 0) + 1
        if when == self._tie_when:
            self._tie_run += 1
        else:
            self._flush_tie_run()
            self._tie_when = when
            self._tie_run = 1
        stamp = self._last_stamp
        if stamp is not None:
            # Inside a profiled loop: chain from the previous step's end
            # so pop/peek/bookkeeping overhead stays attributed.
            return stamp
        # Direct step() outside run(): open a fresh window here.
        # repro: lint-ok[wall-clock-ban] brackets one kernel step for wall attribution
        return time.perf_counter()

    def step_end(self, kind: str, defused: bool, t0: float) -> None:
        """After the event's callbacks ran: bucket the elapsed wall."""
        # repro: lint-ok[wall-clock-ban] brackets one kernel step for wall attribution
        now = time.perf_counter()
        if self._last_stamp is not None:
            self._last_stamp = now
        bucket = self.by_event_kind.get(kind)
        if bucket is None:
            bucket = self.by_event_kind[kind] = [0, 0.0]
        bucket[0] += 1
        bucket[1] += now - t0
        if defused:
            self.events_defused += 1

    def loop_enter(self) -> float:
        # repro: lint-ok[wall-clock-ban] brackets the event loop for the attribution denominator
        t0 = time.perf_counter()
        self._last_stamp = t0
        return t0

    def loop_exit(self, t0: float) -> None:
        # repro: lint-ok[wall-clock-ban] brackets the event loop for the attribution denominator
        self.loop_wall_seconds += time.perf_counter() - t0
        self._last_stamp = None

    def drive_handler(self, label: str, handler: Generator) -> Generator:
        """Run a protocol message handler, timing each resume segment.

        A transparent generator shim: yields exactly the events ``handler``
        yields, forwards sent values and thrown exceptions unchanged, so
        kernel scheduling (and hence the run) is byte-identical — only the
        wall time between a resume and the next suspend is recorded under
        ``label`` (the ``MsgType`` value).
        """
        stats = self.by_msg_type.get(label)
        if stats is None:
            stats = self.by_msg_type[label] = [0, 0.0, 0]
        stats[0] += 1
        value: Any = None
        error: Optional[BaseException] = None
        while True:
            # repro: lint-ok[wall-clock-ban] times one handler resume segment
            t0 = time.perf_counter()
            try:
                if error is None:
                    target = handler.send(value)
                else:
                    target, error = handler.throw(error), None
            except StopIteration:
                # repro: lint-ok[wall-clock-ban] times one handler resume segment
                stats[1] += time.perf_counter() - t0
                return
            except BaseException:
                # repro: lint-ok[wall-clock-ban] times one handler resume segment
                stats[1] += time.perf_counter() - t0
                raise
            # repro: lint-ok[wall-clock-ban] times one handler resume segment
            stats[1] += time.perf_counter() - t0
            stats[2] += 1
            try:
                value = yield target
            except BaseException as exc:  # rethrown into the handler next turn
                error = exc
                value = None

    def _flush_tie_run(self) -> None:
        if self._tie_run:
            hist = self.tie_batch_hist
            hist[self._tie_run] = hist.get(self._tie_run, 0) + 1
            self._tie_run = 0
            self._tie_when = None

    # -- derived -------------------------------------------------------------

    @property
    def wall_elapsed_seconds(self) -> float:
        """Wall seconds including any still-running interval.

        Mid-run (before :meth:`stop`), ``wall_seconds`` alone is the sum
        of *closed* intervals — zero on the first lap — so live readers
        (``HealthMonitor``, mid-run snapshots) must fold in the in-flight
        elapsed time or they report a dishonest 0.
        """
        elapsed = self.wall_seconds
        if self._wall_start is not None:
            # repro: lint-ok[wall-clock-ban] live snapshots must include the in-flight interval
            elapsed += time.perf_counter() - self._wall_start
        return elapsed

    @property
    def events_per_wall_second(self) -> float:
        wall = self.wall_elapsed_seconds
        if wall <= 0:
            return 0.0
        return self.events_processed / wall

    @property
    def wall_seconds_per_sim_second(self) -> float:
        """Slowdown factor: real seconds per simulated second."""
        if self.sim_ns <= 0:
            return 0.0
        return self.wall_elapsed_seconds / (self.sim_ns * 1e-9)

    @property
    def messages_handled(self) -> int:
        return sum(stats[0] for stats in self.by_msg_type.values())

    @property
    def attributed_wall_seconds(self) -> float:
        """Wall seconds accounted to some event-kind bucket."""
        return sum(bucket[1] for bucket in self.by_event_kind.values())

    def snapshot(self) -> Dict[str, Any]:
        """The run-report ``profile`` section (schema ``/5`` shape).

        Flat headline counters first (the ``/4`` shape, unchanged), then
        the ``attribution`` and ``scheduling`` subsections the
        observatory added.  Safe to call mid-run: wall-derived values
        include the in-flight interval (see :attr:`wall_elapsed_seconds`).
        """
        messages = self.messages_handled
        loop = self.loop_wall_seconds
        attributed = self.attributed_wall_seconds
        return {
            "events_processed": self.events_processed,
            "heap_peak": self.heap_peak,
            "processes_spawned": self.processes_spawned,
            "sim_ns": self.sim_ns,
            "wall_seconds": self.wall_elapsed_seconds,
            "events_per_wall_second": self.events_per_wall_second,
            "wall_seconds_per_sim_second": self.wall_seconds_per_sim_second,
            "loop_wall_seconds": loop,
            "attribution": {
                "by_event_kind": {
                    kind: {"count": count, "wall_seconds": wall}
                    for kind, (count, wall)
                    in sorted(self.by_event_kind.items())
                },
                "by_msg_type": {
                    label: {"count": count, "wall_seconds": wall,
                            "resume_segments": segments}
                    for label, (count, wall, segments)
                    in sorted(self.by_msg_type.items())
                },
                "attributed_wall_seconds": attributed,
                "attributed_fraction":
                    attributed / loop if loop > 0 else 0.0,
            },
            "scheduling": {
                "heap_depth_hist": {
                    str(bucket): count for bucket, count
                    in sorted(self.heap_depth_hist.items())
                },
                "tie_batch_hist": {
                    str(size): count for size, count
                    in sorted(self.tie_batch_hist.items())
                },
                "max_tie_batch":
                    max(self.tie_batch_hist) if self.tie_batch_hist else 0,
                "events_defused": self.events_defused,
                "defused_ratio":
                    self.events_defused / self.events_processed
                    if self.events_processed else 0.0,
                "callbacks_cancelled": self.callbacks_cancelled,
                "trampoline_hops": self.trampoline_hops,
                "resume_segments": self.resume_segments,
                "messages_handled": messages,
                "hops_per_message":
                    self.trampoline_hops / messages if messages else 0.0,
            },
        }

    def format(self) -> str:
        return (f"kernel: {self.events_processed} events, "
                f"heap peak {self.heap_peak}, "
                f"{self.processes_spawned} processes, "
                f"{self.wall_elapsed_seconds * 1e3:.1f} ms wall "
                f"({self.events_per_wall_second / 1e6:.2f} Mevents/s, "
                f"{self.wall_seconds_per_sim_second:.0f}x slowdown)")
