"""Fan one stream of trace emissions out to several sinks.

Engines hold exactly one ``tracer`` attribute; when a run wants both a
timeline (:class:`repro.sim.trace.Tracer`) and derived measurements
(:class:`repro.analysis.points.PointsTracker`), or a bounded in-memory
buffer plus a JSONL stream, a :class:`FanoutTracer` forwards every
``emit`` to all of them.  It is enabled iff any sink is enabled, so a
fanout of disabled sinks keeps the engine fast path intact.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

__all__ = ["FanoutTracer"]


class FanoutTracer:
    """Forward every emission to each underlying sink."""

    def __init__(self, sinks: Iterable[Any]):
        self.sinks = [sink for sink in sinks if sink is not None]
        self.enabled = any(getattr(sink, "enabled", True)
                           for sink in self.sinks)

    def emit(self, time: float, category: str, node: Optional[int] = None,
             **details: Any) -> None:
        for sink in self.sinks:
            sink.emit(time, category, node=node, **details)

    def span(self, start: float, end: float, category: str,
             node: Optional[int] = None, **details: Any) -> None:
        self.emit(end, category, node=node, dur=end - start, **details)

    def __len__(self) -> int:
        return sum(len(sink) for sink in self.sinks
                   if hasattr(sink, "__len__"))
