"""Closed-loop client processes.

Each client is pinned to one server (its coordinator for every request)
and issues requests back-to-back: the next request starts when the
previous one completes, as in the paper's testbed where client threads
block on their outstanding request.

Under Transactional consistency the client groups every
``txn_length`` requests into a transaction and retries the whole
transaction (with backoff) when it is squashed by a conflict.  Under
Scope persistency the client issues a Persist call after every
``scope_length`` requests.

Latency accounting: each logical request is recorded once, when its
*successful* attempt completes, with the start time of its *first*
attempt — so transaction squashes show up as long write/read latencies,
matching the paper ("a request will not be satisfied until the
transaction restarts and completes").
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.analysis.metrics import Metrics, OpRecord
from repro.core.context import ClientContext
from repro.core.engine import ProtocolNode
from repro.core.policies import PersistMode
from repro.sim.engine import Interrupt, Simulator
from repro.txn.manager import TxnConflict
from repro.workload.ycsb import RequestStream

__all__ = ["Client"]

_MAX_BACKOFF_MULTIPLIER = 8


class Client:
    """One closed-loop client thread."""

    def __init__(self, sim: Simulator, client_id: int, node: ProtocolNode,
                 stream: RequestStream, metrics: Metrics,
                 record_reads: bool = False, record_ops: bool = False,
                 history=None):
        self.sim = sim
        self.client_id = client_id
        self.node = node
        self.stream = stream
        self.metrics = metrics
        self.ctx = ClientContext(client_id, node.node_id)
        self.completed_requests = 0
        self.process = None
        self._stop = False
        # Optional request budget: the client stops issuing once it has
        # completed this many requests (None = run until stopped).  A
        # cluster whose clients all carry a budget drains to quiescence,
        # which is what fixed-work experiments (e.g. the tie-batch
        # sanitizer's byte-identity sweeps) need: the same operation
        # multiset regardless of how the schedule interleaves.
        self.max_requests: Optional[int] = None
        # Optional repro.obs.history.HistoryRecorder: the black-box
        # audit's view of this client (pure observation; never touches
        # the simulation).
        self.history = history
        # The logical operation currently in flight, as (op, key) —
        # cleared on completion.  Lets the fault injector count
        # crash-severed operations even without a recorder attached.
        self.in_flight = None
        # Optional session log of (key, version) read observations, for
        # validating session guarantees (monotonic reads, Table 4).
        # ``record_ops`` additionally logs completed writes, committed
        # transaction writes, and completed scopes, for the durability
        # contracts checked by repro.faults.validate after faulty runs
        # (and implies read recording).
        self.record_reads = record_reads or record_ops
        self.record_ops = record_ops
        self.read_observations: List[tuple] = []
        self.completed_writes: List[tuple] = []
        self.scope_log: dict = {}
        # Read sessions closed by a crash-restart of the client's node:
        # session guarantees (monotonic reads) hold within a session,
        # and a restart starts a fresh one.
        self._closed_read_sessions: List[List[tuple]] = []

    def start(self) -> None:
        self.process = self.sim.process(self._run(),
                                        name=f"client{self.client_id}")

    def request_stop(self) -> None:
        """Stop issuing new requests after the current one completes.

        Unlike interrupting the process, this never abandons a protocol
        round mid-flight, so the cluster drains to a clean state.
        """
        self._stop = True

    def restart(self) -> None:
        """Reconnect after the client's node crash-restarted.

        The old process was interrupted at the crash (abandoning any
        in-flight operation, like a real client losing its server); this
        opens a fresh session: new context (causal dependencies, scopes,
        and transactions do not survive the server's volatile state) and
        a new read-session segment.  Durable-contract logs
        (``completed_writes``, ``scope_log``) span sessions — completed
        work stays completed across a crash.
        """
        if self.read_observations:
            self._closed_read_sessions.append(self.read_observations)
            self.read_observations = []
        if self.history is not None:
            # New session, degraded era: the node rebuilt from its own
            # NVM image only, so this session may observe stale state.
            self.history.restart_session(self.client_id)
        self.ctx = ClientContext(self.client_id, self.node.node_id)
        self._stop = False
        self.start()

    def read_sessions(self) -> List[List[tuple]]:
        """All read-session segments, oldest first (see ``restart``)."""
        sessions = list(self._closed_read_sessions)
        if self.read_observations:
            sessions.append(self.read_observations)
        return sessions

    # ------------------------------------------------------------------

    def _run(self) -> Generator:
        transactional = self.node.cpolicy.transactional
        scoped = self.node.ppolicy.persist_mode is PersistMode.ON_SCOPE_END
        scope_length = self.node.config.scope_length
        requests_since_persist = 0
        try:
            while not self._stop and (self.max_requests is None
                                      or self.completed_requests
                                      < self.max_requests):
                if transactional:
                    count = yield from self._run_transaction()
                else:
                    count = yield from self._run_single()
                self.completed_requests += count
                if scoped:
                    requests_since_persist += count
                    if requests_since_persist >= scope_length:
                        yield from self._run_scope_persist()
                        requests_since_persist = 0
        except Interrupt:
            # Graceful shutdown (used by tests and crash experiments); an
            # in-flight operation is abandoned mid-protocol, like a real
            # client disconnecting.  The abandoned operation may or may
            # not have taken effect: the history keeps it as pending.
            if self.history is not None:
                self.history.sever(self.client_id)
            self.in_flight = None
            return

    def _record(self, op_type: str, key: Optional[int], start_ns: float) -> None:
        self.metrics.record_op(OpRecord(
            op_type=op_type, node=self.node.node_id, client=self.client_id,
            key=key, start_ns=start_ns, end_ns=self.sim.now))

    # -- plain requests -------------------------------------------------------------

    def _run_single(self) -> Generator:
        op, key, value = self.stream.next_request()
        start = self.sim.now
        self.in_flight = (op, key)
        if self.history is not None:
            scoped = (self.node.ppolicy.persist_mode
                      is PersistMode.ON_SCOPE_END)
            self.history.invoke(
                self.client_id, self.node.node_id, op, key,
                value=None if op == "read" else value,
                scope_id=(self.ctx.current_scope_id
                          if scoped and op == "write" else None))
        if op == "read":
            result = yield from self.node.client_read(self.ctx, key)
            if self.history is not None:
                self.history.complete(self.client_id,
                                      version=self.ctx.last_read_version,
                                      value=result)
            if self.record_reads:
                self.read_observations.append(
                    (key, self.ctx.last_read_version))
        else:
            yield from self.node.client_write(self.ctx, key, value)
            if self.history is not None:
                self.history.complete(self.client_id,
                                      version=self.ctx.last_write_version)
            if self.record_ops:
                self.completed_writes.append(
                    (key, self.ctx.last_write_version))
        self.in_flight = None
        self._record(op, key, start)
        return 1

    def _run_scope_persist(self) -> Generator:
        start = self.sim.now
        scope_id = self.ctx.current_scope_id
        scope_writes = list(self.ctx.scope_writes)
        self.in_flight = ("persist", None)
        if self.history is not None:
            self.history.invoke(self.client_id, self.node.node_id,
                                "persist", None, scope_id=scope_id)
        yield from self.node.client_persist_scope(self.ctx)
        if self.history is not None:
            self.history.complete(self.client_id, committed=True)
        self.in_flight = None
        if self.record_ops and scope_writes:
            # Recorded only on completion: an interrupted Persist leaves
            # the scope uncommitted, which makes no durability promise.
            self.scope_log[scope_id] = scope_writes
        self._record("persist", None, start)

    # -- transactions ------------------------------------------------------------------

    def _run_transaction(self) -> Generator:
        txn_length = self.node.config.txn_length
        requests = [self.stream.next_request() for _ in range(txn_length)]
        first_start: List[Optional[float]] = [None] * txn_length
        scoped = self.node.ppolicy.persist_mode is PersistMode.ON_SCOPE_END
        attempt = 0
        while True:
            attempt += 1
            begin_start = self.sim.now
            txn = None
            try:
                yield from self.node.client_begin_txn(self.ctx)
                txn = self.ctx.txn
                completions: List[float] = []
                for index, (op, key, value) in enumerate(requests):
                    if first_start[index] is None:
                        first_start[index] = self.sim.now
                    self.in_flight = (op, key)
                    if self.history is not None:
                        self.history.invoke(
                            self.client_id, self.node.node_id, op, key,
                            value=None if op == "read" else value,
                            txn_id=txn.txn_id if txn is not None else None,
                            scope_id=(self.ctx.current_scope_id
                                      if scoped and op == "write" else None))
                    if op == "read":
                        result = yield from self.node.client_read(self.ctx,
                                                                  key)
                        if self.history is not None:
                            self.history.complete(
                                self.client_id,
                                version=self.ctx.last_read_version,
                                value=result)
                    else:
                        yield from self.node.client_write(self.ctx, key, value)
                        if self.history is not None:
                            self.history.complete(
                                self.client_id,
                                version=self.ctx.last_write_version)
                    self.in_flight = None
                    completions.append(self.sim.now)
                yield from self.node.client_end_txn(self.ctx)
                if self.history is not None and txn is not None:
                    self.history.set_txn_outcome(txn.txn_id, True)
            except TxnConflict:
                # The squashed access itself neither took effect nor
                # observed anything; the attempt's earlier operations
                # are stamped aborted (their writes were reverted).
                if self.history is not None:
                    self.history.fail(self.client_id)
                self.in_flight = None
                yield from self.node.client_abort_txn(self.ctx)
                if self.history is not None and txn is not None:
                    self.history.set_txn_outcome(txn.txn_id, False)
                backoff = (self.node.config.txn_retry_backoff_ns
                           * min(attempt, _MAX_BACKOFF_MULTIPLIER))
                yield self.sim.timeout(backoff)
                continue
            if self.record_ops and txn is not None:
                # A committed transaction's writes are the durable unit
                # (individual writes inside an uncommitted transaction
                # promise nothing).
                self.completed_writes.extend(txn.writes)
            # Success: record every request of the transaction.  Reads and
            # writes inside a committed transaction are not final until
            # ENDX, but the paper measures their individual completions.
            for index, (op, key, _value) in enumerate(requests):
                self.metrics.record_op(OpRecord(
                    op_type=op, node=self.node.node_id,
                    client=self.client_id, key=key,
                    start_ns=first_start[index], end_ns=completions[index]))
            self._record("txn", None, begin_start)
            return txn_length
