"""Zipfian key-choice generator, after the YCSB implementation.

Uses the Gray et al. "Quickly generating billion-record synthetic
databases" rejection-free method that YCSB uses: constant-time draws
after an O(n)-ish zeta precomputation (with the standard incremental
zeta update when the item count grows).

Also provides the *scrambled* variant YCSB uses by default, which hashes
the rank so that popular keys are spread over the key space instead of
clustering at low ids.
"""

from __future__ import annotations

from repro.sim.rng import SeededStream

__all__ = ["ZipfianGenerator", "ScrambledZipfianGenerator", "UniformGenerator",
           "fnv1a_64"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """64-bit FNV-1a hash of an integer (YCSB's scramble function)."""
    data = value & 0xFFFFFFFFFFFFFFFF
    result = _FNV_OFFSET
    for _ in range(8):
        octet = data & 0xFF
        data >>= 8
        result ^= octet
        result = (result * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return result


class ZipfianGenerator:
    """Zipf-distributed ranks in ``[0, item_count)``.

    ``theta`` is the skew (YCSB default 0.99; 0 = uniform-ish).
    """

    def __init__(self, item_count: int, theta: float = 0.99,
                 rng: SeededStream = None):
        if item_count < 1:
            raise ValueError(f"item_count must be >= 1, got {item_count}")
        if not 0.0 < theta < 1.0:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.item_count = item_count
        self.theta = theta
        self.rng = rng or SeededStream(0, "zipf")
        self._zeta2 = self._zeta_static(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._zeta_n = self._zeta_static(item_count, theta)
        self._eta = self._compute_eta()

    @staticmethod
    def _zeta_static(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def _compute_eta(self) -> float:
        if self.item_count <= 2:
            # With <= 2 items, draws resolve in the closed-form branches
            # of next_rank and eta is never consulted meaningfully.
            return 0.0
        return ((1.0 - (2.0 / self.item_count) ** (1.0 - self.theta))
                / (1.0 - self._zeta2 / self._zeta_n))

    def grow(self, new_count: int) -> None:
        """Extend the item space incrementally (YCSB's inserts)."""
        if new_count < self.item_count:
            raise ValueError("item space cannot shrink")
        for i in range(self.item_count + 1, new_count + 1):
            self._zeta_n += 1.0 / (i ** self.theta)
        self.item_count = new_count
        self._eta = self._compute_eta()

    def next_rank(self) -> int:
        """Draw one rank; rank 0 is the most popular."""
        u = self.rng.random()
        uz = u * self._zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count
                   * ((self._eta * u - self._eta + 1.0) ** self._alpha))

    def next(self) -> int:
        return min(self.next_rank(), self.item_count - 1)


class ScrambledZipfianGenerator:
    """Zipfian ranks scrambled over the key space (YCSB default)."""

    def __init__(self, item_count: int, theta: float = 0.99,
                 rng: SeededStream = None):
        self._zipf = ZipfianGenerator(item_count, theta, rng)
        self.item_count = item_count

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.item_count


class UniformGenerator:
    """Uniform key choice (YCSB workload C variants)."""

    def __init__(self, item_count: int, rng: SeededStream = None):
        if item_count < 1:
            raise ValueError(f"item_count must be >= 1, got {item_count}")
        self.item_count = item_count
        self.rng = rng or SeededStream(0, "uniform")

    def next(self) -> int:
        return self.rng.randint(0, self.item_count - 1)
