"""Workload substrate: YCSB-style generators and closed-loop clients."""

from repro.workload.client import Client
from repro.workload.ycsb import WORKLOADS, RequestStream, WorkloadSpec
from repro.workload.zipf import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
)

__all__ = [
    "Client",
    "RequestStream",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "WORKLOADS",
    "WorkloadSpec",
    "ZipfianGenerator",
    "fnv1a_64",
]
