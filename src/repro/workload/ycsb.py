"""YCSB-style workload definitions (paper Section 7).

The paper evaluates with YCSB workload A (50% reads / 50% writes),
workload B (95% reads / 5% writes), and a custom write-heavy
"workload W" (5% reads / 95% writes), all over zipfian key choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import SeededStream
from repro.workload.zipf import ScrambledZipfianGenerator, UniformGenerator

__all__ = ["WorkloadSpec", "WORKLOADS", "RequestStream"]


@dataclass(frozen=True)
class WorkloadSpec:
    """A read/write mix over a key space."""

    name: str
    read_fraction: float
    key_space: int = 10_000
    zipf_theta: float = 0.99
    distribution: str = "zipfian"   # "zipfian" | "uniform"

    def __post_init__(self):
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction out of range: {self.read_fraction}")
        if self.key_space < 1:
            raise ValueError(f"key_space must be >= 1: {self.key_space}")

    def with_overrides(self, **changes) -> WorkloadSpec:
        """A copy with some fields replaced (for sensitivity sweeps)."""
        import dataclasses
        return dataclasses.replace(self, **changes)


WORKLOADS = {
    # The paper's three mixes (Figure 9).
    "A": WorkloadSpec(name="A", read_fraction=0.50),
    "B": WorkloadSpec(name="B", read_fraction=0.95),
    "W": WorkloadSpec(name="W", read_fraction=0.05),
    # Classic YCSB C (read-only, uniform is also common) for completeness.
    "C": WorkloadSpec(name="C", read_fraction=1.00),
}


class RequestStream:
    """Deterministic per-client stream of (op, key) requests."""

    def __init__(self, spec: WorkloadSpec, rng: SeededStream):
        self.spec = spec
        self._op_rng = rng.fork("ops")
        key_rng = rng.fork("keys")
        if spec.distribution == "zipfian":
            self._keys = ScrambledZipfianGenerator(spec.key_space,
                                                   spec.zipf_theta, key_rng)
        elif spec.distribution == "uniform":
            self._keys = UniformGenerator(spec.key_space, key_rng)
        else:
            raise ValueError(f"unknown distribution {spec.distribution!r}")
        self._value_counter = 0

    def next_request(self):
        """Return ("read", key, None) or ("write", key, value)."""
        key = self._keys.next()
        if self._op_rng.random() < self.spec.read_fraction:
            return ("read", key, None)
        self._value_counter += 1
        return ("write", key, self._value_counter)
