"""RDMA verbs over the fabric, including the SNIA NVM extensions.

Current RDMA gives no guarantee that data reached remote *persistent*
memory.  The paper follows SNIA's "NVM PM Remote Access for High
Availability" proposal and models extended commands; we implement the
same three verbs the evaluation relies on:

* :meth:`RdmaEndpoint.write` — one-sided write into remote volatile
  memory (DDIO deposit); completion event fires when the remote memory
  is updated and the ack returns.
* :meth:`RdmaEndpoint.write_persist` — one-sided write whose completion
  guarantees the payload is durable in remote NVM (used by Strict
  persistency, which may persist before the volatile replica updates).
* :meth:`RdmaEndpoint.flush` — flush previously-written remote data from
  volatile memory to NVM; completes when durable.

Each verb is a *process generator*; the caller decides whether to wait.
Verbs are one-sided: they charge the remote memory device directly, not
a remote worker core, matching RDMA's bypass of the remote CPU.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.memory.hierarchy import MemoryHierarchy
from repro.net.network import Network
from repro.sim.engine import Simulator

__all__ = ["RdmaEndpoint", "RdmaFabric"]


class RdmaEndpoint:
    """RDMA verbs from one source node to remote memories."""

    def __init__(self, sim: Simulator, network: Network, node_id: int,
                 memories: Dict[int, MemoryHierarchy]):
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self._memories = memories
        self.writes = 0
        self.persist_writes = 0
        self.flushes = 0

    def _one_way(self) -> float:
        return self.network.config.one_way_ns

    def _serialization(self, size_bytes: int) -> float:
        nic = self.network.nic(self.node_id)
        return nic.serialization_ns(size_bytes)

    def write(self, dst: int, address: int, size_bytes: int = 64) -> Generator:
        """Process: one-sided write to remote volatile memory.

        Timeline: serialize + propagate, remote DDIO/DRAM update, ack
        propagates back.  Total = RTT + remote volatile update.
        """
        self.writes += 1
        yield self.sim.timeout(self._serialization(size_bytes) + self._one_way())
        remote = self._memories[dst]
        yield from remote.volatile_update(address, size_bytes, via_ddio=True)
        yield self.sim.timeout(self._one_way())

    def write_persist(self, dst: int, address: int,
                      size_bytes: int = 64) -> Generator:
        """Process: one-sided durable write to remote NVM (SNIA extension).

        Completion guarantees durability; the remote volatile replica is
        *not* necessarily updated (the paper notes Strict persistency may
        persist before the volatile copies change).
        """
        self.persist_writes += 1
        yield self.sim.timeout(self._serialization(size_bytes) + self._one_way())
        remote = self._memories[dst]
        yield from remote.persist(address)
        yield self.sim.timeout(self._one_way())

    def flush(self, dst: int, address: int) -> Generator:
        """Process: flush remote volatile data to remote NVM."""
        self.flushes += 1
        yield self.sim.timeout(self._serialization(16) + self._one_way())
        remote = self._memories[dst]
        yield from remote.persist(address)
        yield self.sim.timeout(self._one_way())


class RdmaFabric:
    """Factory/registry of per-node RDMA endpoints sharing one network."""

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self._memories: Dict[int, MemoryHierarchy] = {}
        self._endpoints: Dict[int, RdmaEndpoint] = {}

    def register(self, node_id: int, memory: MemoryHierarchy) -> RdmaEndpoint:
        if node_id in self._endpoints:
            raise ValueError(f"node {node_id} already registered")
        self._memories[node_id] = memory
        endpoint = RdmaEndpoint(self.sim, self.network, node_id, self._memories)
        self._endpoints[node_id] = endpoint
        return endpoint

    def endpoint(self, node_id: int) -> RdmaEndpoint:
        return self._endpoints[node_id]
