"""Network substrate: fabric, NICs with queue pairs, RDMA-NVM verbs."""

from repro.net.network import Network, NetworkConfig, Nic
from repro.net.rdma import RdmaEndpoint, RdmaFabric

__all__ = ["Network", "NetworkConfig", "Nic", "RdmaEndpoint", "RdmaFabric"]
