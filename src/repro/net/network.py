"""Network fabric and NIC models.

The paper models (Table 5): 1 us NIC-to-NIC round trip, 200 Gb/s links,
and NICs with up to 400 queue pairs.  We model:

* :class:`NetworkConfig` — latency/bandwidth/queue-pair parameters.
* :class:`Nic` — per-node endpoint; outgoing messages serialize onto the
  link at the configured bandwidth and occupy a queue pair until
  delivered; incoming messages are deposited into the node's inbox
  (via DDIO in the memory model, handled by the node).
* :class:`Network` — the all-to-all fabric connecting NICs, adding the
  propagation latency (half the configured round trip per direction).

Messages are opaque to this layer; it only needs ``size_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.sim.engine import Event, Simulator
from repro.sim.sync import Resource, Store
from repro.sim.trace import NullTracer

__all__ = ["NetworkConfig", "Nic", "Network"]


@dataclass(frozen=True)
class NetworkConfig:
    """Fabric parameters (defaults = paper Table 5)."""

    round_trip_ns: float = 1000.0
    bandwidth_bytes_per_ns: float = 25.0  # 200 Gb/s = 25 GB/s
    queue_pairs: int = 400

    @property
    def one_way_ns(self) -> float:
        return self.round_trip_ns / 2.0


class Nic:
    """One node's network interface.

    Sending holds a queue pair for the serialization time; the in-flight
    propagation does not hold the queue pair (the fabric pipelines), so
    queue pairs only throttle injection rate, as on real hardware.
    """

    def __init__(self, sim: Simulator, node_id: int, config: NetworkConfig):
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.queue_pairs = Resource(sim, config.queue_pairs,
                                    name=f"nic{node_id}.qp")
        self.inbox: Store = Store(sim, name=f"nic{node_id}.inbox")
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0

    def serialization_ns(self, size_bytes: int) -> float:
        return size_bytes / self.config.bandwidth_bytes_per_ns

    def deliver(self, message: Any, size_bytes: int) -> None:
        """Called by the fabric when a message arrives."""
        self.messages_received += 1
        self.bytes_received += size_bytes
        self.inbox.put(message)

    def receive(self) -> Event:
        """Event yielding the next inbound message."""
        event = self.inbox.get()
        event.kind = "msg_delivery"
        return event


class Network:
    """All-to-all fabric.  ``send`` is fire-and-forget (like a NIC doorbell);
    the returned event triggers at *remote delivery* time, which protocol
    code can ignore (message passing) or wait on (RDMA-style completion
    is modeled one level up, in :mod:`repro.net.rdma`).
    """

    def __init__(self, sim: Simulator, config: Optional[NetworkConfig] = None,
                 one_way_fn: Optional[Callable[[int, int], float]] = None,
                 tracer=None):
        self.sim = sim
        self.config = config or NetworkConfig()
        self.tracer = tracer if tracer is not None else NullTracer()
        self._nics: Dict[int, Nic] = {}
        self.total_messages = 0
        self.total_bytes = 0
        # Optional per-pair propagation delay (ns) — used by hybrid
        # multi-datacenter topologies; defaults to the uniform fabric.
        self.one_way_fn = one_way_fn
        # Optional hook for failure injection: called with (src, dst, msg);
        # returning False drops the message.
        self.filter: Optional[Callable[[int, int, Any], bool]] = None
        # Richer fault hook (duck-typed, see repro.faults.FaultInjector):
        # ``faults.on_message(src, dst, message, size_bytes)`` returns
        # None for "deliver normally" or an object with ``drop`` (bool),
        # ``delay_ns`` (float, extra propagation latency) and ``copies``
        # (int >= 1, message duplication) attributes.  Kept duck-typed so
        # this layer does not depend on the faults package.
        self.faults = None
        self.dropped_messages = 0
        self.delayed_messages = 0
        self.duplicated_messages = 0

    def attach(self, node_id: int) -> Nic:
        """Create and register the NIC for ``node_id``."""
        if node_id in self._nics:
            raise ValueError(f"node {node_id} already attached")
        nic = Nic(self.sim, node_id, self.config)
        self._nics[node_id] = nic
        return nic

    def nic(self, node_id: int) -> Nic:
        return self._nics[node_id]

    @property
    def node_ids(self) -> List[int]:
        return sorted(self._nics)

    def send(self, src: int, dst: int, message: Any, size_bytes: int) -> Event:
        """Inject ``message`` from ``src`` to ``dst``.

        Returns an event that triggers when the message is delivered at
        the destination NIC.  The sending side is charged queue-pair
        occupancy and serialization via a helper process.
        """
        if src == dst:
            raise ValueError("loopback send: use local operations instead")
        if self.filter is not None and not self.filter(src, dst, message):
            return self.sim.event()  # dropped: never triggers
        extra_delay_ns = 0.0
        if self.faults is not None:
            verdict = self.faults.on_message(src, dst, message, size_bytes)
            if verdict is not None:
                if verdict.drop:
                    self.dropped_messages += 1
                    return self.sim.event()  # dropped: never triggers
                extra_delay_ns = verdict.delay_ns
                if extra_delay_ns > 0:
                    self.delayed_messages += 1
                # Duplicates ride their own transfers: each occupies a
                # queue pair and serializes like a real resend would.
                for _copy in range(verdict.copies - 1):
                    self.duplicated_messages += 1
                    self.sim.process(
                        self._transfer(src, dst, message, size_bytes,
                                       self.sim.event(), extra_delay_ns),
                        name=f"net:{src}->{dst}")
        delivered = self.sim.event()
        self.sim.process(self._transfer(src, dst, message, size_bytes,
                                        delivered, extra_delay_ns),
                         name=f"net:{src}->{dst}")
        return delivered

    def _transfer(self, src: int, dst: int, message: Any, size_bytes: int,
                  delivered: Event, extra_delay_ns: float = 0.0) -> Generator:
        src_nic = self._nics[src]
        dst_nic = self._nics[dst]
        inject_start = self.sim.now
        serialization_ns = src_nic.serialization_ns(size_bytes)
        yield src_nic.queue_pairs.acquire()
        try:
            yield self.sim.timeout(serialization_ns)
        finally:
            src_nic.queue_pairs.release()
        src_nic.messages_sent += 1
        src_nic.bytes_sent += size_bytes
        self.total_messages += 1
        self.total_bytes += size_bytes
        if self.tracer.enabled:
            # Span covers queue-pair wait + serialization onto the link;
            # ser_ns isolates the bandwidth share so queue-pair wait is
            # the remainder.
            self.tracer.emit(self.sim.now, "net_send", node=src,
                             dur=self.sim.now - inject_start, dst=dst,
                             bytes=size_bytes, ser_ns=serialization_ns)
        one_way = (self.one_way_fn(src, dst) if self.one_way_fn is not None
                   else self.config.one_way_ns)
        yield self.sim.timeout(one_way + extra_delay_ns)
        dst_nic.deliver(message, size_bytes)
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, "net_deliver", node=dst, src=src,
                             bytes=size_bytes)
        delivered.succeed(message)

    def broadcast(self, src: int, dsts: List[int], message: Any,
                  size_bytes: int) -> List[Event]:
        """Send ``message`` to every node in ``dsts`` concurrently.

        This is the paper's leaderless broadcast: one message per
        destination injected back-to-back, not a chain.
        """
        return [self.send(src, dst, message, size_bytes) for dst in dsts]
