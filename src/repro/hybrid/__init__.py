"""Hybrid deployments: strong consistency locally, Eventual across
datacenters (paper Section 9)."""

from repro.hybrid.cluster import HybridCluster
from repro.hybrid.engine import HybridProtocolNode

__all__ = ["HybridCluster", "HybridProtocolNode"]
