"""Hybrid DDP protocol node (paper Section 9).

"Many systems use hybrid consistency models — e.g., Linearizable or
Read-Enforced consistency in a local cluster, and Eventual consistency
across the entire distributed system in a data center."

A :class:`HybridProtocolNode` runs the configured (strong) DDP model
*within its local group*: the invalidation rounds, read stalls, and
persist placement all span only the group's replicas.  Updates cross
group boundaries as lazy ``UPD`` messages — exactly the Eventual-
consistency propagation path — so remote datacenters converge in the
background and never sit on any critical path.

Remote nodes apply cross-group UPDs with their own persistency mode, so
the paper's suggested pairing ("Scope or Eventual persistency for the
local cluster, and Synchronous persistency across the system") is a
matter of configuring the two groups' models.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.core.context import ClientContext
from repro.core.engine import ProtocolNode
from repro.core.messages import Message, MsgType
from repro.core.replica import KeyReplica, Version

__all__ = ["HybridProtocolNode"]


class HybridProtocolNode(ProtocolNode):
    """A protocol node whose strong rounds span only its local group."""

    def __init__(self, *args, remote_ids: List[int] = (), **kwargs):
        super().__init__(*args, **kwargs)
        # peer_ids (given to the base class) must already be the *local*
        # group peers; remote_ids are the other groups' nodes.
        self.remote_ids = list(remote_ids)
        self.remote_upds_sent = 0

    def _propagate_remote(self, key: int, version: Version, value: Any) -> None:
        """Lazy cross-group propagation (Eventual consistency path)."""
        if not self.remote_ids:
            return
        message = Message(MsgType.UPD, src=self.node_id,
                          op_id=self._next_op_id(), key=key, version=version,
                          value=value)

        def runner() -> Generator:
            yield self.sim.timeout(self.config.lazy_propagation_delay_ns)
            for dst in self.remote_ids:
                self._send(dst, message, lazy=True)
            self.remote_upds_sent += len(self.remote_ids)
            if self.tracer.enabled:
                self.tracer.emit(self.sim.now, "xdc_upd", node=self.node_id,
                                 key=key, version=version,
                                 remotes=len(self.remote_ids))

        self.sim.process(runner(), name=f"n{self.node_id}.xdc")

    def _write_invalidation(self, ctx: ClientContext, replica: KeyReplica,
                            version: Version, value: Any) -> Generator:
        self._propagate_remote(replica.key, version, value)
        yield from super()._write_invalidation(ctx, replica, version, value)

    def _write_update(self, ctx: ClientContext, replica: KeyReplica,
                      version: Version, value: Any) -> Generator:
        self._propagate_remote(replica.key, version, value)
        yield from super()._write_update(ctx, replica, version, value)
