"""Hybrid multi-datacenter cluster assembly (paper Section 9).

Builds N groups ("datacenters") of servers.  Within a group, nodes run
the configured strong DDP model over the low-latency local fabric; all
cross-group traffic is lazy UPD propagation over the (much slower)
inter-datacenter links.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.metrics import Metrics, Summary
from repro.cluster.config import ClusterConfig
from repro.core.model import DdpModel
from repro.hybrid.engine import HybridProtocolNode
from repro.memory.hierarchy import MemoryHierarchy
from repro.net.network import Network
from repro.recovery.log import NvmLog
from repro.sim.engine import Simulator
from repro.sim.rng import SeededStream
from repro.store import make_store
from repro.txn.manager import TxnTable
from repro.workload.client import Client
from repro.workload.ycsb import RequestStream, WorkloadSpec

__all__ = ["HybridCluster"]


class HybridCluster:
    """Datacenter groups running a strong model locally, Eventual across."""

    def __init__(self, model: DdpModel, groups: int = 2,
                 servers_per_group: int = 3,
                 cross_dc_round_trip_ns: float = 50_000.0,
                 config: Optional[ClusterConfig] = None,
                 workload: Optional[WorkloadSpec] = None):
        if groups < 1 or servers_per_group < 2:
            raise ValueError("need >= 1 group of >= 2 servers")
        self.model = model
        self.groups = groups
        self.servers_per_group = servers_per_group
        self.config = config or ClusterConfig(
            servers=groups * servers_per_group)
        self.sim = Simulator()
        self.rng = SeededStream(self.config.seed, "hybrid")
        self.metrics = Metrics()
        total = groups * servers_per_group
        local_one_way = self.config.network.one_way_ns
        cross_one_way = cross_dc_round_trip_ns / 2.0

        def one_way(src: int, dst: int) -> float:
            same_group = (src // servers_per_group) == (dst // servers_per_group)
            return local_one_way if same_group else cross_one_way

        self.network = Network(self.sim, self.config.network,
                               one_way_fn=one_way)
        self.txn_table = TxnTable()
        self.nvm_log = NvmLog(range(total))
        self.engines: List[HybridProtocolNode] = []
        self.memories: List[MemoryHierarchy] = []
        for node_id in range(total):
            group = node_id // servers_per_group
            local_peers = [n for n in range(group * servers_per_group,
                                            (group + 1) * servers_per_group)
                           if n != node_id]
            remote = [n for n in range(total)
                      if n // servers_per_group != group]
            memory = MemoryHierarchy(
                self.sim, self.rng.fork(f"mem{node_id}"),
                cores=self.config.cores_per_server,
                nvm_timing=self.config.nvm_timing,
                dram_timing=self.config.dram_timing,
                name=f"node{node_id}")
            nic = self.network.attach(node_id)
            store = (make_store(self.config.store_type)
                     if self.config.store_type else None)
            engine = HybridProtocolNode(
                self.sim, node_id, local_peers, self.network, nic, memory,
                model, self.metrics, config=self.config.protocol,
                txn_table=self.txn_table, store=store, nvm_log=self.nvm_log,
                remote_ids=remote)
            self.engines.append(engine)
            self.memories.append(memory)
        self.clients: List[Client] = []
        if workload is not None:
            self._build_clients(workload)

    def _build_clients(self, workload: WorkloadSpec) -> None:
        client_id = 0
        for engine in self.engines:
            for _ in range(self.config.clients_per_server):
                stream = RequestStream(workload,
                                       self.rng.fork(f"client{client_id}"))
                self.clients.append(Client(self.sim, client_id, engine,
                                           stream, self.metrics))
                client_id += 1

    def start(self) -> None:
        for engine in self.engines:
            engine.start()
        for client in self.clients:
            client.start()

    def run(self, duration_ns: float, warmup_ns: float = 0.0) -> Summary:
        self.start()
        if warmup_ns > 0:
            self.sim.run(until=warmup_ns)
        self.metrics.warmup_end_ns = self.sim.now
        self.sim.run(until=duration_ns)
        self.metrics.txn_conflicts = self.txn_table.conflicts
        return self.metrics.summarize(self.sim.now)

    def group_of(self, node_id: int) -> int:
        return node_id // self.servers_per_group
