"""Result-table formatting for benchmarks and examples.

The paper's figures group bars by consistency model with one bar per
persistency model, all normalized to <Linearizable, Synchronous>.
:func:`format_figure6_table` renders exactly that layout as text;
:func:`format_summary_table` renders arbitrary (label, Summary) rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.metrics import Summary
from repro.core.model import Consistency, DdpModel, Persistency

__all__ = ["format_summary_table", "format_figure6_table", "format_grid"]


def format_summary_table(rows: Iterable[Tuple[str, Summary]],
                         baseline: Optional[Summary] = None) -> str:
    """Render labeled summaries; with a baseline, add normalized columns."""
    lines = []
    header = (f"{'model':<40} {'thr(Mops/s)':>12} {'rd(ns)':>9} "
              f"{'wr(ns)':>9} {'p95rd':>9} {'p95wr':>9} {'msgs':>9}")
    if baseline is not None:
        header += f" {'thr(norm)':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for label, summary in rows:
        line = (f"{label:<40} {summary.throughput_ops_per_s / 1e6:>12.3f} "
                f"{summary.mean_read_ns:>9.0f} {summary.mean_write_ns:>9.0f} "
                f"{summary.p95_read_ns:>9.0f} {summary.p95_write_ns:>9.0f} "
                f"{summary.total_messages:>9d}")
        if baseline is not None:
            norm = summary.normalized_to(baseline)
            line += f" {norm['throughput']:>10.2f}"
        lines.append(line)
    return "\n".join(lines)


def format_grid(values: Dict[DdpModel, float], title: str,
                fmt: str = "{:.2f}") -> str:
    """Render a consistency x persistency grid of one metric, in the
    paper's Figure 6 layout (rows = consistency groups, columns =
    persistency models)."""
    consistencies = list(Consistency)
    persistencies = list(Persistency)
    lines = [title]
    header = f"{'':<14}" + "".join(
        f"{p.short_name:>15}" for p in persistencies)
    lines.append(header)
    for c in consistencies:
        cells = []
        for p in persistencies:
            value = values.get(DdpModel(c, p))
            cells.append(f"{fmt.format(value):>15}" if value is not None
                         else f"{'--':>15}")
        lines.append(f"{c.short_name:<14}" + "".join(cells))
    return "\n".join(lines)


def format_figure6_table(summaries: Dict[DdpModel, Summary],
                         baseline_model: Optional[DdpModel] = None) -> str:
    """Render all six Figure 6 panels, normalized like the paper."""
    baseline_model = baseline_model or DdpModel(Consistency.LINEARIZABLE,
                                                Persistency.SYNCHRONOUS)
    baseline = summaries[baseline_model]
    panels = [
        ("(a) Throughput (normalized)", "throughput"),
        ("(b) Mean Read Latency (normalized)", "mean_read"),
        ("(c) Mean Write Latency (normalized)", "mean_write"),
        ("(d) Mean Latency (normalized)", "mean_access"),
        ("(e) 95th Percentile Read Latency (normalized)", "p95_read"),
        ("(f) 95th Percentile Write Latency (normalized)", "p95_write"),
    ]
    sections: List[str] = []
    for title, metric in panels:
        values = {model: summary.normalized_to(baseline)[metric]
                  for model, summary in summaries.items()}
        sections.append(format_grid(values, title))
    return "\n\n".join(sections)
