"""Analysis: metrics collection, result tables, validation checkers,
latency histograms, and Visibility/Durability Point measurement."""

from repro.analysis.histogram import LatencyHistogram
from repro.analysis.linearizability import HistoryOp, is_linearizable
from repro.analysis.metrics import Metrics, OpRecord, Summary
from repro.analysis.points import PointsSummary, PointsTracker
from repro.analysis.report import (
    format_figure6_table,
    format_grid,
    format_summary_table,
)

__all__ = [
    "HistoryOp",
    "LatencyHistogram",
    "Metrics",
    "OpRecord",
    "PointsSummary",
    "PointsTracker",
    "Summary",
    "format_figure6_table",
    "format_grid",
    "format_summary_table",
    "is_linearizable",
]
