"""A small linearizability checker (Wing & Gong style).

Used by the validation tests: histories of timed read/write operations
on a register are checked for the existence of a legal linearization —
a total order consistent with the real-time order (an operation that
responded before another was invoked must precede it) in which every
read returns the most recent preceding write.

The search is exponential in the worst case, as linearizability checking
is NP-hard; the tests keep histories small (tens of operations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Set

__all__ = ["HistoryOp", "is_linearizable"]


@dataclass(frozen=True)
class HistoryOp:
    """One completed operation in a history."""

    op_type: str        # "read" | "write"
    value: Any          # written value, or value returned by the read
    invoke: float
    respond: float

    def __post_init__(self):
        if self.op_type not in ("read", "write"):
            raise ValueError(f"bad op_type {self.op_type!r}")
        if self.respond < self.invoke:
            raise ValueError("response before invocation")


def is_linearizable(history: Sequence[HistoryOp],
                    initial_value: Any = None) -> bool:
    """True iff ``history`` has a legal linearization for one register."""
    ops = list(history)
    n = len(ops)
    if n == 0:
        return True

    # precedes[i] = set of ops that must come before i (real-time order).
    precedes: List[Set[int]] = [set() for _ in range(n)]
    for i, earlier in enumerate(ops):
        for j, later in enumerate(ops):
            if i != j and earlier.respond < later.invoke:
                precedes[j].add(i)

    chosen: List[int] = []
    used = [False] * n

    def minimal_candidates() -> List[int]:
        """Ops whose real-time predecessors have all been placed."""
        return [i for i in range(n)
                if not used[i] and all(used[p] for p in precedes[i])]

    def current_value() -> Any:
        for index in reversed(chosen):
            if ops[index].op_type == "write":
                return ops[index].value
        return initial_value

    def search() -> bool:
        if len(chosen) == n:
            return True
        for candidate in minimal_candidates():
            op = ops[candidate]
            if op.op_type == "read" and op.value != current_value():
                continue
            used[candidate] = True
            chosen.append(candidate)
            if search():
                return True
            chosen.pop()
            used[candidate] = False
        return False

    return search()
