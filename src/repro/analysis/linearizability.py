"""A linearizability checker (Wing & Gong search, Lowe-style memoized).

Histories of timed read/write operations on a register are checked for
the existence of a legal linearization — a total order consistent with
the real-time order (an operation that responded before another was
invoked must precede it) in which every read returns the most recent
preceding write.

The search is exponential in the worst case (linearizability checking
is NP-hard), but two standard upgrades make real histories tractable:

* **memoized visited states** (Lowe's just-in-time linearizability):
  the search state is fully described by (set of linearized ops,
  current register value); a state proven a dead end once is never
  re-explored.  Reordering two independent ops reaches the same state,
  so this collapses the factorial blow-up on concurrent histories.
* **pending operations**: an op with ``respond=None`` was severed by a
  crash (or cut off at the end of the run) and *may or may not* have
  taken effect.  A pending write may be linearized anywhere after its
  invocation or discarded entirely; a pending read constrains nothing
  and is dropped up front.

Multi-key histories should be partitioned per key before calling (the
P-compositionality of linearizability: a history is linearizable iff
each per-key sub-history is — see :mod:`repro.audit.checkers`, which
does exactly that).

``explain=True`` (or :func:`check_linearizable`) returns a
:class:`LinearizationResult` carrying a *witness*: a minimal violating
sub-history, shrunk from the failing input, instead of a bare bool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

__all__ = ["HistoryOp", "LinearizationResult", "is_linearizable",
           "check_linearizable"]


@dataclass(frozen=True)
class HistoryOp:
    """One operation in a history.

    ``respond=None`` marks a *pending* operation — invoked but never
    acknowledged (the client was severed by a crash, or the run ended
    first).  A pending write may or may not have taken effect; a
    pending read is unconstrained.
    """

    op_type: str        # "read" | "write"
    value: Any          # written value, or value returned by the read
    invoke: float
    respond: Optional[float]

    def __post_init__(self):
        if self.op_type not in ("read", "write"):
            raise ValueError(f"bad op_type {self.op_type!r}")
        if self.respond is not None and self.respond < self.invoke:
            raise ValueError("response before invocation")

    @property
    def pending(self) -> bool:
        return self.respond is None


@dataclass
class LinearizationResult:
    """Outcome of a linearizability check.

    ``witness`` is only populated on failure: a minimal sub-history of
    the input that is itself non-linearizable (every op in it matters —
    removing any one would make the rest linearizable, up to the shrink
    budget).  ``witness_indices`` are positions in the *original*
    history.  ``order`` is a legal linearization (indices of the placed
    ops, discarded pending writes omitted) on success.
    """

    ok: bool
    order: Optional[List[int]] = None
    witness: List[HistoryOp] = field(default_factory=list)
    witness_indices: List[int] = field(default_factory=list)
    states_explored: int = 0
    memo_hits: int = 0

    def __bool__(self) -> bool:
        return self.ok


# Shrinking re-runs the search once per candidate op; past this many ops
# the witness is reported unshrunk (still a true violation, just not
# minimal).
_SHRINK_CAP = 128


def is_linearizable(history: Sequence[HistoryOp], initial_value: Any = None,
                    explain: bool = False):
    """Check one register history.

    Returns a bool by default; with ``explain=True`` returns the full
    :class:`LinearizationResult` (violating minimal sub-history, search
    statistics) instead.
    """
    result = check_linearizable(history, initial_value)
    return result if explain else result.ok


def check_linearizable(history: Sequence[HistoryOp],
                       initial_value: Any = None,
                       max_states: Optional[int] = None,
                       shrink: bool = True) -> LinearizationResult:
    """Full-result form of :func:`is_linearizable`.

    ``max_states`` bounds the number of search states explored (summed
    over the main search; the shrink phase reuses the same budget per
    re-check).  A blown budget counts as a violation — the checker
    refuses to claim linearizability it could not prove — with the
    unshrunk history as witness.
    """
    ops = list(history)
    keep = [i for i, op in enumerate(ops)
            if not (op.pending and op.op_type == "read")]
    result, stats = _search([ops[i] for i in keep], initial_value, max_states)
    states, hits = stats
    if result is not None:
        return LinearizationResult(ok=True,
                                   order=[keep[i] for i in result],
                                   states_explored=states, memo_hits=hits)
    witness_local = list(range(len(keep)))
    if shrink and len(keep) <= _SHRINK_CAP:
        witness_local = _shrink([ops[i] for i in keep], initial_value,
                                max_states)
    witness_indices = [keep[i] for i in witness_local]
    return LinearizationResult(
        ok=False,
        witness=[ops[i] for i in witness_indices],
        witness_indices=witness_indices,
        states_explored=states, memo_hits=hits)


# ---------------------------------------------------------------------------
# the memoized search
# ---------------------------------------------------------------------------

def _search(ops: List[HistoryOp], initial_value: Any,
            max_states: Optional[int]):
    """Find a linearization of ``ops`` (pending reads already removed).

    Returns ``(order, (states, memo_hits))`` where ``order`` is a list
    of local indices of the *placed* ops (discarded pending writes
    excluded) or None when no linearization exists (or the state budget
    blew — the conservative answer).
    """
    n = len(ops)
    if n == 0:
        return [], (0, 0)

    # precedes[i] = ops that must be linearized before i (real-time
    # order).  Pending ops never precede anything.
    precedes: List[List[int]] = [[] for _ in range(n)]
    for i, earlier in enumerate(ops):
        if earlier.respond is None:
            continue
        for j, later in enumerate(ops):
            if i != j and earlier.respond < later.invoke:
                precedes[j].append(i)

    full_mask = (1 << n) - 1
    bit = [1 << i for i in range(n)]
    pred_mask = [0] * n
    for j in range(n):
        for i in precedes[j]:
            pred_mask[j] |= bit[i]

    # Candidate ordering: completed ops before pending ones, then by
    # response/invocation time.  On clean histories this walks straight
    # down the real schedule, so the search is near-linear.
    rank = sorted(range(n), key=lambda i: (
        ops[i].respond is None,
        ops[i].respond if ops[i].respond is not None else ops[i].invoke,
        ops[i].invoke))

    visited = set()
    states = 0
    hits = 0

    # Iterative DFS; each frame is (done_mask, value, chosen, move_iter)
    # where chosen is the action list to rebuild the order on success.
    def moves(done_mask: int, value: Any):
        for i in rank:
            b = bit[i]
            if done_mask & b or (pred_mask[i] & ~done_mask):
                continue
            op = ops[i]
            if op.op_type == "read":
                if op.value == value:
                    yield (i, "place", value)
            else:
                yield (i, "place", op.value)
                if op.pending:
                    # A severed write may never have taken effect.
                    yield (i, "discard", value)

    stack = [(0, initial_value, moves(0, initial_value))]
    path: List[Tuple[int, str]] = []
    while stack:
        done_mask, value, it = stack[-1]
        if done_mask == full_mask:
            order = [i for i, action in path if action == "place"]
            return order, (states, hits)
        advanced = False
        for i, action, new_value in it:
            new_mask = done_mask | bit[i]
            key = (new_mask, new_value)
            if key in visited:
                hits += 1
                continue
            states += 1
            if max_states is not None and states > max_states:
                return None, (states, hits)
            visited.add(key)
            path.append((i, action))
            stack.append((new_mask, new_value, moves(new_mask, new_value)))
            advanced = True
            break
        if not advanced:
            stack.pop()
            if path:
                path.pop()
    return None, (states, hits)


def _shrink(ops: List[HistoryOp], initial_value: Any,
            max_states: Optional[int]) -> List[int]:
    """Greedy minimization: drop every op whose removal keeps the
    history non-linearizable.  Returns surviving local indices.

    The shrunk history is kept *well-formed* — a write is never removed
    while a read of its value survives — so the witness shows the
    actual anomaly (e.g. the stale read next to the write it missed)
    rather than degenerating into a phantom read.
    """
    def well_formed(indices: List[int]) -> bool:
        written = {ops[i].value for i in indices
                   if ops[i].op_type == "write"}
        return all(ops[i].value == initial_value or ops[i].value in written
                   for i in indices if ops[i].op_type == "read")

    alive = list(range(len(ops)))
    changed = True
    while changed:
        changed = False
        for candidate in list(alive):
            trial = [i for i in alive if i != candidate]
            if not well_formed(trial):
                continue
            found, _stats = _search([ops[i] for i in trial], initial_value,
                                    max_states)
            if found is None:
                alive = trial
                changed = True
    return alive
