"""Read-staleness measurement.

Consistency models trade freshness for performance (Section 2.1: "weak
models permit reads to different replicas to return inconsistent,
sometimes stale versions").  The :class:`VersionBoard` is measurement
infrastructure (like the transaction table, it sits outside the
protocol): every write registers its version at issue time, and every
read reports which version it returned; the board scores how many
versions behind the global latest the read was.

Under Linearizable consistency the distribution is a point mass at 0;
Eventual consistency and <Causal/Eventual, Synchronous> (whose reads
return the *persisted* version) show real staleness tails.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.replica import Version, ZERO_VERSION

__all__ = ["VersionBoard", "StalenessSummary"]


class StalenessSummary:
    """Distribution of versions-behind across all scored reads."""

    def __init__(self, samples: List[int]):
        self.samples = samples

    @property
    def reads_scored(self) -> int:
        return len(self.samples)

    @property
    def stale_reads(self) -> int:
        return sum(1 for s in self.samples if s > 0)

    @property
    def stale_fraction(self) -> float:
        return self.stale_reads / max(self.reads_scored, 1)

    @property
    def mean_versions_behind(self) -> float:
        return (sum(self.samples) / len(self.samples)
                if self.samples else float("nan"))

    @property
    def max_versions_behind(self) -> int:
        return max(self.samples) if self.samples else 0


class VersionBoard:
    """Global registry of the latest issued version per key."""

    def __init__(self):
        self._latest: Dict[int, Version] = {}
        self._issue_counts: Dict[int, int] = {}
        self._samples: List[int] = []

    # -- write side ---------------------------------------------------------------

    def note_write(self, key: int, version: Version) -> None:
        current = self._latest.get(key, ZERO_VERSION)
        if version > current:
            self._latest[key] = version
        self._issue_counts[key] = self._issue_counts.get(key, 0) + 1

    # -- read side -----------------------------------------------------------------

    def score_read(self, key: int, version: Version) -> int:
        """Record a read of ``key`` at ``version``; return its staleness
        in whole versions behind the latest issued write."""
        latest = self._latest.get(key, ZERO_VERSION)
        behind = max(0, latest[0] - version[0])
        self._samples.append(behind)
        return behind

    def latest(self, key: int) -> Version:
        return self._latest.get(key, ZERO_VERSION)

    def summarize(self) -> StalenessSummary:
        return StalenessSummary(list(self._samples))
