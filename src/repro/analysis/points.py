"""Measuring Visibility Points and Durability Points directly.

The paper's whole framework rests on two per-update instants (Section 4):

* **Visibility Point (VP)** — when the update becomes available for
  consumption at a replica node (set by the consistency model).
* **Durability Point (DP)** — when the update is durable and cannot be
  wiped out by a failure (set by the persistency model).

:class:`PointsTracker` records, for every write, the time it was issued,
the times it was applied at each node, and the times it was persisted at
each node; from those it derives the distribution of *visibility lag*
(issue -> applied at all replicas) and *durability lag* (issue ->
persisted at all replicas) per DDP model — making Table 2's qualitative
"when" column a measurable quantity.

The tracker plugs into the protocol engine through the standard tracer
interface (:meth:`emit` with categories ``write_issue`` / ``apply`` /
``persist``), so enabling it costs nothing when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import _percentile as _sorted_percentile

__all__ = ["PointsTracker", "PointsSummary"]


@dataclass
class _WritePoints:
    issued_at: float
    applied_at: Dict[int, float] = field(default_factory=dict)
    persisted_at: Dict[int, float] = field(default_factory=dict)


def _percentile(values: List[float], fraction: float) -> float:
    return _sorted_percentile(sorted(values), fraction)


@dataclass(frozen=True)
class PointsSummary:
    """Visibility/durability lag distributions for one run."""

    writes_tracked: int
    fully_visible: int
    fully_durable: int
    mean_visibility_lag_ns: float
    p95_visibility_lag_ns: float
    mean_durability_lag_ns: float
    p95_durability_lag_ns: float

    @property
    def visibility_completion_fraction(self) -> float:
        return self.fully_visible / max(self.writes_tracked, 1)

    @property
    def durability_completion_fraction(self) -> float:
        return self.fully_durable / max(self.writes_tracked, 1)


class PointsTracker:
    """A tracer that derives VP/DP lags from engine events.

    Engines call ``emit(time, category, node, **details)``; the tracker
    consumes three categories and ignores the rest:

    * ``write_issue``: a coordinator accepted a client write
      (details: key, version).
    * ``apply``: a node installed a version into its volatile hierarchy.
    * ``persist``: a node made a version durable.
    """

    enabled = True

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self._writes: Dict[Tuple[int, Tuple[int, int]], _WritePoints] = {}

    # -- tracer interface ---------------------------------------------------------

    def emit(self, time: float, category: str, node: Optional[int] = None,
             **details) -> None:
        if category == "write_issue":
            key = (details["key"], details["version"])
            self._writes.setdefault(key, _WritePoints(issued_at=time))
            # The coordinator's own apply happens as part of the issue.
            return
        if category not in ("apply", "persist"):
            return
        key = (details["key"], details["version"])
        record = self._writes.get(key)
        if record is None:
            return  # an update issued before tracking started
        slot = record.applied_at if category == "apply" else record.persisted_at
        slot.setdefault(node, time)

    # -- derivation --------------------------------------------------------------------

    def _lags(self, fully_reached) -> List[float]:
        lags = []
        for record in self._writes.values():
            times = fully_reached(record)
            if len(times) == self.num_nodes:
                lags.append(max(times.values()) - record.issued_at)
        return lags

    def window_lags(self, window_ns: float) -> Dict[int, List[Dict[str, float]]]:
        """Per-node windowed VP-lag / DP-lag series.

        Each write contributes, per node, the lag from its issue to the
        node's apply (VP) and persist (DP); samples are bucketed by the
        write's *issue* window.  Returns ``node -> [window dict]`` with
        aligned windows across nodes, each dict carrying mean and p99
        lags plus sample counts (NaN means no sample landed there).
        """
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive: {window_ns}")
        # node -> window index -> (vp samples, dp samples)
        samples: Dict[int, Dict[int, Tuple[List[float], List[float]]]] = {}
        last_window = -1
        for record in self._writes.values():
            index = int(record.issued_at // window_ns)
            last_window = max(last_window, index)
            for node, applied in record.applied_at.items():
                vp, _dp = samples.setdefault(node, {}).setdefault(
                    index, ([], []))
                vp.append(applied - record.issued_at)
            for node, persisted in record.persisted_at.items():
                _vp, dp = samples.setdefault(node, {}).setdefault(
                    index, ([], []))
                dp.append(persisted - record.issued_at)
        series: Dict[int, List[Dict[str, float]]] = {}
        for node in sorted(samples):
            rows = []
            for index in range(last_window + 1):
                vp, dp = samples[node].get(index, ((), ()))
                rows.append({
                    "start_ns": index * window_ns,
                    "end_ns": (index + 1) * window_ns,
                    "vp_samples": len(vp),
                    "vp_mean_ns": (sum(vp) / len(vp)) if vp else float("nan"),
                    "vp_p99_ns": _percentile(list(vp), 0.99),
                    "dp_samples": len(dp),
                    "dp_mean_ns": (sum(dp) / len(dp)) if dp else float("nan"),
                    "dp_p99_ns": _percentile(list(dp), 0.99),
                })
            series[node] = rows
        return series

    def summarize(self) -> PointsSummary:
        visibility = self._lags(lambda r: r.applied_at)
        durability = self._lags(lambda r: r.persisted_at)
        mean = lambda xs: sum(xs) / len(xs) if xs else float("nan")
        return PointsSummary(
            writes_tracked=len(self._writes),
            fully_visible=len(visibility),
            fully_durable=len(durability),
            mean_visibility_lag_ns=mean(visibility),
            p95_visibility_lag_ns=_percentile(visibility, 0.95),
            mean_durability_lag_ns=mean(durability),
            p95_durability_lag_ns=_percentile(durability, 0.95),
        )
