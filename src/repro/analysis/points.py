"""Measuring Visibility Points and Durability Points directly.

The paper's whole framework rests on two per-update instants (Section 4):

* **Visibility Point (VP)** — when the update becomes available for
  consumption at a replica node (set by the consistency model).
* **Durability Point (DP)** — when the update is durable and cannot be
  wiped out by a failure (set by the persistency model).

:class:`PointsTracker` records, for every write, the time it was issued,
the times it was applied at each node, and the times it was persisted at
each node; from those it derives the distribution of *visibility lag*
(issue -> applied at all replicas) and *durability lag* (issue ->
persisted at all replicas) per DDP model — making Table 2's qualitative
"when" column a measurable quantity.

The tracker plugs into the protocol engine through the standard tracer
interface (:meth:`emit` with categories ``write_issue`` / ``apply`` /
``persist``), so enabling it costs nothing when disabled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["PointsTracker", "PointsSummary"]


@dataclass
class _WritePoints:
    issued_at: float
    applied_at: Dict[int, float] = field(default_factory=dict)
    persisted_at: Dict[int, float] = field(default_factory=dict)


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class PointsSummary:
    """Visibility/durability lag distributions for one run."""

    writes_tracked: int
    fully_visible: int
    fully_durable: int
    mean_visibility_lag_ns: float
    p95_visibility_lag_ns: float
    mean_durability_lag_ns: float
    p95_durability_lag_ns: float

    @property
    def visibility_completion_fraction(self) -> float:
        return self.fully_visible / max(self.writes_tracked, 1)

    @property
    def durability_completion_fraction(self) -> float:
        return self.fully_durable / max(self.writes_tracked, 1)


class PointsTracker:
    """A tracer that derives VP/DP lags from engine events.

    Engines call ``emit(time, category, node, **details)``; the tracker
    consumes three categories and ignores the rest:

    * ``write_issue``: a coordinator accepted a client write
      (details: key, version).
    * ``apply``: a node installed a version into its volatile hierarchy.
    * ``persist``: a node made a version durable.
    """

    enabled = True

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self._writes: Dict[Tuple[int, Tuple[int, int]], _WritePoints] = {}

    # -- tracer interface ---------------------------------------------------------

    def emit(self, time: float, category: str, node: Optional[int] = None,
             **details) -> None:
        if category == "write_issue":
            key = (details["key"], details["version"])
            self._writes.setdefault(key, _WritePoints(issued_at=time))
            # The coordinator's own apply happens as part of the issue.
            return
        if category not in ("apply", "persist"):
            return
        key = (details["key"], details["version"])
        record = self._writes.get(key)
        if record is None:
            return  # an update issued before tracking started
        slot = record.applied_at if category == "apply" else record.persisted_at
        slot.setdefault(node, time)

    # -- derivation --------------------------------------------------------------------

    def _lags(self, fully_reached) -> List[float]:
        lags = []
        for record in self._writes.values():
            times = fully_reached(record)
            if len(times) == self.num_nodes:
                lags.append(max(times.values()) - record.issued_at)
        return lags

    def summarize(self) -> PointsSummary:
        visibility = self._lags(lambda r: r.applied_at)
        durability = self._lags(lambda r: r.persisted_at)
        mean = lambda xs: sum(xs) / len(xs) if xs else float("nan")
        return PointsSummary(
            writes_tracked=len(self._writes),
            fully_visible=len(visibility),
            fully_durable=len(durability),
            mean_visibility_lag_ns=mean(visibility),
            p95_visibility_lag_ns=_percentile(visibility, 0.95),
            mean_durability_lag_ns=mean(durability),
            p95_durability_lag_ns=_percentile(durability, 0.95),
        )
