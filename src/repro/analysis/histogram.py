"""Log-bucketed latency histogram (HDR-histogram style).

The metrics layer keeps raw per-op records for exactness, but long
sweeps and the monitoring hooks need a bounded-memory sketch.  This is a
classic base-2 log-linear histogram: values are bucketed by (exponent,
linear sub-bucket), giving a configurable relative error (1/2^precision)
across the full range with O(buckets) memory, exact counts, and
mergeability.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Tuple

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Fixed-relative-error histogram for non-negative values.

    ``precision`` linear sub-buckets per power of two bound the relative
    quantile error by ``1 / 2**precision``.
    """

    def __init__(self, precision: int = 5):
        if not 1 <= precision <= 12:
            raise ValueError(f"precision out of range: {precision}")
        self.precision = precision
        self._sub_buckets = 1 << precision
        self._counts: Dict[int, int] = {}
        self._total = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0

    # -- recording -----------------------------------------------------------------

    def _bucket_index(self, value: float) -> int:
        if value < 1.0:
            return 0
        exponent = int(value).bit_length() - 1
        base = 1 << exponent
        sub = int((value - base) * self._sub_buckets / base)
        sub = min(sub, self._sub_buckets - 1)
        return (exponent + 1) * self._sub_buckets + sub

    def _bucket_bounds(self, index: int) -> Tuple[float, float]:
        if index == 0:
            return (0.0, 1.0)
        exponent = index // self._sub_buckets - 1
        sub = index % self._sub_buckets
        base = float(1 << exponent)
        width = base / self._sub_buckets
        low = base + sub * width
        return (low, low + width)

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative latency: {value}")
        index = self._bucket_index(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        self._total += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def merge(self, other: LatencyHistogram) -> None:
        """Fold another histogram (same precision) into this one."""
        if other.precision != self.precision:
            raise ValueError("precision mismatch")
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self._total += other._total
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- queries ------------------------------------------------------------------------

    def __len__(self) -> int:
        return self._total

    @property
    def count(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        return self._sum / self._total if self._total else float("nan")

    @property
    def min(self) -> float:
        return self._min if self._total else float("nan")

    @property
    def max(self) -> float:
        return self._max if self._total else float("nan")

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile (bucket midpoint), e.g. 0.95."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        if self._total == 0:
            return float("nan")
        target = max(1, math.ceil(fraction * self._total))
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= target:
                low, high = self._bucket_bounds(index)
                return min(max((low + high) / 2.0, self._min), self._max)
        return self._max  # pragma: no cover - unreachable

    def buckets(self) -> Iterator[Tuple[float, float, int]]:
        """(low, high, count) for every populated bucket, ascending."""
        for index in sorted(self._counts):
            low, high = self._bucket_bounds(index)
            yield (low, high, self._counts[index])

    def render(self, width: int = 50) -> str:
        """ASCII bar rendering (for reports and debugging)."""
        if not self._total:
            return "(empty histogram)"
        peak = max(self._counts.values())
        lines = []
        for low, high, count in self.buckets():
            bar = "#" * max(1, int(count * width / peak))
            lines.append(f"[{low:>12.0f}, {high:>12.0f}) {count:>8} {bar}")
        return "\n".join(lines)
