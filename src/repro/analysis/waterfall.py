"""Critical-path latency attribution for update journeys.

Given the :class:`~repro.obs.journey.UpdateJourney` records a run
collected, this module answers *why* each update's Visibility Point and
Durability Point arrived when they did.  The causal chain to the
last-reaching replica is cut at the journey's recorded milestones
(client issue -> version allocation -> INV/UPD injection -> delivery ->
apply / persist enqueue -> NVM service) and every segment is assigned
to exactly one of five buckets:

* ``network`` — wire time: queue-pair wait, serialization, propagation
  (plus the leader variant's forwarding hop);
* ``coord_wait`` — deliberate coordination waits: write stalls on
  transient keys, lazy propagation/persist delays, causal buffering,
  scope-end and ENDX persist placement, leader worker queueing;
* ``nvm_queue`` — persist enqueue to media-write start: the write-
  combining pending slot plus NVM bank queueing (the paper's "NVM
  pressure");
* ``device`` — NVM media service time of the completing write;
* ``compute`` — CPU and volatile-memory work (request processing,
  store walks, message handling, DDIO/cache/DRAM accesses).

Because the buckets partition consecutive timeline segments, they sum
to the end-to-end VP / DP latency by construction — the *conservation
invariant* the test suite asserts for every DDP model.

:func:`aggregate_journeys` rolls per-update decompositions into a
:class:`WaterfallReport` (whole run, per coordinator node, and per
key-hotness class), :func:`format_waterfall` renders it as a text
waterfall, and :func:`waterfall_json` shapes it for the
``repro.run_report/6`` artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.metrics import _percentile
from repro.obs.journey import UpdateJourney

__all__ = ["BUCKETS", "PathDecomposition", "JourneyBreakdown",
           "WaterfallAggregate", "WaterfallReport", "decompose",
           "aggregate_journeys", "format_waterfall", "waterfall_json"]

BUCKETS: Tuple[str, ...] = ("network", "coord_wait", "nvm_queue",
                            "device", "compute")

_WAIT_TRIGGERS = frozenset({"lazy", "scope", "endx"})
"""Persist triggers whose placement delay is a coordination choice
(waiting for a timer, a Persist call, or an ENDX round) rather than
work; ``inline``/``eager``/``strict`` persists start as soon as the
handler reaches them, so their placement gap is compute."""

HOTNESS_CLASSES: Tuple[str, ...] = ("hot", "warm", "cold")


@dataclass(frozen=True)
class PathDecomposition:
    """One update's latency split along its critical path."""

    latency_ns: float
    node: int
    """The replica the critical path runs through (last to reach the
    point)."""
    buckets: Dict[str, float]

    @property
    def total_ns(self) -> float:
        return sum(self.buckets.values())


@dataclass(frozen=True)
class JourneyBreakdown:
    """VP and DP decompositions for one journey (None = point not yet
    reached at every replica when the run ended, or absorbed by write
    combining)."""

    journey: UpdateJourney
    vp: Optional[PathDecomposition]
    dp: Optional[PathDecomposition]


def _new_buckets() -> Dict[str, float]:
    return {bucket: 0.0 for bucket in BUCKETS}


def _prefix(journey: UpdateJourney, target: int,
            fallback_arrival: float) -> Tuple[Dict[str, float], float]:
    """Buckets from client issue up to the update's arrival at
    ``target`` (its INV/UPD delivery, or version allocation when the
    target is the coordinator itself).  Returns (buckets, arrival)."""
    buckets = _new_buckets()
    seg = journey.issue_ns - journey.client_issue_ns
    stall = min(journey.stall_ns, seg)
    fwd_net = min(journey.fwd_net_ns, seg - stall)
    fwd_wait = min(journey.fwd_wait_ns, seg - stall - fwd_net)
    buckets["coord_wait"] += stall + fwd_wait
    buckets["network"] += fwd_net
    buckets["compute"] += seg - stall - fwd_net - fwd_wait
    if target == journey.coordinator:
        return buckets, journey.issue_ns
    arrival = journey.recvs.get(target, fallback_arrival)
    send = journey.sends.get(target)
    if send is None or send > arrival:
        # No injection record (e.g. a pruned trace): the whole gap is
        # attributed to the wire rather than silently dropped.
        buckets["network"] += arrival - journey.issue_ns
    else:
        seg_send = send - journey.issue_ns
        if target in journey.lazy_dsts:
            buckets["coord_wait"] += seg_send
        else:
            buckets["compute"] += seg_send
        buckets["network"] += arrival - send
    return buckets, arrival


def decompose_vp(journey: UpdateJourney,
                 num_nodes: int) -> Optional[PathDecomposition]:
    """Split the end-to-end visibility latency along the critical path
    to the last-applying replica."""
    latency = journey.vp_ns(num_nodes)
    if latency is None:
        return None
    node = journey.vp_node
    applied = journey.applies[node]
    buckets, arrival = _prefix(journey, node, applied)
    seg = max(applied - arrival, 0.0)
    wait = min(journey.buffer_wait_ns.get(node, 0.0), seg)
    buckets["coord_wait"] += wait
    buckets["compute"] += seg - wait
    return PathDecomposition(latency, node, buckets)


def decompose_dp(journey: UpdateJourney,
                 num_nodes: int) -> Optional[PathDecomposition]:
    """Split the end-to-end durability latency along the critical path
    to the last-persisting replica."""
    latency = journey.dp_ns(num_nodes)
    if latency is None:
        return None
    node = journey.dp_node
    durable = journey.persists[node]
    issue = min(journey.persist_issues.get(node, durable), durable)
    buckets, arrival = _prefix(journey, node, issue)
    issue = max(issue, arrival)
    seg = issue - arrival
    wait = min(journey.buffer_wait_ns.get(node, 0.0), seg)
    buckets["coord_wait"] += wait
    trigger = journey.persist_triggers.get(node, "inline")
    placement = "coord_wait" if trigger in _WAIT_TRIGGERS else "compute"
    buckets[placement] += seg - wait
    tail = durable - issue
    device = min(journey.device_ns.get(node, 0.0), tail)
    buckets["device"] += device
    buckets["nvm_queue"] += tail - device
    return PathDecomposition(latency, node, buckets)


def decompose(journey: UpdateJourney, num_nodes: int) -> JourneyBreakdown:
    return JourneyBreakdown(journey, decompose_vp(journey, num_nodes),
                            decompose_dp(journey, num_nodes))


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WaterfallAggregate:
    """Mean bucket decomposition over a set of updates."""

    count: int
    mean_latency_ns: float
    buckets_ns: Dict[str, float]
    """Mean nanoseconds per bucket (sums to ``mean_latency_ns``)."""

    def fraction(self, bucket: str) -> float:
        if self.mean_latency_ns <= 0:
            return 0.0
        return self.buckets_ns[bucket] / self.mean_latency_ns


class _Accumulator:
    def __init__(self) -> None:
        self.count = 0
        self.latency_sum = 0.0
        self.bucket_sums = _new_buckets()

    def add(self, path: PathDecomposition) -> None:
        self.count += 1
        self.latency_sum += path.latency_ns
        for bucket, value in path.buckets.items():
            self.bucket_sums[bucket] += value

    def result(self) -> Optional[WaterfallAggregate]:
        if self.count == 0:
            return None
        return WaterfallAggregate(
            count=self.count,
            mean_latency_ns=self.latency_sum / self.count,
            buckets_ns={bucket: total / self.count
                        for bucket, total in self.bucket_sums.items()})


@dataclass(frozen=True)
class WaterfallReport:
    """Aggregated critical-path attribution for one run."""

    label: str
    num_nodes: int
    journeys: int
    vp: Optional[WaterfallAggregate]
    dp: Optional[WaterfallAggregate]
    vp_incomplete: int
    dp_incomplete: int
    by_node: Dict[int, Dict[str, Optional[WaterfallAggregate]]]
    """Coordinator node -> {"vp": ..., "dp": ...}."""
    by_hotness: Dict[str, Dict[str, Optional[WaterfallAggregate]]]
    """Key-hotness class ("hot"/"warm"/"cold") -> {"vp": ..., "dp": ...}."""
    slowest: List[JourneyBreakdown]
    """The slowest-N updates (by DP latency, VP as tiebreak), each with
    its full per-update decomposition."""
    dropped: int = 0


def _hotness_classes(journeys: Sequence[UpdateJourney]) -> Dict[int, str]:
    """Classify keys by how often they were written in this run: the
    top decile of per-key write counts is ``hot``, the bottom half
    ``cold``, the rest ``warm``."""
    counts: Dict[int, int] = {}
    for journey in journeys:
        counts[journey.key] = counts.get(journey.key, 0) + 1
    if not counts:
        return {}
    ordered = sorted(counts.values())
    hot_floor = _percentile(ordered, 0.90)
    cold_ceil = _percentile(ordered, 0.50)
    classes: Dict[int, str] = {}
    for key, count in counts.items():
        if count >= hot_floor and count > cold_ceil:
            classes[key] = "hot"
        elif count <= cold_ceil:
            classes[key] = "cold"
        else:
            classes[key] = "warm"
    return classes


def aggregate_journeys(journeys: Iterable[UpdateJourney], num_nodes: int,
                       label: str = "", slowest: int = 5,
                       dropped: int = 0) -> WaterfallReport:
    """Decompose every journey and roll the results up."""
    journeys = list(journeys)
    hotness = _hotness_classes(journeys)
    overall = {"vp": _Accumulator(), "dp": _Accumulator()}
    by_node: Dict[int, Dict[str, _Accumulator]] = {}
    by_hot: Dict[str, Dict[str, _Accumulator]] = {
        cls: {"vp": _Accumulator(), "dp": _Accumulator()}
        for cls in HOTNESS_CLASSES}
    breakdowns: List[JourneyBreakdown] = []
    vp_incomplete = dp_incomplete = 0
    for journey in journeys:
        breakdown = decompose(journey, num_nodes)
        breakdowns.append(breakdown)
        node_acc = by_node.setdefault(
            journey.coordinator, {"vp": _Accumulator(), "dp": _Accumulator()})
        hot_acc = by_hot[hotness[journey.key]]
        for point in ("vp", "dp"):
            path = getattr(breakdown, point)
            if path is None:
                if point == "vp":
                    vp_incomplete += 1
                else:
                    dp_incomplete += 1
                continue
            overall[point].add(path)
            node_acc[point].add(path)
            hot_acc[point].add(path)
    ranked = sorted(
        (b for b in breakdowns if b.vp is not None or b.dp is not None),
        key=lambda b: (-(b.dp.latency_ns if b.dp else 0.0),
                       -(b.vp.latency_ns if b.vp else 0.0)))
    return WaterfallReport(
        label=label, num_nodes=num_nodes, journeys=len(journeys),
        vp=overall["vp"].result(), dp=overall["dp"].result(),
        vp_incomplete=vp_incomplete, dp_incomplete=dp_incomplete,
        by_node={node: {p: acc.result() for p, acc in accs.items()}
                 for node, accs in sorted(by_node.items())},
        by_hotness={cls: {p: acc.result() for p, acc in accs.items()}
                    for cls, accs in by_hot.items()
                    if any(acc.count for acc in accs.values())},
        slowest=ranked[:max(slowest, 0)], dropped=dropped)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

_BAR_WIDTH = 24


def _bucket_line(name: str, value_ns: float, total_ns: float) -> str:
    fraction = value_ns / total_ns if total_ns > 0 else 0.0
    bar = "#" * max(int(round(fraction * _BAR_WIDTH)),
                    1 if value_ns > 0 else 0)
    return (f"    {name:<10} {value_ns:>10.0f} ns  {fraction:>6.1%}  {bar}")


def _format_aggregate(title: str, aggregate: Optional[WaterfallAggregate],
                      incomplete: int) -> List[str]:
    if aggregate is None:
        return [f"  {title}: no update reached this point at every replica"]
    lines = [f"  {title}: mean {aggregate.mean_latency_ns:.0f} ns over "
             f"{aggregate.count} updates"
             + (f" ({incomplete} incomplete)" if incomplete else "")]
    for bucket in BUCKETS:
        lines.append(_bucket_line(bucket, aggregate.buckets_ns[bucket],
                                  aggregate.mean_latency_ns))
    return lines


def _one_line(aggregate: Optional[WaterfallAggregate]) -> str:
    if aggregate is None:
        return "--"
    parts = " ".join(f"{bucket[:3]}={aggregate.fraction(bucket):.0%}"
                     for bucket in BUCKETS if aggregate.buckets_ns[bucket] > 0)
    return f"{aggregate.mean_latency_ns:>8.0f} ns  {parts}"


def format_waterfall(report: WaterfallReport, show_slowest: bool = True,
                     show_nodes: bool = True,
                     show_hotness: bool = True) -> str:
    """Render the report as a text waterfall."""
    title = report.label or "run"
    lines = [f"critical-path waterfall — {title}  "
             f"({report.journeys} journeys tracked"
             + (f", {report.dropped} dropped" if report.dropped else "") + ")"]
    lines += _format_aggregate("VP (visibility)", report.vp,
                               report.vp_incomplete)
    lines += _format_aggregate("DP (durability)", report.dp,
                               report.dp_incomplete)
    if show_nodes and report.by_node:
        lines.append("  by coordinator node:")
        for node, points in report.by_node.items():
            lines.append(f"    n{node}  vp {_one_line(points['vp'])}")
            lines.append(f"        dp {_one_line(points['dp'])}")
    if show_hotness and report.by_hotness:
        lines.append("  by key hotness:")
        for cls in HOTNESS_CLASSES:
            points = report.by_hotness.get(cls)
            if points is None:
                continue
            lines.append(f"    {cls:<5} vp {_one_line(points['vp'])}")
            lines.append(f"          dp {_one_line(points['dp'])}")
    if show_slowest and report.slowest:
        lines.append("  slowest updates (by DP latency):")
        for breakdown in report.slowest:
            journey = breakdown.journey
            lines.append(
                f"    key={journey.key} v={journey.version} "
                f"coord=n{journey.coordinator}")
            for point in ("vp", "dp"):
                path = getattr(breakdown, point)
                if path is None:
                    continue
                parts = "  ".join(
                    f"{bucket}={path.buckets[bucket]:.0f}"
                    for bucket in BUCKETS if path.buckets[bucket] > 0)
                lines.append(f"      {point} {path.latency_ns:>8.0f} ns "
                             f"via n{path.node}:  {parts}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# JSON shaping (for repro.run_report/6)
# ---------------------------------------------------------------------------


def _aggregate_json(aggregate: Optional[WaterfallAggregate]) -> Optional[dict]:
    if aggregate is None:
        return None
    return {
        "count": aggregate.count,
        "mean_latency_ns": aggregate.mean_latency_ns,
        "buckets_ns": dict(aggregate.buckets_ns),
        "fractions": {bucket: aggregate.fraction(bucket)
                      for bucket in BUCKETS},
    }


def _points_json(points: Dict[str, Optional[WaterfallAggregate]]) -> dict:
    return {point: _aggregate_json(agg) for point, agg in points.items()}


def waterfall_json(report: WaterfallReport) -> dict:
    """The ``journeys`` section of the run-report artifact."""
    return {
        "buckets": list(BUCKETS),
        "journeys": report.journeys,
        "dropped": report.dropped,
        "vp": _aggregate_json(report.vp),
        "dp": _aggregate_json(report.dp),
        "vp_incomplete": report.vp_incomplete,
        "dp_incomplete": report.dp_incomplete,
        "by_node": {str(node): _points_json(points)
                    for node, points in report.by_node.items()},
        "by_hotness": {cls: _points_json(points)
                       for cls, points in report.by_hotness.items()},
        "slowest": [
            {
                "key": b.journey.key,
                "version": list(b.journey.version),
                "coordinator": b.journey.coordinator,
                **{point: (None if getattr(b, point) is None else {
                    "latency_ns": getattr(b, point).latency_ns,
                    "node": getattr(b, point).node,
                    "buckets_ns": dict(getattr(b, point).buckets),
                }) for point in ("vp", "dp")},
            }
            for b in report.slowest
        ],
    }
