"""Run metrics: operation latencies, throughput, traffic, protocol counters.

One :class:`Metrics` instance is shared by all nodes in a cluster run.
Operation records are appended by the client layer; protocol engines
bump counters (messages, persists, conflicts, buffered causal updates,
read stalls on unpersisted writes).  :class:`Summary` turns the raw
records into the quantities the paper's figures report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["OpRecord", "Metrics", "Summary"]


@dataclass(frozen=True)
class OpRecord:
    """One completed client operation."""

    op_type: str          # "read" | "write" | "begin_txn" | "end_txn" | "persist"
    node: int
    client: int
    key: Optional[int]
    start_ns: float
    end_ns: float

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile on pre-sorted data."""
    if not sorted_values:
        return float("nan")
    rank = max(0, min(len(sorted_values) - 1,
                      math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


class Metrics:
    """Mutable collector for one simulation run."""

    def __init__(self):
        self.ops: List[OpRecord] = []
        # Traffic.
        self.messages_by_type: Dict[str, int] = {}
        self.bytes_by_type: Dict[str, int] = {}
        # Protocol counters.
        self.persists = 0
        self.txn_conflicts = 0
        self.txn_commits = 0
        self.txn_aborts = 0
        self.read_stalls = 0
        self.reads_blocked_by_unpersisted = 0
        self.write_stalls = 0
        self.causal_buffered_total = 0
        self.causal_buffer_peak = 0
        self.warmup_end_ns = 0.0

    # -- recording ---------------------------------------------------------------

    def record_op(self, record: OpRecord) -> None:
        self.ops.append(record)

    def record_message(self, msg_type: str, size_bytes: int) -> None:
        self.messages_by_type[msg_type] = self.messages_by_type.get(msg_type, 0) + 1
        self.bytes_by_type[msg_type] = self.bytes_by_type.get(msg_type, 0) + size_bytes

    def note_causal_buffer(self, current_buffered: int) -> None:
        self.causal_buffered_total += 1
        self.causal_buffer_peak = max(self.causal_buffer_peak, current_buffered)

    # -- aggregates ----------------------------------------------------------------

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_type.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_type.values())

    def summarize(self, duration_ns: float) -> "Summary":
        """Aggregate into the per-figure quantities.

        Only operations that *completed after warmup* count, mirroring
        the paper's warmup-then-measure methodology.
        """
        measured = [op for op in self.ops if op.end_ns >= self.warmup_end_ns]
        reads = sorted(op.latency_ns for op in measured if op.op_type == "read")
        writes = sorted(op.latency_ns for op in measured if op.op_type == "write")
        all_lat = sorted(op.latency_ns for op in measured
                         if op.op_type in ("read", "write"))
        span = max(duration_ns - self.warmup_end_ns, 1.0)
        requests = len([op for op in measured if op.op_type in ("read", "write")])
        return Summary(
            requests=requests,
            duration_ns=span,
            throughput_ops_per_s=requests / (span * 1e-9),
            mean_read_ns=(sum(reads) / len(reads)) if reads else float("nan"),
            mean_write_ns=(sum(writes) / len(writes)) if writes else float("nan"),
            mean_access_ns=(sum(all_lat) / len(all_lat)) if all_lat else float("nan"),
            p95_read_ns=_percentile(reads, 0.95),
            p95_write_ns=_percentile(writes, 0.95),
            p99_read_ns=_percentile(reads, 0.99),
            p99_write_ns=_percentile(writes, 0.99),
            total_messages=self.total_messages,
            total_bytes=self.total_bytes,
            persists=self.persists,
            txn_conflicts=self.txn_conflicts,
            txn_commits=self.txn_commits,
            read_stalls=self.read_stalls,
            reads_blocked_by_unpersisted=self.reads_blocked_by_unpersisted,
            causal_buffer_peak=self.causal_buffer_peak,
            causal_buffered_total=self.causal_buffered_total,
        )


@dataclass(frozen=True)
class Summary:
    """Aggregated results of one run (the rows of the paper's plots)."""

    requests: int
    duration_ns: float
    throughput_ops_per_s: float
    mean_read_ns: float
    mean_write_ns: float
    mean_access_ns: float
    p95_read_ns: float
    p95_write_ns: float
    p99_read_ns: float
    p99_write_ns: float
    total_messages: int
    total_bytes: int
    persists: int
    txn_conflicts: int
    txn_commits: int
    read_stalls: int
    reads_blocked_by_unpersisted: int
    causal_buffer_peak: int
    causal_buffered_total: int

    @property
    def read_conflict_fraction(self) -> float:
        """Fraction of reads that stalled on a yet-to-persist write."""
        read_count = max(self.requests, 1)
        return self.reads_blocked_by_unpersisted / read_count

    def normalized_to(self, baseline: "Summary") -> Dict[str, float]:
        """Ratios against a baseline run (the paper normalizes all plots
        to <Linearizable, Synchronous>)."""
        def ratio(mine: float, theirs: float) -> float:
            if theirs == 0 or math.isnan(theirs) or math.isnan(mine):
                return float("nan")
            return mine / theirs

        return {
            "throughput": ratio(self.throughput_ops_per_s,
                                baseline.throughput_ops_per_s),
            "mean_read": ratio(self.mean_read_ns, baseline.mean_read_ns),
            "mean_write": ratio(self.mean_write_ns, baseline.mean_write_ns),
            "mean_access": ratio(self.mean_access_ns, baseline.mean_access_ns),
            "p95_read": ratio(self.p95_read_ns, baseline.p95_read_ns),
            "p95_write": ratio(self.p95_write_ns, baseline.p95_write_ns),
            "traffic_bytes": ratio(float(self.total_bytes),
                                   float(baseline.total_bytes)),
        }
