"""Run metrics: operation latencies, throughput, traffic, protocol counters.

One :class:`Metrics` instance is shared by all nodes in a cluster run.
Operation records are appended by the client layer; protocol engines
bump counters (messages, persists, conflicts, buffered causal updates,
read stalls on unpersisted writes).  :class:`Summary` turns the raw
records into the quantities the paper's figures report, and
:func:`windowed_op_series` slices them into per-window time series
(throughput, p50/p99 latency) for the run-report artifact.

Message traffic is windowed without storing per-message records: when a
``window_ns`` is configured, :meth:`Metrics.record_message` bumps an
O(windows x types) counter table instead of appending, so long runs
stay bounded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["OpRecord", "Metrics", "Summary", "WindowStat",
           "windowed_op_series"]


@dataclass(frozen=True)
class OpRecord:
    """One completed client operation."""

    op_type: str          # "read" | "write" | "begin_txn" | "end_txn" | "persist"
    node: int
    client: int
    key: Optional[int]
    start_ns: float
    end_ns: float

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile on pre-sorted data.

    Edge cases are explicit rather than emergent: an empty input has no
    percentile (NaN), ``fraction <= 0`` is the minimum (nearest-rank's
    ceil would otherwise produce rank -1 and only accidentally clamp to
    0), and ``fraction >= 1`` is the maximum.
    """
    if not sorted_values:
        return float("nan")
    if fraction <= 0.0:
        return sorted_values[0]
    if fraction >= 1.0:
        return sorted_values[-1]
    rank = min(len(sorted_values) - 1,
               math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[rank]


@dataclass(frozen=True)
class WindowStat:
    """One window of a latency/throughput time series."""

    start_ns: float
    end_ns: float
    ops: int
    throughput_ops_per_s: float
    mean_ns: float
    p50_ns: float
    p99_ns: float


def windowed_op_series(ops: Iterable[OpRecord], window_ns: float,
                       start_ns: float = 0.0,
                       end_ns: Optional[float] = None,
                       op_types: Tuple[str, ...] = ("read", "write"),
                       ) -> List[WindowStat]:
    """Bucket completed operations into fixed windows (by completion
    time) and compute per-window throughput and latency percentiles.

    Windows are contiguous from ``start_ns``; empty windows are emitted
    (zero throughput, NaN latencies) so series from different runs align
    index-by-index.
    """
    if window_ns <= 0:
        raise ValueError(f"window_ns must be positive: {window_ns}")
    buckets: Dict[int, List[float]] = {}
    last_end = start_ns
    for op in ops:
        if op.op_type not in op_types or op.end_ns < start_ns:
            continue
        if end_ns is not None and op.end_ns > end_ns:
            continue
        index = int((op.end_ns - start_ns) // window_ns)
        buckets.setdefault(index, []).append(op.latency_ns)
        last_end = max(last_end, op.end_ns)
    if end_ns is None:
        end_ns = last_end
    count = max(int(math.ceil((end_ns - start_ns) / window_ns)), 0)
    if buckets:
        # An op completing exactly on a window boundary (end_ns a whole
        # multiple of window_ns) buckets into the window *starting*
        # there; emit that window too or the op silently vanishes from
        # the series.
        count = max(count, max(buckets) + 1)
    series: List[WindowStat] = []
    for index in range(count):
        lats = sorted(buckets.get(index, ()))
        n = len(lats)
        series.append(WindowStat(
            start_ns=start_ns + index * window_ns,
            end_ns=start_ns + (index + 1) * window_ns,
            ops=n,
            throughput_ops_per_s=n / (window_ns * 1e-9),
            mean_ns=(sum(lats) / n) if n else float("nan"),
            p50_ns=_percentile(lats, 0.50),
            p99_ns=_percentile(lats, 0.99),
        ))
    return series


class Metrics:
    """Mutable collector for one simulation run."""

    def __init__(self, window_ns: Optional[float] = None):
        self.ops: List[OpRecord] = []
        # Traffic.
        self.messages_by_type: Dict[str, int] = {}
        self.bytes_by_type: Dict[str, int] = {}
        # Windowed traffic: (window index, type) -> count, maintained
        # incrementally when a window size is configured.
        self.window_ns = window_ns
        self.message_windows: Dict[Tuple[int, str], int] = {}
        # Protocol counters.
        self.persists = 0
        self.txn_conflicts = 0
        self.txn_commits = 0
        self.txn_aborts = 0
        self.read_stalls = 0
        self.reads_blocked_by_unpersisted = 0
        self.write_stalls = 0
        self.causal_buffered_total = 0
        self.causal_buffer_peak = 0
        self.warmup_end_ns = 0.0

    # -- recording ---------------------------------------------------------------

    def record_op(self, record: OpRecord) -> None:
        self.ops.append(record)

    def record_message(self, msg_type: str, size_bytes: int,
                       time_ns: Optional[float] = None) -> None:
        self.messages_by_type[msg_type] = self.messages_by_type.get(msg_type, 0) + 1
        self.bytes_by_type[msg_type] = self.bytes_by_type.get(msg_type, 0) + size_bytes
        if self.window_ns is not None and time_ns is not None:
            key = (int(time_ns // self.window_ns), msg_type)
            self.message_windows[key] = self.message_windows.get(key, 0) + 1

    def note_causal_buffer(self, current_buffered: int) -> None:
        self.causal_buffered_total += 1
        self.causal_buffer_peak = max(self.causal_buffer_peak, current_buffered)

    # -- time series -------------------------------------------------------------

    def op_series(self, window_ns: float, end_ns: Optional[float] = None,
                  op_types: Tuple[str, ...] = ("read", "write"),
                  ) -> List[WindowStat]:
        """Whole-cluster windowed throughput/latency series."""
        return windowed_op_series(self.ops, window_ns, end_ns=end_ns,
                                  op_types=op_types)

    def op_series_by_node(self, window_ns: float,
                          end_ns: Optional[float] = None,
                          op_types: Tuple[str, ...] = ("read", "write"),
                          ) -> Dict[int, List[WindowStat]]:
        """Per-coordinator-node windowed series (aligned windows)."""
        nodes = sorted({op.node for op in self.ops})
        return {
            node: windowed_op_series(
                (op for op in self.ops if op.node == node),
                window_ns, end_ns=end_ns, op_types=op_types)
            for node in nodes
        }

    def message_window_series(self) -> Dict[str, List[int]]:
        """Per-message-type windowed counts (requires ``window_ns``)."""
        if not self.message_windows:
            return {}
        last = max(index for index, _ in self.message_windows)
        types = sorted({t for _, t in self.message_windows})
        return {
            msg_type: [self.message_windows.get((index, msg_type), 0)
                       for index in range(last + 1)]
            for msg_type in types
        }

    # -- aggregates ----------------------------------------------------------------

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_type.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_type.values())

    def summarize(self, duration_ns: float) -> Summary:
        """Aggregate into the per-figure quantities.

        Only operations that *completed after warmup* count, mirroring
        the paper's warmup-then-measure methodology.
        """
        measured = [op for op in self.ops if op.end_ns >= self.warmup_end_ns]
        reads = sorted(op.latency_ns for op in measured if op.op_type == "read")
        writes = sorted(op.latency_ns for op in measured if op.op_type == "write")
        all_lat = sorted(op.latency_ns for op in measured
                         if op.op_type in ("read", "write"))
        span = max(duration_ns - self.warmup_end_ns, 1.0)
        requests = len([op for op in measured if op.op_type in ("read", "write")])
        return Summary(
            requests=requests,
            duration_ns=span,
            throughput_ops_per_s=requests / (span * 1e-9),
            mean_read_ns=(sum(reads) / len(reads)) if reads else float("nan"),
            mean_write_ns=(sum(writes) / len(writes)) if writes else float("nan"),
            mean_access_ns=(sum(all_lat) / len(all_lat)) if all_lat else float("nan"),
            p95_read_ns=_percentile(reads, 0.95),
            p95_write_ns=_percentile(writes, 0.95),
            p99_read_ns=_percentile(reads, 0.99),
            p99_write_ns=_percentile(writes, 0.99),
            total_messages=self.total_messages,
            total_bytes=self.total_bytes,
            persists=self.persists,
            txn_conflicts=self.txn_conflicts,
            txn_commits=self.txn_commits,
            read_stalls=self.read_stalls,
            reads_blocked_by_unpersisted=self.reads_blocked_by_unpersisted,
            causal_buffer_peak=self.causal_buffer_peak,
            causal_buffered_total=self.causal_buffered_total,
        )


@dataclass(frozen=True)
class Summary:
    """Aggregated results of one run (the rows of the paper's plots)."""

    requests: int
    duration_ns: float
    throughput_ops_per_s: float
    mean_read_ns: float
    mean_write_ns: float
    mean_access_ns: float
    p95_read_ns: float
    p95_write_ns: float
    p99_read_ns: float
    p99_write_ns: float
    total_messages: int
    total_bytes: int
    persists: int
    txn_conflicts: int
    txn_commits: int
    read_stalls: int
    reads_blocked_by_unpersisted: int
    causal_buffer_peak: int
    causal_buffered_total: int

    @property
    def read_conflict_fraction(self) -> float:
        """Fraction of reads that stalled on a yet-to-persist write."""
        read_count = max(self.requests, 1)
        return self.reads_blocked_by_unpersisted / read_count

    def normalized_to(self, baseline: Summary) -> Dict[str, float]:
        """Ratios against a baseline run (the paper normalizes all plots
        to <Linearizable, Synchronous>)."""
        def ratio(mine: float, theirs: float) -> float:
            if theirs == 0 or math.isnan(theirs) or math.isnan(mine):
                return float("nan")
            return mine / theirs

        return {
            "throughput": ratio(self.throughput_ops_per_s,
                                baseline.throughput_ops_per_s),
            "mean_read": ratio(self.mean_read_ns, baseline.mean_read_ns),
            "mean_write": ratio(self.mean_write_ns, baseline.mean_write_ns),
            "mean_access": ratio(self.mean_access_ns, baseline.mean_access_ns),
            "p95_read": ratio(self.p95_read_ns, baseline.p95_read_ns),
            "p95_write": ratio(self.p95_write_ns, baseline.p95_write_ns),
            "traffic_bytes": ratio(float(self.total_bytes),
                                   float(baseline.total_bytes)),
        }
