"""The deterministic fault injector.

:class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into scheduled simulation callbacks (crash / restart / window edges) and
an in-line network verdict hook (drop / delay / duplicate / partition).
Every decision is driven by the simulation clock and one
:class:`~repro.sim.rng.SeededStream` forked from the plan seed, so the
same plan on the same workload seed replays byte-identically — and an
injector with an *empty* plan schedules nothing, draws nothing, and
leaves the run byte-identical to an uninjected one (the
:class:`~repro.obs.health.HealthMonitor` attachment discipline).

Crash handling follows the paper's Section 8 assumption of
membership-based (Hermes-style) failure handling: the crash itself only
silences the node; ``detection_delay_ns`` later the membership epoch
bumps, protocol rounds retarget against the survivors, and the dead
coordinator's open transactions are abandoned.  A planned restart
rebuilds the node's volatile store from NVM recovery
(:func:`~repro.recovery.recovery.recover_latest` over its own log) and
rejoins the membership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.faults.plan import MESSAGE_KINDS, FaultEvent, FaultPlan
from repro.sim.rng import SeededStream
from repro.sim.trace import NullTracer

__all__ = ["NetVerdict", "FaultInjector", "faults_json"]


@dataclass(frozen=True)
class NetVerdict:
    """Per-message outcome handed to :class:`repro.net.network.Network`."""

    drop: bool = False
    delay_ns: float = 0.0
    copies: int = 1


class FaultInjector:
    """Schedules a fault plan onto one cluster.

    Single-use: ``attach`` binds the injector to a cluster built with
    ``faults=`` (which gives it a :class:`~repro.core.membership.Membership`
    to drive) and may be called once.
    """

    def __init__(self, plan: FaultPlan, max_records: int = 4096):
        self.plan = plan
        self._cluster = None
        self._sim = None
        self._membership = None
        self._tracer = NullTracer()
        self._rng: Optional[SeededStream] = None
        self._message_events: tuple = ()
        self.resolved_events: tuple = ()
        # Lifecycle record log (bounded like HealthMonitor's violations).
        self.max_records = max_records
        self.records: List[Dict[str, Any]] = []
        self.records_dropped = 0
        self.crashes = 0
        self.detections = 0
        self.restarts = 0
        self.txns_abandoned = 0
        self.nvm_slow_windows = 0
        self.ops_severed = 0

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def attach(self, cluster) -> None:
        """Bind to ``cluster`` and schedule every planned event."""
        if self._cluster is not None:
            raise RuntimeError("FaultInjector is single-use; already attached")
        if cluster.membership is None:
            raise RuntimeError(
                "cluster was built without membership; pass faults= to "
                "Cluster so nodes are wired for fault tolerance")
        self._cluster = cluster
        self._sim = cluster.sim
        self._membership = cluster.membership
        if cluster.tracer is not None:
            self._tracer = cluster.tracer
        self._rng = SeededStream(self.plan.seed, "faults")
        self._membership.lossy = self.plan.lossy
        node_ids = list(self._membership.all_nodes)
        resolved = []
        for event in self.plan.events:
            if event.kind in ("crash", "nvm_slow") and event.node is None:
                # Seeded pick, resolved once at attach so the report can
                # echo the concrete target.
                event = FaultEvent(
                    kind=event.kind, at_ns=event.at_ns,
                    node=self._rng.choice(node_ids),
                    duration_ns=event.duration_ns,
                    restart_after_ns=event.restart_after_ns,
                    factor=event.factor)
            self._validate_target(event, node_ids)
            resolved.append(event)
            self._schedule(event)
        self.resolved_events = tuple(resolved)
        self._message_events = tuple(
            e for e in resolved if e.kind in MESSAGE_KINDS)
        if self._message_events:
            # Install the per-message hook only when the plan can touch
            # messages: crash-only plans leave the network object exactly
            # as a fault-free run has it.
            cluster.network.faults = self

    @staticmethod
    def _validate_target(event: FaultEvent, node_ids: List[int]) -> None:
        targets = []
        if event.node is not None:
            targets.append(event.node)
        if event.groups is not None:
            targets.extend(n for group in event.groups for n in group)
        if event.src is not None:
            targets.append(event.src)
        if event.dst is not None:
            targets.append(event.dst)
        for node in targets:
            if node not in node_ids:
                raise ValueError(
                    f"fault plan targets node {node}, but the cluster has "
                    f"nodes {node_ids}")

    def _schedule(self, event: FaultEvent) -> None:
        if event.kind == "crash":
            self._sim.call_at(event.at_ns, lambda: self._crash(event))
            return
        if event.kind == "nvm_slow":
            self._sim.call_at(event.at_ns, lambda: self._nvm_slow(event, True))
            self._sim.call_at(event.until_ns,
                              lambda: self._nvm_slow(event, False))
            return
        # Message-fault windows act through on_message; the scheduled
        # edges only mark the timeline (trace + record).
        self._sim.call_at(event.at_ns, lambda: self._window_edge(event, True))
        self._sim.call_at(event.until_ns,
                          lambda: self._window_edge(event, False))

    # ------------------------------------------------------------------
    # lifecycle events
    # ------------------------------------------------------------------

    def _record(self, kind: str, **detail: Any) -> None:
        if len(self.records) >= self.max_records:
            self.records_dropped += 1
            return
        entry = {"t_us": self._sim.now / 1000.0, "kind": kind}
        entry.update(detail)
        self.records.append(entry)

    def _emit(self, kind: str, node: Optional[int] = None,
              **detail: Any) -> None:
        if self._tracer.enabled:
            self._tracer.emit(self._sim.now, "fault", node=node,
                              fault=kind, **detail)

    def _crash(self, event: FaultEvent) -> None:
        node_id = event.node
        self.crashes += 1
        severed = self._cluster.fail_node(node_id)
        # Operations cut off mid-flight used to vanish from the books;
        # they are counted here (and recorded as pending in the
        # operation history, when one is attached): each may or may not
        # have taken effect.
        self.ops_severed += severed
        self._record("crash", node=node_id, ops_severed=severed)
        self._emit("crash", node=node_id, ops_severed=severed)
        self._sim.call_at(self._sim.now + self.plan.detection_delay_ns,
                          lambda: self._detect(node_id))
        if event.restart_after_ns is not None:
            self._sim.call_at(event.at_ns + event.restart_after_ns,
                              lambda: self._restart(node_id))

    def _detect(self, node_id: int) -> None:
        # A planned restart may beat a slow detector; marking a node that
        # already rebooted as crashed would wedge the membership, so the
        # detection is suppressed (the failure "blinked" below the
        # detector's resolution, as on real membership services).
        if self._cluster.nodes[node_id].engine.alive:
            return
        self.detections += 1
        self._membership.mark_crashed(node_id)
        doomed = self._cluster.txn_table.abandon_node(node_id)
        self.txns_abandoned += len(doomed)
        self._record("detect", node=node_id,
                     epoch=self._membership.epoch,
                     txns_abandoned=len(doomed))
        self._emit("detect", node=node_id, epoch=self._membership.epoch)

    def _restart(self, node_id: int) -> None:
        self.restarts += 1
        self._cluster.restart_node(node_id)
        self._membership.mark_joined(node_id)
        self._record("restart", node=node_id, epoch=self._membership.epoch)
        self._emit("restart", node=node_id, epoch=self._membership.epoch)

    def _nvm_slow(self, event: FaultEvent, starting: bool) -> None:
        node = self._cluster.nodes[event.node]
        if starting:
            self.nvm_slow_windows += 1
            node.memory.nvm.slowdown = event.factor
        else:
            node.memory.nvm.slowdown = 1.0
        kind = "nvm_slow" if starting else "nvm_slow_end"
        self._record(kind, node=event.node, factor=event.factor)
        self._emit(kind, node=event.node, factor=event.factor)

    def _window_edge(self, event: FaultEvent, starting: bool) -> None:
        kind = event.kind if starting else f"{event.kind}_end"
        detail: Dict[str, Any] = {}
        if event.groups is not None:
            detail["groups"] = [list(g) for g in event.groups]
        else:
            detail["probability"] = event.probability
        self._record(kind, **detail)
        self._emit(kind, **detail)

    # ------------------------------------------------------------------
    # network hook
    # ------------------------------------------------------------------

    def on_message(self, src: int, dst: int, message: Any,
                   size_bytes: int) -> Optional[NetVerdict]:
        """Evaluate every active message-fault window for one send.

        Called by :meth:`repro.net.network.Network.send`.  Probability
        draws happen for every matching window regardless of earlier
        verdicts, keeping the stream consumption (and so the rest of the
        run) independent of evaluation short-circuits.
        """
        now = self._sim.now
        drop = False
        delay_ns = 0.0
        copies = 1
        for event in self._message_events:
            if now < event.at_ns or now >= event.until_ns:
                continue
            if event.kind == "partition":
                if self._crosses_partition(event, src, dst):
                    drop = True
                continue
            if event.src is not None and event.src != src:
                continue
            if event.dst is not None and event.dst != dst:
                continue
            hit = (event.probability >= 1.0
                   or self._rng.random() < event.probability)
            if not hit:
                continue
            if event.kind == "drop":
                drop = True
            elif event.kind == "delay":
                delay_ns += event.extra_ns
            elif event.kind == "duplicate":
                copies += 1
        if not drop and delay_ns == 0.0 and copies == 1:
            return None
        return NetVerdict(drop=drop, delay_ns=delay_ns, copies=copies)

    @staticmethod
    def _crosses_partition(event: FaultEvent, src: int, dst: int) -> bool:
        src_group = dst_group = None
        for index, group in enumerate(event.groups):
            if src in group:
                src_group = index
            if dst in group:
                dst_group = index
        # Nodes outside every group are unaffected (reachable by all).
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group


def faults_json(injector: FaultInjector) -> Dict[str, Any]:
    """Build the ``faults`` section of a ``repro.run_report/6`` document."""
    cluster = injector._cluster
    membership = injector._membership
    network = cluster.network if cluster is not None else None
    rounds = {"resends": 0, "retargeted": 0, "orphans_absorbed": 0}
    if cluster is not None:
        for engine in cluster.engines:
            rounds["resends"] += engine.round_resends
            rounds["retargeted"] += engine.rounds_retargeted
            rounds["orphans_absorbed"] += engine.orphans_absorbed
    section: Dict[str, Any] = {
        "plan": injector.plan.to_json(),
        "injected": {
            "crashes": injector.crashes,
            "detections": injector.detections,
            "restarts": injector.restarts,
            "txns_abandoned": injector.txns_abandoned,
            "ops_severed": injector.ops_severed,
            "nvm_slow_windows": injector.nvm_slow_windows,
            "messages_dropped": (network.dropped_messages
                                 if network is not None else 0),
            "messages_delayed": (network.delayed_messages
                                 if network is not None else 0),
            "messages_duplicated": (network.duplicated_messages
                                    if network is not None else 0),
        },
        "rounds": rounds,
        "events": list(injector.records),
        "events_dropped": injector.records_dropped,
    }
    if membership is not None:
        section["membership"] = {
            "epoch": membership.epoch,
            "live": sorted(membership.live),
            "crashes": membership.crashes,
            "joins": membership.joins,
        }
    return section
