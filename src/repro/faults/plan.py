"""Declarative, deterministic fault plans.

A plan is a seed plus a list of :class:`FaultEvent` entries.  Plans are
authored in JSON (times in microseconds, matching the CLI's
``--duration-us``) or built from compact ``node@t`` crash specs; the
loader normalizes everything to nanoseconds, the unit of the simulation
clock.

Supported kinds:

``crash``
    Kill ``node`` at ``at_us`` (volatile state lost; the NVM image
    survives).  With ``restart_after_us`` the node restarts that many
    microseconds later, seeded from NVM recovery.  ``node: null`` picks
    a node from the plan seed, deterministically.
``drop`` / ``delay`` / ``duplicate``
    Message faults over the window ``[at_us, at_us + duration_us)``:
    drop with ``probability``, add ``extra_us`` of propagation latency,
    or duplicate with ``probability``.  Optional ``src`` / ``dst``
    restrict the fault to one direction.
``partition``
    Drop every message crossing between the node ``groups`` (a list of
    disjoint node-id lists) during the window.
``nvm_slow``
    Multiply NVM service times on ``node`` by ``factor`` during the
    window (degraded-DIMM model).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = ["FaultEvent", "FaultPlan", "load_fault_plan",
           "parse_crash_spec", "plan_from_crash_specs"]

_US = 1000.0  # nanoseconds per microsecond

KINDS = ("crash", "drop", "delay", "duplicate", "partition", "nvm_slow")
MESSAGE_KINDS = ("drop", "delay", "duplicate", "partition")
WINDOW_KINDS = ("drop", "delay", "duplicate", "partition", "nvm_slow")


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault.  Fields beyond ``kind``/``at_ns`` apply only to
    the kinds documented on them; the loader validates the combinations."""

    kind: str
    at_ns: float
    node: Optional[int] = None
    """Target node (crash, nvm_slow).  None = seeded random pick."""
    duration_ns: Optional[float] = None
    """Window length (all kinds except crash)."""
    restart_after_ns: Optional[float] = None
    """Crash only: restart the node this long after the crash."""
    probability: float = 1.0
    """drop/delay/duplicate: per-message chance of applying."""
    extra_ns: float = 0.0
    """delay only: added one-way propagation latency."""
    factor: float = 1.0
    """nvm_slow only: NVM service-time multiplier."""
    groups: Optional[Tuple[Tuple[int, ...], ...]] = None
    """partition only: disjoint node-id groups; cross-group traffic drops."""
    src: Optional[int] = None
    dst: Optional[int] = None
    """drop/delay/duplicate: optional directional matchers."""

    @property
    def until_ns(self) -> Optional[float]:
        if self.duration_ns is None:
            return None
        return self.at_ns + self.duration_ns


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of fault events."""

    seed: int = 0
    detection_delay_ns: float = 3000.0
    """Time from a crash until the cluster *detects* it (membership epoch
    bump + transaction abandonment).  Models the failure detector of a
    membership service; paper Section 8 assumes Hermes-style
    membership-based failure handling."""
    events: Tuple[FaultEvent, ...] = ()

    @property
    def lossy(self) -> bool:
        """True when the plan can lose, delay, or duplicate messages —
        the condition under which protocol rounds arm retransmission
        (crash-only plans recover via membership alone, keeping
        fault-free and crash-only runs minimally perturbed)."""
        return any(e.kind in MESSAGE_KINDS for e in self.events)

    def events_of(self, *kinds: str) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind in kinds)

    def to_json(self) -> Dict[str, Any]:
        """Echo of the plan for run reports (times back in us)."""
        events = []
        for e in self.events:
            entry: Dict[str, Any] = {"kind": e.kind, "at_us": e.at_ns / _US}
            if e.node is not None:
                entry["node"] = e.node
            if e.duration_ns is not None:
                entry["duration_us"] = e.duration_ns / _US
            if e.restart_after_ns is not None:
                entry["restart_after_us"] = e.restart_after_ns / _US
            if e.kind in ("drop", "delay", "duplicate"):
                entry["probability"] = e.probability
                if e.src is not None:
                    entry["src"] = e.src
                if e.dst is not None:
                    entry["dst"] = e.dst
            if e.kind == "delay":
                entry["extra_us"] = e.extra_ns / _US
            if e.kind == "nvm_slow":
                entry["factor"] = e.factor
            if e.groups is not None:
                entry["groups"] = [list(g) for g in e.groups]
            events.append(entry)
        return {"seed": self.seed,
                "detection_delay_us": self.detection_delay_ns / _US,
                "events": events}


def _fail(index: int, message: str) -> None:
    raise ValueError(f"fault plan event #{index}: {message}")


def _event_from_dict(index: int, raw: Dict[str, Any]) -> FaultEvent:
    if not isinstance(raw, dict):
        _fail(index, f"expected an object, got {type(raw).__name__}")
    kind = raw.get("kind")
    if kind not in KINDS:
        _fail(index, f"unknown kind {kind!r} (expected one of {KINDS})")
    if "at_us" not in raw:
        _fail(index, "missing required field 'at_us'")
    known = {"kind", "at_us", "node", "duration_us", "restart_after_us",
             "probability", "extra_us", "factor", "groups", "src", "dst"}
    unknown = sorted(set(raw) - known)
    if unknown:
        _fail(index, f"unknown fields {unknown}")

    at_ns = float(raw["at_us"]) * _US
    if at_ns < 0:
        _fail(index, "at_us must be >= 0")
    node = raw.get("node")
    duration_ns = (float(raw["duration_us"]) * _US
                   if "duration_us" in raw else None)
    restart_after_ns = (float(raw["restart_after_us"]) * _US
                        if "restart_after_us" in raw else None)
    probability = float(raw.get("probability", 1.0))
    extra_ns = float(raw.get("extra_us", 0.0)) * _US
    factor = float(raw.get("factor", 1.0))
    groups = raw.get("groups")
    src = raw.get("src")
    dst = raw.get("dst")

    if kind == "crash":
        if duration_ns is not None:
            _fail(index, "crash takes restart_after_us, not duration_us")
        if restart_after_ns is not None and restart_after_ns <= 0:
            _fail(index, "restart_after_us must be > 0")
    else:
        if restart_after_ns is not None:
            _fail(index, f"{kind} does not take restart_after_us")
        if duration_ns is None or duration_ns <= 0:
            _fail(index, f"{kind} requires duration_us > 0")
    if kind in ("crash", "nvm_slow"):
        if node is not None and (not isinstance(node, int) or node < 0):
            _fail(index, "node must be a non-negative integer or null")
    elif node is not None:
        _fail(index, f"{kind} does not take node")
    if kind in ("drop", "delay", "duplicate"):
        if not 0.0 <= probability <= 1.0:
            _fail(index, "probability must be in [0, 1]")
        for name, value in (("src", src), ("dst", dst)):
            if value is not None and (not isinstance(value, int) or value < 0):
                _fail(index, f"{name} must be a non-negative integer")
    elif src is not None or dst is not None:
        _fail(index, f"{kind} does not take src/dst")
    if kind == "delay" and extra_ns <= 0:
        _fail(index, "delay requires extra_us > 0")
    if kind == "nvm_slow" and factor <= 0:
        _fail(index, "nvm_slow requires factor > 0")
    if kind == "partition":
        if (not isinstance(groups, list) or len(groups) < 2
                or not all(isinstance(g, list) and g for g in groups)):
            _fail(index, "partition requires groups: >= 2 non-empty lists")
        flat = [n for g in groups for n in g]
        if len(flat) != len(set(flat)):
            _fail(index, "partition groups must be disjoint")
        groups = tuple(tuple(int(n) for n in g) for g in groups)
    elif groups is not None:
        _fail(index, f"{kind} does not take groups")

    return FaultEvent(kind=kind, at_ns=at_ns, node=node,
                      duration_ns=duration_ns,
                      restart_after_ns=restart_after_ns,
                      probability=probability, extra_ns=extra_ns,
                      factor=factor, groups=groups, src=src, dst=dst)


def load_fault_plan(source: Union[str, Dict[str, Any]]) -> FaultPlan:
    """Build a :class:`FaultPlan` from a JSON file path or a parsed dict."""
    if isinstance(source, dict):
        raw = source
    else:
        with open(source, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    if not isinstance(raw, dict):
        raise ValueError("fault plan must be a JSON object")
    unknown = sorted(set(raw) - {"seed", "detection_delay_us", "events"})
    if unknown:
        raise ValueError(f"fault plan: unknown top-level fields {unknown}")
    events = raw.get("events", [])
    if not isinstance(events, list):
        raise ValueError("fault plan: 'events' must be a list")
    parsed = tuple(_event_from_dict(i, e) for i, e in enumerate(events))
    # Stable time order keeps the injector's scheduling (and therefore
    # the trace) independent of how the author listed the events.
    ordered = tuple(sorted(parsed, key=lambda e: (e.at_ns, e.kind)))
    return FaultPlan(seed=int(raw.get("seed", 0)),
                     detection_delay_ns=float(
                         raw.get("detection_delay_us", 3.0)) * _US,
                     events=ordered)


def parse_crash_spec(spec: str) -> FaultEvent:
    """Parse ``node@at_us`` or ``node@at_us+restart_after_us``.

    ``2@50`` crashes node 2 at t=50 us; ``2@50+40`` additionally
    restarts it at t=90 us.
    """
    text = spec.strip()
    try:
        node_part, when = text.split("@", 1)
        raw: Dict[str, Any] = {"kind": "crash", "node": int(node_part)}
        if "+" in when:
            when, restart = when.split("+", 1)
            raw["restart_after_us"] = float(restart)
        raw["at_us"] = float(when)
        return _event_from_dict(0, raw)
    except ValueError as exc:
        raise ValueError(
            f"bad crash spec {spec!r} (expected node@at_us or "
            f"node@at_us+restart_after_us): {exc}") from exc


def plan_from_crash_specs(specs: List[str], seed: int = 0,
                          detection_delay_us: float = 3.0) -> FaultPlan:
    """Build a crash-only plan from CLI ``--crash`` specs."""
    events = tuple(sorted((parse_crash_spec(s) for s in specs),
                          key=lambda e: (e.at_ns, e.kind)))
    return FaultPlan(seed=seed,
                     detection_delay_ns=detection_delay_us * _US,
                     events=events)
