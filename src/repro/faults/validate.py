"""Post-run invariant validation for faulty runs.

After a run with fault injection, :func:`validate_faulty_run` recovers
the cluster's durable state and checks every contract the model makes
(the same Table 2/4 contracts as ``tests/recovery/test_crash_contracts``,
here applied to whatever the injector did mid-run):

* ``completed_writes_recovered`` — Strict persistency (any consistency)
  and <Linearizable/Transactional, Synchronous>: every write the client
  was acknowledged for (for transactions: every write of a committed
  transaction) is recoverable.
* ``read_values_recovered`` — Read-Enforced persistency (any
  consistency) and <Causal/Eventual, Synchronous>: every value a client
  read is recoverable.  (Reads issued inside transactions are not
  session-logged — a squashed transaction's reads are retried wholesale
  — so under Transactional consistency this check covers none and
  passes trivially.)
* ``scope_atomicity`` — Scope persistency: committed scopes recover
  all-or-nothing per node.
* ``monotonic_reads`` — all non-transactional models, per client
  *session*: a crash-restart of the client's node starts a new session
  (volatile state newer than the durable image is legitimately lost),
  so each session segment is checked independently.  Skipped under
  Transactional consistency, where a read may legitimately observe a
  later-squashed transaction's write.

The clients must have been built with operation recording (the cluster
does this automatically when constructed with ``faults=``).
"""

from __future__ import annotations

from typing import List

from repro.core.policies import PersistMode
from repro.recovery.checker import (CheckResult,
                                    check_completed_writes_recovered,
                                    check_monotonic_reads,
                                    check_read_values_recovered,
                                    check_scope_atomicity)
from repro.recovery.recovery import recover_latest

__all__ = ["validate_faulty_run"]


def _merge(name: str, results: List[CheckResult]) -> CheckResult:
    violations = [v for result in results for v in result.violations]
    return CheckResult(name, not violations, violations)


def validate_faulty_run(cluster) -> List[CheckResult]:
    """Run every contract check applicable to ``cluster.model``.

    Returns the list of :class:`CheckResult`; the run is correct iff
    every result is ok.
    """
    engine = cluster.engines[0]
    cpolicy, ppolicy = engine.cpolicy, engine.ppolicy
    node_ids = range(cluster.config.servers)
    recovered = recover_latest(cluster.nvm_log, node_ids)
    results: List[CheckResult] = []

    guarantees_completed_writes = (
        ppolicy.write_waits_for_persist_everywhere
        or (ppolicy.persist_mode is PersistMode.INLINE
            and (cpolicy.write_waits_for_acks or cpolicy.transactional)))
    if guarantees_completed_writes:
        results.append(_merge("completed_writes_recovered", [
            check_completed_writes_recovered(recovered,
                                             client.completed_writes)
            for client in cluster.clients]))

    guarantees_read_values = (
        ppolicy.read_requires_applied_persisted
        or (ppolicy.read_returns_persisted and not cpolicy.uses_inv))
    if guarantees_read_values:
        results.append(_merge("read_values_recovered", [
            check_read_values_recovered(recovered, session)
            for client in cluster.clients
            for session in client.read_sessions()]))

    if ppolicy.persist_mode is PersistMode.ON_SCOPE_END:
        scope_writes = {}
        for client in cluster.clients:
            scope_writes.update(client.scope_log)
        results.append(check_scope_atomicity(cluster.nvm_log, node_ids,
                                             scope_writes))

    if not cpolicy.transactional:
        results.append(_merge("monotonic_reads", [
            check_monotonic_reads(session)
            for client in cluster.clients
            for session in client.read_sessions()]))

    return results
