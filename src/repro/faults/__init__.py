"""Deterministic fault injection for DDP clusters.

Everything here is driven by the simulation clock and a seeded stream,
so a fault plan is exactly as reproducible as the workload it disturbs:
same seed + same plan => byte-identical traces.

* :mod:`repro.faults.plan` — declarative fault plans (JSON or
  ``node@t`` crash specs): crashes with optional restart, message
  drop/delay/duplication, partitions, NVM slowdowns.
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that
  schedules a plan onto a cluster (same observe-only attachment
  discipline as :class:`repro.obs.HealthMonitor`: an injector with an
  empty plan perturbs nothing).
* :mod:`repro.faults.validate` — post-run invariant validation using
  the :mod:`repro.recovery.checker` contracts each model makes.
"""

from repro.faults.injector import FaultInjector, faults_json
from repro.faults.plan import (FaultEvent, FaultPlan, load_fault_plan,
                               parse_crash_spec, plan_from_crash_specs)
from repro.faults.validate import validate_faulty_run

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "faults_json",
    "load_fault_plan",
    "parse_crash_spec",
    "plan_from_crash_specs",
    "validate_faulty_run",
]
