"""Transaction bookkeeping and conflict detection.

The paper's <Transactional, *> protocols layer "additional software
infrastructure that detects and handles transactional conflicts": at
every read and write, the accessed key is compared against the reads and
writes of all currently-active transactions; on a conflict the
transaction is squashed (and retried by the client) or stalled,
depending on the flavor — we implement squash-and-retry.

:class:`TxnTable` is that shared software infrastructure: a cluster-wide
registry of active transactions and their read/write sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["Txn", "TxnConflict", "TxnTable"]


class TxnConflict(Exception):
    """Raised into a transaction's flow when it is squashed."""

    def __init__(self, txn_id: int, key: int, other_txn_id: int):
        super().__init__(f"txn {txn_id} conflicts with txn {other_txn_id} on key {key}")
        self.txn_id = txn_id
        self.key = key
        self.other_txn_id = other_txn_id


@dataclass
class Txn:
    """One active transaction."""

    txn_id: int
    node: int
    client: int
    read_set: Set[int] = field(default_factory=set)
    write_set: Set[int] = field(default_factory=set)
    writes: List[Tuple[int, Tuple[int, int]]] = field(default_factory=list)
    """Ordered (key, version) pairs, for the ENDX payload."""

    aborted: bool = False


class TxnTable:
    """Cluster-wide active-transaction registry with conflict checks.

    Conflict rule (read/write vs write): an access to key ``k`` by
    transaction ``t`` conflicts with any *other* active transaction that
    has ``k`` in its write set; additionally a *write* conflicts with
    another transaction's *read* of ``k``.  The younger transaction
    (higher id) is squashed, bounding livelock: an old transaction can
    never be killed by a newcomer.
    """

    def __init__(self):
        self._active: Dict[int, Txn] = {}
        self._next_id = 1
        self.conflicts = 0
        self.begun = 0
        self.committed = 0
        self.aborted = 0

    # -- lifecycle -----------------------------------------------------------

    def begin(self, node: int, client: int) -> Txn:
        txn = Txn(txn_id=self._next_id, node=node, client=client)
        self._next_id += 1
        self._active[txn.txn_id] = txn
        self.begun += 1
        return txn

    def commit(self, txn: Txn) -> None:
        self._active.pop(txn.txn_id, None)
        self.committed += 1

    def abort(self, txn: Txn) -> None:
        txn.aborted = True
        self._active.pop(txn.txn_id, None)
        self.aborted += 1

    def abandon_node(self, node: int) -> List[int]:
        """Abort every active transaction coordinated by ``node``.

        Called once per detected crash (by the fault injector) so the
        dead coordinator's open write sets stop conflicting with — and
        thereby squashing or stalling — every live transaction forever.
        Returns the aborted transaction ids, in id order.
        """
        doomed = sorted(txn_id for txn_id, txn in self._active.items()
                        if txn.node == node)
        for txn_id in doomed:
            self.abort(self._active[txn_id])
        return doomed

    @property
    def active_count(self) -> int:
        return len(self._active)

    # -- conflict detection -----------------------------------------------------

    def _conflicting_txn(self, txn: Txn, key: int, is_write: bool) -> Optional[Txn]:
        for other in self._active.values():
            if other.txn_id == txn.txn_id or other.aborted:
                continue
            if key in other.write_set:
                return other
            # Write sets are globally visible (INVs carry the txn id), but
            # reads are served locally and never broadcast, so a write can
            # only be checked against the read sets of *local* txns.
            if is_write and other.node == txn.node and key in other.read_set:
                return other
        return None

    def check_access(self, txn: Txn, key: int, is_write: bool) -> None:
        """Record the access; raise :class:`TxnConflict` on a squash.

        The squashed transaction is always the younger of the pair.  If
        the *other* transaction is younger, it is marked aborted here and
        its owner discovers the squash at its next access or at ENDX.
        """
        if txn.aborted:
            raise TxnConflict(txn.txn_id, key, -1)
        other = self._conflicting_txn(txn, key, is_write)
        if other is not None:
            self.conflicts += 1
            if txn.txn_id > other.txn_id:
                self.abort(txn)
                raise TxnConflict(txn.txn_id, key, other.txn_id)
            self.abort(other)
        if is_write:
            txn.write_set.add(key)
        else:
            txn.read_set.add(key)

    def check_still_alive(self, txn: Txn) -> None:
        """Raise if the transaction was squashed by a concurrent winner."""
        if txn.aborted:
            raise TxnConflict(txn.txn_id, -1, -1)
