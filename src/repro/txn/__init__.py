"""Transaction substrate: active-transaction table and conflict detection."""

from repro.txn.manager import Txn, TxnConflict, TxnTable

__all__ = ["Txn", "TxnConflict", "TxnTable"]
