"""Memory substrate: DRAM/NVM devices, cache hierarchy, per-node facade."""

from repro.memory.cache import CacheHierarchy, CacheLevel, CacheTiming, Llc
from repro.memory.devices import (
    DRAM_TIMING,
    NVM_TIMING,
    DramDevice,
    MemoryDevice,
    MemoryTiming,
    NvmDevice,
)
from repro.memory.hierarchy import MemoryHierarchy

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CacheTiming",
    "DRAM_TIMING",
    "DramDevice",
    "Llc",
    "MemoryDevice",
    "MemoryHierarchy",
    "MemoryTiming",
    "NVM_TIMING",
    "NvmDevice",
]
