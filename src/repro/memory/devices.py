"""Memory device models: DRAM and NVM.

Both devices are modeled as a set of independently-queued banks spread
over channels (Table 5 of the paper: DRAM has 4 channels x 8 banks at
100 ns round trip; NVM has 2 channels x 8 banks at 140 ns read / 400 ns
write round trip).  An access hashes its address to a bank and queues
there; contention on NVM banks is what produces the paper's "NVM
pressure" effect, where outstanding persists delay later persists and
the reads that wait on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from repro.sim.engine import Simulator
from repro.sim.sync import Resource
from repro.sim.trace import NullTracer

__all__ = ["MemoryTiming", "MemoryDevice", "DramDevice", "NvmDevice"]


@dataclass(frozen=True)
class MemoryTiming:
    """Per-device service times, in nanoseconds (round trip)."""

    read_ns: float
    write_ns: float
    channels: int
    banks_per_channel: int

    @property
    def total_banks(self) -> int:
        return self.channels * self.banks_per_channel


DRAM_TIMING = MemoryTiming(read_ns=100.0, write_ns=100.0, channels=4, banks_per_channel=8)
NVM_TIMING = MemoryTiming(read_ns=140.0, write_ns=400.0, channels=2, banks_per_channel=8)


class MemoryDevice:
    """A banked memory device with per-bank FIFO queueing.

    Accesses are processes: ``yield from device.read(address)`` holds the
    target bank for the service time.  Statistics expose total accesses
    and time-integrated queue occupancy for pressure analysis.
    """

    def __init__(self, sim: Simulator, timing: MemoryTiming, name: str = "mem",
                 tracer=None, trace_node=None):
        self.sim = sim
        self.timing = timing
        self.name = name
        self.tracer = tracer if tracer is not None else NullTracer()
        self.trace_node = trace_node
        self._banks: List[Resource] = [
            Resource(sim, capacity=1, name=f"{name}.bank{i}")
            for i in range(timing.total_banks)
        ]
        self.reads = 0
        self.writes = 0
        self.busy_ns = 0.0
        self.queued_ns = 0.0
        # Fault injection: multiplies every access's service time while
        # set above 1.0 (an "NVM slowdown" window models a degraded DIMM
        # or thermally-throttled media).  The timing dataclass stays
        # frozen; this is deliberately mutable mid-run.
        self.slowdown = 1.0

    def _bank_for(self, address: int) -> Resource:
        # Addresses are small non-negative int keys, for which builtin
        # hash() was the identity anyway — plain modulo keeps the same
        # bank interleaving while staying safe for any future key type
        # (hash(str) is process-salted, which would randomize banking
        # across runs).
        return self._banks[address % len(self._banks)]

    def _access(self, address: int, service_ns: float) -> Generator:
        bank = self._bank_for(address)
        enqueue_time = self.sim.now
        yield bank.acquire()
        self.queued_ns += self.sim.now - enqueue_time
        service_ns = service_ns * self.slowdown
        try:
            yield self.sim.timeout(service_ns)
            self.busy_ns += service_ns
        finally:
            bank.release()

    def read(self, address: int) -> Generator:
        """Process: perform a read access to ``address``."""
        self.reads += 1
        yield from self._access(address, self.timing.read_ns)

    def write(self, address: int) -> Generator:
        """Process: perform a write access to ``address``."""
        self.writes += 1
        yield from self._access(address, self.timing.write_ns)

    @property
    def outstanding(self) -> int:
        """Accesses currently queued or in service across all banks."""
        return sum(b.in_use + b.queue_len for b in self._banks)

    @property
    def peak_queue_len(self) -> int:
        return max(b.peak_queue_len for b in self._banks)

    @property
    def banks_busy(self) -> int:
        """Banks currently in service (utilization numerator; divide by
        ``timing.total_banks`` for a fraction)."""
        return sum(1 for b in self._banks if b.in_use)


class DramDevice(MemoryDevice):
    """DRAM with the paper's Table 5 timing (100 ns symmetric)."""

    def __init__(self, sim: Simulator, timing: MemoryTiming = DRAM_TIMING,
                 name: str = "dram", tracer=None, trace_node=None):
        super().__init__(sim, timing, name, tracer=tracer,
                         trace_node=trace_node)


class NvmDevice(MemoryDevice):
    """NVM with the paper's Table 5 timing (140 ns read / 400 ns write).

    ``persist`` is the operation the persistency models care about: a
    durable write of one update.  It is an alias of ``write`` plus a
    persist counter, kept separate so benchmarks can report persist
    traffic independently of ordinary NVM reads/writes.
    """

    def __init__(self, sim: Simulator, timing: MemoryTiming = NVM_TIMING,
                 name: str = "nvm", tracer=None, trace_node=None):
        super().__init__(sim, timing, name, tracer=tracer,
                         trace_node=trace_node)
        self.persists = 0

    def persist(self, address: int) -> Generator:
        """Process: durably write ``address`` (queues at its bank)."""
        self.persists += 1
        if self.tracer.enabled:
            start = self.sim.now
            yield from self._access(address, self.timing.write_ns)
            # Span covers bank queueing + media service time, so NVM
            # pressure shows up directly as widening persist spans;
            # service_ns isolates the media share so bank queueing is
            # the remainder.
            self.tracer.emit(self.sim.now, "nvm_persist",
                             node=self.trace_node,
                             dur=self.sim.now - start, address=address,
                             outstanding=self.outstanding,
                             service_ns=self.timing.write_ns * self.slowdown)
        else:
            yield from self._access(address, self.timing.write_ns)
