"""Per-node memory hierarchy: caches + DRAM + NVM as one facade.

:class:`MemoryHierarchy` is what a :class:`repro.cluster.node.Node` owns.
The protocol engine uses three operations:

* ``volatile_update`` — apply an update to the volatile hierarchy
  (LLC via DDIO for NIC-delivered payloads, or a cache access for
  locally-produced writes).
* ``volatile_read`` — read a key from the volatile hierarchy.
* ``persist`` — durably write an update to NVM (queues at NVM banks).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.memory.cache import CacheHierarchy
from repro.memory.devices import DramDevice, MemoryTiming, NvmDevice
from repro.sim.engine import Simulator
from repro.sim.rng import SeededStream

__all__ = ["MemoryHierarchy"]


class MemoryHierarchy:
    """One server's memory system (Figure 1 of the paper)."""

    def __init__(self, sim: Simulator, rng: SeededStream, cores: int = 20,
                 nvm_timing: Optional[MemoryTiming] = None,
                 dram_timing: Optional[MemoryTiming] = None,
                 name: str = "node", tracer=None, node_id=None):
        self.sim = sim
        self.name = name
        self.caches = CacheHierarchy(sim, rng.fork("caches"), cores)
        dram_kwargs = {"name": f"{name}.dram", "tracer": tracer,
                       "trace_node": node_id}
        nvm_kwargs = {"name": f"{name}.nvm", "tracer": tracer,
                      "trace_node": node_id}
        self.dram = (DramDevice(sim, dram_timing, **dram_kwargs)
                     if dram_timing else DramDevice(sim, **dram_kwargs))
        self.nvm = (NvmDevice(sim, nvm_timing, **nvm_kwargs)
                    if nvm_timing else NvmDevice(sim, **nvm_kwargs))

    # -- volatile side -------------------------------------------------------

    def volatile_update(self, address: int, size_bytes: int = 64,
                        via_ddio: bool = False) -> Generator:
        """Process: apply one update to the volatile hierarchy.

        Locally-produced writes take a cache-hierarchy access.  NIC
        deliveries try DDIO first; on spill they cost a DRAM write.
        """
        if via_ddio:
            if self.caches.llc.ddio_deposit(size_bytes):
                yield self.sim.timeout(self.caches.llc.round_trip_ns)
            else:
                yield from self.dram.write(address)
        else:
            yield from self.caches.access(self.dram)

    def volatile_read(self, address: int) -> Generator:
        """Process: read one key from the volatile hierarchy."""
        yield from self.caches.access(self.dram)

    def consume_ddio(self, size_bytes: int = 64) -> None:
        """Release DDIO space once an update has been ingested."""
        self.caches.llc.ddio_consume(size_bytes)

    # -- durable side ---------------------------------------------------------

    def persist(self, address: int) -> Generator:
        """Process: durably write one update to NVM."""
        yield from self.nvm.persist(address)

    def nvm_read(self, address: int) -> Generator:
        """Process: read from NVM (used during recovery)."""
        yield from self.nvm.read(address)

    @property
    def nvm_pressure(self) -> int:
        """Outstanding NVM operations (queued + in service)."""
        return self.nvm.outstanding
