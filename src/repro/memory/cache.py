"""Cache hierarchy model: L1/L2 private caches and a shared LLC with DDIO.

The paper's servers (Table 5) have per-core L1 (2-cycle RT) and L2
(12-cycle RT) caches and a shared LLC (38-cycle RT) of which 10% is
reserved for Data Direct I/O (DDIO) so the NIC can deposit incoming
replica updates directly into the LLC without a memory round trip.

We model caches at *timing* granularity, not content granularity: the
key-value payloads live in the stores (:mod:`repro.store`); the cache
model answers "how long does this access take and does DDIO have room".
Hit ratios are configurable, with a simple working-set heuristic used by
default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim.engine import Simulator
from repro.sim.rng import SeededStream

__all__ = ["CacheTiming", "CacheLevel", "Llc", "CacheHierarchy"]

CYCLE_NS = 0.5
"""Nanoseconds per cycle at the paper's 2 GHz clock."""


@dataclass(frozen=True)
class CacheTiming:
    """Size/latency of one cache level (Table 5)."""

    size_bytes: int
    ways: int
    round_trip_cycles: int

    @property
    def round_trip_ns(self) -> float:
        return self.round_trip_cycles * CYCLE_NS


L1_TIMING = CacheTiming(size_bytes=64 * 1024, ways=8, round_trip_cycles=2)
L2_TIMING = CacheTiming(size_bytes=512 * 1024, ways=8, round_trip_cycles=12)
LLC_TIMING_PER_CORE = CacheTiming(size_bytes=2 * 1024 * 1024, ways=16,
                                  round_trip_cycles=38)


class CacheLevel:
    """One cache level with a fixed hit ratio drawn per access."""

    def __init__(self, sim: Simulator, timing: CacheTiming, hit_ratio: float,
                 rng: SeededStream, name: str):
        if not 0.0 <= hit_ratio <= 1.0:
            raise ValueError(f"hit ratio out of range: {hit_ratio}")
        self.sim = sim
        self.timing = timing
        self.hit_ratio = hit_ratio
        self.rng = rng
        self.name = name
        self.hits = 0
        self.misses = 0

    def lookup(self) -> bool:
        """Draw a hit/miss for one access and record it."""
        hit = self.rng.random() < self.hit_ratio
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit


class Llc:
    """Shared last-level cache with a DDIO region.

    The DDIO region is a byte budget (10% of LLC by default).  The NIC
    deposits incoming updates here; if the region is full the deposit
    spills to DRAM, costing a memory access instead of an LLC access.
    Entries are freed when the protocol engine consumes the update.
    """

    def __init__(self, sim: Simulator, cores: int, rng: SeededStream,
                 hit_ratio: float = 0.85, ddio_fraction: float = 0.10,
                 name: str = "llc"):
        self.sim = sim
        self.name = name
        total = LLC_TIMING_PER_CORE.size_bytes * cores
        self.timing = CacheTiming(size_bytes=total, ways=LLC_TIMING_PER_CORE.ways,
                                  round_trip_cycles=LLC_TIMING_PER_CORE.round_trip_cycles)
        self.level = CacheLevel(sim, self.timing, hit_ratio, rng, name)
        self.ddio_capacity = int(total * ddio_fraction)
        self.ddio_used = 0
        self.ddio_deposits = 0
        self.ddio_spills = 0

    def ddio_deposit(self, size_bytes: int) -> bool:
        """Try to place an incoming NIC payload into the DDIO region.

        Returns True on success; False means the payload spilled to DRAM
        and the caller should charge a DRAM access.
        """
        self.ddio_deposits += 1
        if self.ddio_used + size_bytes <= self.ddio_capacity:
            self.ddio_used += size_bytes
            return True
        self.ddio_spills += 1
        return False

    def ddio_consume(self, size_bytes: int) -> None:
        """Free DDIO space after the protocol engine ingests an update."""
        self.ddio_used = max(0, self.ddio_used - size_bytes)

    @property
    def round_trip_ns(self) -> float:
        return self.timing.round_trip_ns


class CacheHierarchy:
    """Private L1/L2 plus the shared LLC, as a timing oracle.

    ``access_ns`` walks the hierarchy: L1 hit -> 1 ns; else L2 hit ->
    6 ns; else LLC hit -> 19 ns; else a DRAM access is required and the
    caller is told so (the node model then charges the DRAM device).
    """

    def __init__(self, sim: Simulator, rng: SeededStream, cores: int,
                 l1_hit: float = 0.90, l2_hit: float = 0.70,
                 llc_hit: float = 0.85):
        self.sim = sim
        self.l1 = CacheLevel(sim, L1_TIMING, l1_hit, rng.fork("l1"), "l1")
        self.l2 = CacheLevel(sim, L2_TIMING, l2_hit, rng.fork("l2"), "l2")
        self.llc = Llc(sim, cores, rng.fork("llc"), hit_ratio=llc_hit)

    def access_latency(self) -> tuple:
        """Return ``(latency_ns, needs_dram)`` for one data access."""
        if self.l1.lookup():
            return (self.l1.timing.round_trip_ns, False)
        if self.l2.lookup():
            return (self.l2.timing.round_trip_ns, False)
        if self.llc.level.lookup():
            return (self.llc.round_trip_ns, False)
        return (self.llc.round_trip_ns, True)

    def access(self, dram) -> Generator:
        """Process: one hierarchy access, charging DRAM on a full miss."""
        latency, needs_dram = self.access_latency()
        yield self.sim.timeout(latency)
        if needs_dram:
            yield from dram.read(0)
