"""Rule registry.

Rules self-register at import time via the :func:`file_rule` /
:func:`project_rule` decorators; :func:`load_rules` imports the rule
package so registration happens exactly once, lazily.

Two rule kinds:

* **file rules** check one parsed file at a time
  (``check(ctx) -> Iterable[Finding]``);
* **project rules** see the whole file set at once
  (``check(contexts) -> Iterable[Finding]``) — used for cross-file
  invariants like dispatch completeness, which must *import* the code
  under inspection rather than parse it.

A rule's ``scope`` predicate (repo-relative posix path -> bool) limits
where it applies; the default is everywhere linted.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = [
    "Rule",
    "all_rules",
    "everywhere",
    "file_rule",
    "get_rule",
    "in_src",
    "load_rules",
    "project_rule",
]

_RULES: Dict[str, Rule] = {}
_LOADED = False


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    summary: str
    guards: str
    """The invariant (or past bug) the rule protects — shown in
    ``--list-rules`` and the DESIGN rule catalog."""
    kind: str  # "file" | "project"
    scope: Callable[[str], bool]
    check: Callable


def everywhere(path: str) -> bool:
    return True


def in_src(path: str) -> bool:
    """Inside the ``repro`` package source tree."""
    return "src/repro/" in path or path.startswith("repro/")


def _register(rule: Rule) -> Rule:
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id: {rule.id}")
    _RULES[rule.id] = rule
    return rule


def file_rule(rule_id: str, summary: str, guards: str,
              scope: Callable[[str], bool] = everywhere):
    def decorate(func):
        _register(Rule(rule_id, summary, guards, "file", scope, func))
        return func
    return decorate


def project_rule(rule_id: str, summary: str, guards: str,
                 scope: Callable[[str], bool] = everywhere):
    def decorate(func):
        _register(Rule(rule_id, summary, guards, "project", scope, func))
        return func
    return decorate


def load_rules() -> None:
    """Import the rule package (idempotent)."""
    global _LOADED
    if not _LOADED:
        importlib.import_module("repro.devtools.rules")
        _LOADED = True


def all_rules() -> List[Rule]:
    load_rules()
    return sorted(_RULES.values(), key=lambda r: r.id)


def get_rule(rule_id: str) -> Optional[Rule]:
    load_rules()
    return _RULES.get(rule_id)
