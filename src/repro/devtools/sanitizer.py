"""Dynamic tie-batch sanitizer: the runtime half of the determinism
certificate.

The static effect analysis (:mod:`repro.devtools.effects`) proves that
same-timestamp message handlers *should* commute on protocol state.
This module checks the claim on real runs: a
:class:`TieBatchSanitizer` attaches to a :class:`~repro.sim.engine.
Simulator` (same opt-in contract as ``KernelProfile`` — ``None`` by
default, one ``is not None`` check, off-path free) and observes every
*tie batch*, the set of heap entries popped at one identical timestamp.
In sanitizing mode it deterministically permutes each batch's
processing order with a :class:`~repro.sim.rng.SeededStream`
(Fisher–Yates), and :func:`sweep` asserts that the final protocol-state
digest is byte-identical to the unpermuted baseline for every DDP
model.

What gets permuted — and what must stay seq-stable
--------------------------------------------------
Only ``msg_delivery`` entries are reordered (among the positions they
occupy in the batch); other event kinds keep their insertion-sequence
order.  The split mirrors the static pass exactly: delivery order *is*
handler co-scheduling order, the dimension the effect analysis
certifies commutative.  The remaining kinds — process continuations,
timeouts inside memory accesses, resource grants — encode *intra*-
handler progress, and their relative order decides FIFO admission at
shared timing resources (NVM bank queues, DDIO capacity): reordering
those legitimately swaps per-op latencies and cascades through the
closed-loop clients into genuinely different (all individually valid)
trajectories.  That is the ``sched`` location the static pass exempts,
and the concrete certificate this module leaves for ROADMAP item 1's
queue swap: a replacement event queue may break delivery ties freely
but MUST preserve insertion order among equal-timestamp continuations
(i.e. be a *stable* priority queue).

The sweep runs fixed work, not fixed duration: every client carries a
request budget (``Client.max_requests``) and the cluster drains to
quiescence, so all runs execute the identical operation multiset and
a cut-off cannot catch in-flight tails mid-persist.

What the digest covers — and what it deliberately does not
----------------------------------------------------------
:func:`cluster_digest` hashes the *converged protocol state*: per-key
applied / locally-persisted / cluster-persisted versions and values at
every node, the KV-store contents backing reads, and the durable-log
replay state.  That is exactly the state the static pass certifies
commutative.  Wall-clock-shaped outputs (the drain completion time,
per-op latency attribution, peak queue depths) may legitimately differ
between permutations and are excluded; the handbook chapter spells out
this contract.

Cross-referencing
-----------------
Each batch records which message types tied together, so after a sweep
:func:`coverage` maps statically flagged conflict pairs to observed
tie pairs: a flagged pair the sanitizer never exercised is *uncovered*
(the static claim was never tested), and a digest divergence is
reported against the message pairs observed in the diverging run —
which must map back to a flagged pair, or the static pass has a hole.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.rng import SeededStream

__all__ = [
    "TieBatchSanitizer",
    "SweepResult",
    "CellResult",
    "cluster_digest",
    "coverage",
    "sweep",
]


class TieBatchSanitizer:
    """Observe (and optionally permute) same-timestamp pop batches.

    ``seed=None`` is *record* mode: batches are observed, order is
    untouched, and the run is byte-identical to a plain one.  With a
    seed, the ``msg_delivery`` entries of every batch are shuffled in
    place among the positions they occupy (Fisher–Yates over the
    delivery sub-sequence), exploring one alternative handler
    co-scheduling order per seed.  Non-delivery entries never move:
    their seq order is the stable-queue invariant, not a freedom (see
    the module docstring).
    """

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self._rng = (SeededStream(seed, "tie-sanitizer")
                     if seed is not None else None)
        self.batches = 0
        """Tie batches observed (size >= 2)."""
        self.events_tied = 0
        self.max_batch = 0
        self.permuted = 0
        """Batches whose order actually changed."""
        self.pair_counts: Dict[Tuple[str, str], int] = {}
        """Sorted (label, label) -> co-occurrence count.  Labels are
        message-type names for deliveries, event kinds otherwise."""

    def attach(self, sim) -> None:
        sim.order_sanitizer = self

    @staticmethod
    def _label(event) -> str:
        if event.kind == "msg_delivery":
            message = event._value
            msg_type = getattr(message, "msg_type", None)
            if msg_type is not None:
                return msg_type.name
        return f"kind:{event.kind}"

    def observe(self, when: float, batch: List[tuple]) -> None:
        """Record one tie batch; permute it in place when sanitizing."""
        self.batches += 1
        self.events_tied += len(batch)
        if len(batch) > self.max_batch:
            self.max_batch = len(batch)
        labels = sorted(self._label(entry[2]) for entry in batch)
        for a, b in itertools.combinations_with_replacement(
                sorted(set(labels)), 2):
            if a == b and labels.count(a) < 2:
                continue
            key = (a, b)
            self.pair_counts[key] = self.pair_counts.get(key, 0) + 1
        if self._rng is None:
            return
        slots = [i for i, (_when, _seq, event) in enumerate(batch)
                 if event.kind == "msg_delivery"]
        if len(slots) < 2:
            return
        deliveries = [batch[i] for i in slots]
        before = list(deliveries)
        self._rng.shuffle(deliveries)
        for slot, entry in zip(slots, deliveries):
            batch[slot] = entry
        if deliveries != before:
            self.permuted += 1

    def observed_pairs(self) -> List[Tuple[str, str]]:
        return sorted(self.pair_counts)


def cluster_digest(cluster) -> str:
    """Blake2b over the cluster's converged protocol state (hex)."""
    h = hashlib.blake2b(digest_size=16)

    def feed(*parts) -> None:
        for part in parts:
            h.update(repr(part).encode())
            h.update(b"\x1f")

    # Deliberately no sim.now: drain completion time is wall-clock-
    # shaped (queue admission order), not protocol state.
    for engine in cluster.engines:
        feed("node", engine.node_id, getattr(engine, "_alive", True))
        for key in sorted(engine.replicas.keys()):
            replica = engine.replicas.get(key)
            feed(key, replica.applied_version, replica.applied_value,
                 replica.persisted_version, replica.persisted_value,
                 replica.cluster_persisted_version)
            if engine.store is not None:
                feed(engine.store.get(key))
    log = getattr(cluster, "nvm_log", None)
    if log is not None:
        for node_id in range(cluster.config.servers):
            for key in sorted(log.durable_keys(node_id)):
                entry = log.durable_entry(node_id, key)
                feed("log", node_id, key, entry.version, entry.value,
                     entry.scope_id)
    return h.hexdigest()


@dataclass
class CellResult:
    """One DDP model cell's sanitizer verdict."""

    model: str
    baseline_digest: str
    batches: int
    max_batch: int
    seeds: Dict[int, str] = field(default_factory=dict)
    """Permutation seed -> digest."""
    permuted: Dict[int, int] = field(default_factory=dict)
    observed_pairs: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def diverged(self) -> List[int]:
        return sorted(seed for seed, digest in self.seeds.items()
                      if digest != self.baseline_digest)

    @property
    def ok(self) -> bool:
        return not self.diverged


@dataclass
class SweepResult:
    """All cells' verdicts plus aggregate tie coverage."""

    cells: List[CellResult]
    ops_per_client: int
    seeds: List[int]

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def diverged(self) -> List[CellResult]:
        return [cell for cell in self.cells if not cell.ok]

    def observed_pairs(self) -> List[Tuple[str, str]]:
        pairs = set()
        for cell in self.cells:
            pairs.update(map(tuple, cell.observed_pairs))
        return sorted(pairs)

    def to_dict(self) -> Dict:
        from repro.obs.schemas import ORDER_SWEEP_SCHEMA
        return {
            "schema": ORDER_SWEEP_SCHEMA,
            "ops_per_client": self.ops_per_client,
            "seeds": list(self.seeds),
            "ok": self.ok,
            "cells": [{
                "model": cell.model,
                "ok": cell.ok,
                "baseline_digest": cell.baseline_digest,
                "batches": cell.batches,
                "max_batch": cell.max_batch,
                "digests": {str(seed): digest
                            for seed, digest in sorted(cell.seeds.items())},
                "permuted": {str(seed): count
                             for seed, count in sorted(cell.permuted.items())},
                "diverged_seeds": cell.diverged,
                "observed_pairs": [list(p) for p in cell.observed_pairs],
            } for cell in self.cells],
        }


def _run_once(model, ops_per_client: int, servers: int, clients: int,
              run_seed: int, sanitizer: TieBatchSanitizer):
    """One fixed-work cluster run with the sanitizer attached.

    Every client gets the same request budget and the simulation drains
    to quiescence, so the operation multiset is permutation-invariant
    and the digest compares converged states, not cut-off snapshots.
    """
    from repro.cluster.cluster import Cluster
    from repro.cluster.config import ClusterConfig
    from repro.workload.ycsb import WORKLOADS

    config = ClusterConfig(servers=servers, clients_per_server=clients,
                           seed=run_seed)
    cluster = Cluster(model, config=config, workload=WORKLOADS["A"])
    for client in cluster.clients:
        client.max_requests = ops_per_client
    sanitizer.attach(cluster.sim)
    cluster.start()
    cluster.sim.run()
    return cluster_digest(cluster)


def sweep(models=None, ops_per_client: int = 30,
          seeds: Iterable[int] = (1, 2, 3, 4),
          servers: int = 3, clients: int = 2,
          run_seed: int = 2021) -> SweepResult:
    """Run every model once unpermuted and once per permutation seed,
    asserting digest identity.  Defaults are CI-smoke sized."""
    from repro.core.model import all_ddp_models

    if models is None:
        models = all_ddp_models()
    seeds = list(seeds)
    cells = []
    for model in models:
        recorder = TieBatchSanitizer(seed=None)
        baseline = _run_once(model, ops_per_client, servers, clients,
                             run_seed, recorder)
        cell = CellResult(model=str(model), baseline_digest=baseline,
                          batches=recorder.batches,
                          max_batch=recorder.max_batch,
                          observed_pairs=recorder.observed_pairs())
        for seed in seeds:
            permuter = TieBatchSanitizer(seed=seed)
            cell.seeds[seed] = _run_once(model, ops_per_client, servers,
                                         clients, run_seed, permuter)
            cell.permuted[seed] = permuter.permuted
        cells.append(cell)
    return SweepResult(cells=cells, ops_per_client=ops_per_client,
                       seeds=seeds)


def coverage(flagged_pairs: Iterable[Tuple[str, str]],
             result: SweepResult) -> Dict[str, List]:
    """Cross-reference static conflict pairs against observed ties.

    ``flagged_pairs`` are handler pairs from the static pass translated
    to message-type pairs (via the engines' dispatch tables).  Returns
    which were exercised by at least one observed tie batch and which
    were never co-scheduled dynamically (uncovered: the static claim
    was never put to the test at this duration).
    """
    observed = set(map(tuple, result.observed_pairs()))
    flagged = sorted(set(tuple(sorted(p)) for p in flagged_pairs))
    exercised = [list(p) for p in flagged if p in observed]
    uncovered = [list(p) for p in flagged if p not in observed]
    return {"flagged": [list(p) for p in flagged],
            "exercised": exercised, "uncovered": uncovered}
