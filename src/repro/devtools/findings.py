"""Lint findings.

A :class:`Finding` pins one rule violation to a file location.  The
engine marks findings waived when an inline waiver comment covers them;
waived findings still appear in reports (so waivers stay visible) but
do not fail the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waive_reason: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)
    """Rule-specific detail (e.g. the missing MsgType members)."""

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def waive(self, reason: str) -> Finding:
        return replace(self, waived=True, waive_reason=reason)

    def format(self) -> str:
        tag = f"  [waived: {self.waive_reason}]" if self.waived else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule}: {self.message}{tag}")

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
        }
        if self.waived:
            doc["waive_reason"] = self.waive_reason
        if self.extra:
            doc["extra"] = self.extra
        return doc
