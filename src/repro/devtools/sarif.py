"""SARIF 2.1.0 export for reprolint results.

``repro lint --sarif`` / ``repro order --sarif`` emit a Static Analysis
Results Interchange Format document that GitHub code scanning (and any
SARIF viewer) ingests directly, so lint findings annotate PR diffs
instead of living only in job logs.

Mapping decisions:

* Every registered rule — plus the engine's built-in checks — gets a
  ``reportingDescriptor`` carrying the rule's one-line summary and its
  *guards* rationale, so the code-scanning UI explains why a rule
  exists, not just that it fired.
* Unwaived findings are ``error`` (they fail the run; mirroring exit
  code 1).  Waived findings are still exported but carry a
  ``suppression`` with the inline justification: code scanning shows
  them as suppressed rather than silently dropping them, which keeps
  waivers reviewable in the same UI.
* Paths are emitted repo-relative with ``uriBaseId: ROOTPATH`` — the
  standard convention GitHub resolves against the checkout root.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.devtools.engine import ENGINE_RULES, LintResult
from repro.devtools.registry import all_rules

__all__ = ["to_sarif", "sarif_document"]

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")

#: Summaries for the engine's built-in checks, which live outside the
#: rule registry (they police the lint mechanism itself).
_ENGINE_RULE_TEXT = {
    "parse-error": "a linted file does not parse",
    "waiver-syntax": "a lint-ok comment is malformed or names an "
                     "unknown rule id",
    "unused-waiver": "a waiver matched no finding (stale waivers are "
                     "how a lint layer rots)",
}


def _rule_descriptors() -> List[Dict]:
    descriptors = []
    for rule in all_rules():
        descriptors.append({
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": f"Guards: {rule.guards}"},
            "defaultConfiguration": {"level": "error"},
        })
    for rule_id in ENGINE_RULES:
        descriptors.append({
            "id": rule_id,
            "shortDescription": {"text": _ENGINE_RULE_TEXT[rule_id]},
            "defaultConfiguration": {"level": "error"},
        })
    return descriptors


def sarif_document(result: LintResult, tool_name: str = "reprolint") -> Dict:
    """The SARIF document for one lint run, as a plain dict."""
    descriptors = _rule_descriptors()
    index = {d["id"]: i for i, d in enumerate(descriptors)}
    results = []
    for finding in result.findings:
        entry = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "ROOTPATH",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        if finding.rule in index:
            entry["ruleIndex"] = index[finding.rule]
        if finding.waived:
            entry["suppressions"] = [{
                "kind": "inSource",
                "justification": finding.waive_reason,
            }]
        results.append(entry)
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "informationUri":
                        "https://github.com/paper-repro/repro",
                    "rules": descriptors,
                },
            },
            "originalUriBaseIds": {
                "ROOTPATH": {"description": {
                    "text": "repository checkout root"}},
            },
            "results": results,
        }],
    }


def to_sarif(result: LintResult, tool_name: str = "reprolint") -> str:
    """Serialize :func:`sarif_document` (stable key order, indented)."""
    return json.dumps(sarif_document(result, tool_name=tool_name),
                      indent=2)
