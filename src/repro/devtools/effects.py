"""Interprocedural effect analysis for protocol message handlers.

For every ``MsgType`` handler reachable from an engine's ``_DISPATCH``
table this module computes a *read/write effect set* over abstract
engine-state locations, following ``self._helper(...)`` calls (and
generators handed to ``sim.process`` / callbacks handed to
``sim.call_at``) through the class hierarchy.  The result answers the
question the DES-kernel surgery of ROADMAP item 1 has to answer before
it may change tie-breaking order: *which pairs of same-timestamp
handlers can observe each other's order?*

Abstract locations
------------------
Engine state is collapsed onto a small location vocabulary (all
instances of a location are merged — the analysis is per-key/per-op
oblivious, which over-approximates conflicts, never misses them):

``replica.applied``, ``replica.persisted``, ``replica.cluster_persisted``,
``replica.inflight``, ``replica.persist_pending``, ``replica.txn_undo``,
``replica.table``, ``engine.outstanding_writes``,
``engine.outstanding_rounds``, ``engine.causal_buffer``,
``engine.txn_invs``, ``engine.op_counter``, ``store.slot``,
``nvm.queue``, ``nvm.ddio``, ``nvm.log``, ``txn.table``, ``membership``,
``net.send``, ``sched``, ``metrics``, ``trace``, ``board``, ``ctx``.

Access modes
------------
* ``r``  — read.
* ``w``  — **raw write**: the final state depends on the order in which
  two such writes (or a write and a read) execute.
* ``wm`` — **commutative/monotone write**: version-guarded
  last-writer-wins installs (:meth:`KeyReplica.apply` and friends),
  idempotent set adds (:meth:`AckRound.ack`), keyed dict inserts/pops,
  and counters.  Any interleaving of ``wm`` writes to a location
  reaches the same state, so ``wm`` never conflicts with ``wm`` or
  ``r``.

Two locations are deliberately exempt from conflicts and documented in
the handbook: ``trace`` (tracer output is ordered by construction and
compared only under identical schedules) and ``sched`` (insertion
order into the event heap is precisely the tie-breaking dimension the
*dynamic* tie-batch sanitizer permutes — the static pass certifies
state commutativity, the sanitizer owns schedule-order effects).

Conflict rule: a raw ``w`` on a location conflicts with any access
(``r``, ``w`` or ``wm``) to the same location from a co-schedulable
handler (including a second instance of the same handler).  Every
protocol message delivery can tie with any other at one node — the
fabric quantizes delays onto shared latency constants — so all handler
pairs are treated as co-schedulable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.devtools.callgraph import ClassInfo, ProjectIndex, dispatch_table

__all__ = [
    "EffectAnalysis",
    "EffectSet",
    "MODES",
    "Site",
    "analyze_engines",
    "conflicts",
]

MODES = ("r", "wm", "w")

#: Memo owner for module-level functions (``_applied_at_least`` etc.).
MODULE_OWNER = "<module>"

#: Locations whose accesses never produce conflicts (see module doc).
EXEMPT_LOCATIONS = frozenset({"trace", "sched", "ctx"})


@dataclass(frozen=True)
class Site:
    """Where an effect was recorded (call/assignment site)."""

    path: str
    line: int
    detail: str


class EffectSet:
    """Accesses of one handler: ``(location, mode)`` with one witness
    site each (first site wins; sites are for reporting only)."""

    def __init__(self) -> None:
        self.accesses: Dict[Tuple[str, str], Site] = {}
        self.unresolved: Dict[str, Site] = {}
        #: Message sends guarded by a branch condition, with the
        #: locations that condition reads (intraprocedural guards;
        #: helper sends propagate through :meth:`merge`).
        self.guarded_sends: Dict[Tuple[Site, frozenset], None] = {}

    def add(self, location: str, mode: str, site: Site) -> None:
        self.accesses.setdefault((location, mode), site)

    def add_unresolved(self, call: str, site: Site) -> None:
        self.unresolved.setdefault(call, site)

    def add_guarded_send(self, site: Site, guard_locs: frozenset) -> None:
        if guard_locs:
            self.guarded_sends.setdefault((site, guard_locs))

    def merge(self, other: "EffectSet") -> bool:
        """Union ``other`` in; True if anything new appeared."""
        changed = False
        for key, site in other.accesses.items():
            if key not in self.accesses:
                self.accesses[key] = site
                changed = True
        for call, site in other.unresolved.items():
            if call not in self.unresolved:
                self.unresolved[call] = site
                changed = True
        for key in other.guarded_sends:
            if key not in self.guarded_sends:
                self.guarded_sends.setdefault(key)
                changed = True
        return changed

    def modes(self, location: str) -> Set[str]:
        return {mode for (loc, mode) in self.accesses if loc == location}

    def locations(self) -> Set[str]:
        return {loc for (loc, _mode) in self.accesses}

    def raw_writes(self) -> List[Tuple[str, Site]]:
        return sorted(((loc, site)
                       for (loc, mode), site in self.accesses.items()
                       if mode == "w"), key=lambda item: item[0])

    def summary(self) -> List[str]:
        """Canonical ``"mode location"`` lines (golden-fixture form)."""
        return sorted(f"{mode} {loc}" for (loc, mode) in self.accesses)

    def __len__(self) -> int:
        return len(self.accesses)


# ---------------------------------------------------------------------------
# The intrinsic-effect model: (receiver tag, method) -> [(location, mode)]
# ---------------------------------------------------------------------------

#: ``self.<attr>`` -> receiver tag for known engine collaborators.
SELF_ATTR_TAGS = {
    "sim": "sim",
    "memory": "memory",
    "network": "network",
    "nic": "nic",
    "metrics": "metrics",
    "tracer": "tracer",
    "store": "store",
    "nvm_log": "nvmlog",
    "txn_table": "txntable",
    "membership": "membership",
    "version_board": "board",
    "replicas": "replicatable",
    "config": "pure",
    "cpolicy": "pure",
    "ppolicy": "pure",
    "model": "pure",
    "peer_ids": "pure",
    "node_id": "pure",
}

#: ``self.<attr>`` -> abstract location for engine-owned mutable state.
SELF_STATE_LOCATIONS = {
    "_outstanding_writes": "engine.outstanding_writes",
    "_outstanding_rounds": "engine.outstanding_rounds",
    "_causal_waiting": "engine.causal_buffer",
    "_causal_waiting_count": "engine.causal_buffer",
    "_txn_invs": "engine.txn_invs",
    "_op_counter": "engine.op_counter",
}

#: Typed attribute reads: (tag, attribute) -> location.
ATTR_READS = {
    ("replica", "applied_version"): "replica.applied",
    ("replica", "applied_value"): "replica.applied",
    ("replica", "persisted_version"): "replica.persisted",
    ("replica", "persisted_value"): "replica.persisted",
    ("replica", "cluster_persisted_version"): "replica.cluster_persisted",
    ("replica", "inflight_invs"): "replica.inflight",
    ("replica", "transient"): "replica.inflight",
    ("replica", "persist_requested"): "replica.persist_pending",
    ("replica", "persist_target"): "replica.persist_pending",
    ("replica", "persist_active"): "replica.persist_pending",
    ("replica", "txn_undo"): "replica.txn_undo",
    ("membership", "live"): "membership",
    ("membership", "lossy"): "membership",
}

#: Typed attribute *assignments*: (tag, attribute) -> (location, mode).
#: Persist write-combining slots are guarded monotone at every site
#: (checked against ``persist_requested`` before writing), hence ``wm``.
ATTR_WRITES = {
    ("replica", "persist_requested"): ("replica.persist_pending", "wm"),
    ("replica", "persist_target"): ("replica.persist_pending", "wm"),
    ("replica", "persist_active"): ("replica.persist_pending", "wm"),
    ("replica", "applied_version"): ("replica.applied", "w"),
    ("replica", "applied_value"): ("replica.applied", "w"),
}

#: Method intrinsics: (tag, method) -> [(location, mode)].
#: ``None`` entries in a pair list mean "also analyze generator/callback
#: arguments" — handled specially for the ``sim`` tag below.
METHOD_EFFECTS: Dict[Tuple[str, str], List[Tuple[str, str]]] = {
    # KeyReplica — version-guarded monotone installs.
    ("replica", "apply"): [("replica.applied", "wm"), ("sched", "wm")],
    ("replica", "mark_persisted"): [("replica.persisted", "wm"),
                                    ("sched", "wm")],
    ("replica", "mark_cluster_persisted"): [
        ("replica.cluster_persisted", "wm"), ("sched", "wm")],
    ("replica", "next_version"): [("replica.applied", "r")],
    ("replica", "begin_inv"): [("replica.inflight", "wm")],
    ("replica", "end_inv"): [("replica.inflight", "wm"), ("sched", "wm")],
    # Transactional undo bookkeeping: pre-image records depend on the
    # interleaving with concurrent applies — raw.
    ("replica", "record_undo"): [("replica.txn_undo", "w"),
                                 ("replica.applied", "r")],
    ("replica", "commit_undo"): [("replica.txn_undo", "wm")],
    # absorb_superseded is guarded (``pre_image[0] < version``): the
    # pre-image converges to the maximum superseded version regardless
    # of arrival order — monotone.
    ("replica", "absorb_superseded"): [("replica.txn_undo", "wm"),
                                       ("replica.applied", "r")],
    ("replica", "revert"): [("replica.applied", "w"),
                            ("replica.txn_undo", "w"), ("sched", "wm")],
    ("replicatable", "get"): [("replica.table", "wm")],
    ("replicatable", "keys"): [("replica.table", "r")],
    # Condition variables: predicate waits re-check state on wake, so
    # wake order cannot change outcomes — schedule-domain only.
    ("condition", "wait_for"): [("sched", "wm")],
    ("condition", "wait"): [("sched", "wm")],
    ("condition", "notify"): [("sched", "wm")],
    # AckRound: set-add + idempotent, guarded completion.
    ("ackround", "ack"): [("round.acks", "wm"), ("sched", "wm")],
    ("ackround", "retarget"): [("round.acks", "wm"), ("sched", "wm")],
    ("ackround", "wait"): [("round.acks", "r")],
    # Store: reads and cost probes read the structure; ``put`` is raw by
    # default (last put wins) — call sites that install the replica's
    # LWW winner (``replica.applied_value``) are downgraded to ``wm``
    # in ``_call_effects`` since any interleaving converges.
    ("store", "get"): [("store.slot", "r")],
    ("store", "read_cost"): [("store.slot", "r")],
    ("store", "write_cost"): [("store.slot", "r")],
    ("store", "put"): [("store.slot", "w")],
    ("store", "delete"): [("store.slot", "w")],
    # Memory hierarchy: queue/device occupancy — timing, not values;
    # contention order is schedule-domain (sanitizer's dimension).
    ("memory", "persist"): [("nvm.queue", "wm"), ("sched", "wm")],
    ("memory", "volatile_update"): [("nvm.queue", "wm"), ("sched", "wm")],
    ("memory", "volatile_read"): [("nvm.queue", "r"), ("sched", "wm")],
    ("memory", "consume_ddio"): [("nvm.ddio", "wm")],
    # Durable log: append-only; recovery takes the per-key version
    # maximum, so append interleaving cannot change recovered state.
    ("nvmlog", "record"): [("nvm.log", "wm")],
    ("nvmlog", "commit_scope"): [("nvm.log", "wm")],
    # Network: payload construction is deterministic per handler; the
    # *order* of same-timestamp sends is schedule-domain.  The
    # schedule-sensitive-send rule separately flags sends guarded by
    # raw-written state.
    ("network", "send"): [("net.send", "wm"), ("sched", "wm")],
    ("network", "broadcast"): [("net.send", "wm"), ("sched", "wm")],
    ("nic", "receive"): [("sched", "wm")],
    # Shared transaction table.
    ("txntable", "begin"): [("txn.table", "w")],
    ("txntable", "commit"): [("txn.table", "w")],
    ("txntable", "abort"): [("txn.table", "w")],
    ("txntable", "check_access"): [("txn.table", "w")],
    ("txntable", "check_still_alive"): [("txn.table", "r")],
    ("membership", "subscribe"): [("membership", "w")],
    ("board", "note_write"): [("board", "wm")],
    ("board", "score_read"): [("board", "wm")],
}

#: Metrics and tracer: every method is one intrinsic.
_TAG_WILDCARD_EFFECTS = {
    "metrics": [("metrics", "wm")],
    "tracer": [("trace", "wm")],
    "ctx": [("ctx", "wm")],
}

#: ``sim`` methods that schedule; generator/callback arguments are
#: analyzed and their effects inherited by the scheduling handler.
_SIM_SCHEDULING = frozenset({
    "process", "call_at", "call_soon", "timeout", "event",
    "all_of", "any_of",
})

#: Calls that never touch engine state.
_PURE_BUILTINS = frozenset({
    "len", "sorted", "list", "dict", "set", "tuple", "frozenset", "min",
    "max", "range", "enumerate", "isinstance", "getattr", "hasattr",
    "abs", "float", "int", "str", "bool", "any", "all", "zip", "sum",
    "repr", "print", "iter", "next", "reversed", "id", "type", "round",
    "Message", "RuntimeError", "ValueError", "KeyError", "dataclass",
})

#: Methods that are pure on any receiver (containers, strings, ...).
_PURE_METHODS = frozenset({
    "items", "keys", "values", "copy", "index", "count", "format",
    "join", "split", "startswith", "endswith", "strip",
})

#: Dict-style mutations on *engine-state* locations that are keyed by a
#: message-derived id (op_id / txn_id / key): distinct keys commute and
#: repeats are idempotent, hence ``wm``.  ``append`` is order-sensitive
#: and stays raw.
_KEYED_CONTAINER_WM = frozenset({"pop", "setdefault", "discard", "add",
                                 "clear", "update", "remove"})
_CONTAINER_RAW = frozenset({"append", "extend", "insert", "sort"})
_CONTAINER_READS = frozenset({"get", "items", "keys", "values", "copy"})


# ---------------------------------------------------------------------------
# Local type environment
# ---------------------------------------------------------------------------

@dataclass
class _Binding:
    """What a local name refers to: a receiver tag, an aliased abstract
    location (mutating it mutates the location), or both."""

    tag: str = "unknown"
    alias: Optional[str] = None


_PARAM_ANNOTATION_TAGS = {
    "KeyReplica": "replica",
    "Message": "message",
    "ClientContext": "ctx",
    "Txn": "txn",
    "AckRound": "ackround",
    "_WriteOp": "writeop",
    "_RoundOp": "roundop",
}

_PARAM_NAME_TAGS = {
    "replica": "replica",
    "message": "message",
    "ctx": "ctx",
    "txn": "txn",
    "op": "writeop",
    "round_": "ackround",
    "round_op": "roundop",
}


# ---------------------------------------------------------------------------
# The analysis
# ---------------------------------------------------------------------------

@dataclass
class HandlerReport:
    """Effects of one dispatch handler of one engine class."""

    engine: str
    handler: str
    msg_types: List[str]
    defined_in: str
    line: int
    effects: EffectSet = field(default_factory=EffectSet)


class EffectAnalysis:
    """Effect computation over one :class:`ProjectIndex`.

    Method effect sets are computed to a fixed point: each pass
    re-analyzes every reachable method against the previous pass's
    memo, so helper-call cycles (``_mark_durable`` ->
    ``_recheck_causal_waiters`` -> ``_apply_update`` ->
    ``_ensure_persisted`` -> ``_mark_durable``) converge instead of
    recursing.
    """

    MAX_PASSES = 12

    def __init__(self, index: ProjectIndex):
        self.index = index
        self._memo: Dict[Tuple[str, str], EffectSet] = {}

    # -- public API -------------------------------------------------------

    def method_effects(self, class_name: str, method: str) -> EffectSet:
        key = (class_name, method)
        if key not in self._memo:
            self._compute_fixpoint(class_name, method)
        return self._memo.get(key, EffectSet())

    def handler_reports(self, class_name: str) -> List[HandlerReport]:
        """One report per distinct handler method of ``class_name``."""
        table = dispatch_table(self.index, class_name)
        by_handler: Dict[str, List[str]] = {}
        for msg, handler in table.items():
            by_handler.setdefault(handler, []).append(msg)
        reports = []
        for handler in sorted(by_handler):
            resolved = self.index.resolve_method(class_name, handler)
            if resolved is None:
                continue
            info, func = resolved
            reports.append(HandlerReport(
                engine=class_name, handler=handler,
                msg_types=sorted(by_handler[handler]),
                defined_in=info.path, line=func.lineno,
                effects=self.method_effects(class_name, handler)))
        return reports

    # -- fixed point ------------------------------------------------------

    def _compute_fixpoint(self, class_name: str, method: str) -> None:
        # Pass 0 discovers the reachable method set and seeds the memo.
        worklist = {(class_name, method)}
        analyzed: Set[Tuple[str, str]] = set()
        while worklist:
            key = worklist.pop()
            if key in analyzed:
                continue
            analyzed.add(key)
            effects, callees = self._analyze_once(*key)
            self._memo[key] = effects
            worklist.update(callees)
        # Iterate: effect sets grow monotonically through call edges.
        for _ in range(self.MAX_PASSES):
            changed = False
            for key in sorted(analyzed):
                fresh, _ = self._analyze_once(*key)
                old = self._memo[key]
                if (fresh.accesses.keys() != old.accesses.keys()
                        or fresh.unresolved.keys() != old.unresolved.keys()
                        or fresh.guarded_sends.keys()
                        != old.guarded_sends.keys()):
                    self._memo[key] = fresh
                    changed = True
            if not changed:
                break

    def _analyze_once(self, class_name: str,
                      method: str) -> Tuple[EffectSet, Set[Tuple[str, str]]]:
        """Analyze one method (or module function) body against the
        current memo.  Module functions use the owner ``"<module>"``."""
        effects = EffectSet()
        callees: Set[Tuple[str, str]] = set()
        if class_name == MODULE_OWNER:
            entry = self.index.functions.get(method)
            if entry is None:
                return effects, callees
            path, func = entry
            # The visitor only touches ``info.path``; the node is unused.
            info = ClassInfo(name=MODULE_OWNER, path=path, node=None,
                             bases=[])
        else:
            resolved = self.index.resolve_method(class_name, method)
            if resolved is None:
                return effects, callees
            info, func = resolved
        _MethodVisitor(self, class_name, info, func, effects, callees).run()
        return effects, callees


class _MethodVisitor:
    """Walks one method body, tracking a coarse local-type environment."""

    def __init__(self, analysis: EffectAnalysis, class_name: str,
                 info: ClassInfo, func: ast.FunctionDef,
                 effects: EffectSet, callees: Set[Tuple[str, str]]):
        self.analysis = analysis
        self.class_name = class_name
        self.info = info
        self.func = func
        self.effects = effects
        self.callees = callees
        self.env: Dict[str, _Binding] = {}
        self.local_defs: Dict[str, ast.FunctionDef] = {}
        #: Locations read by enclosing If/While tests — the guard set
        #: for any send recorded while inside those branches.
        self.guard_stack: List[frozenset] = []
        self._bind_params(func)

    def site(self, node: ast.AST, detail: str) -> Site:
        return Site(self.info.path, getattr(node, "lineno", self.func.lineno),
                    detail)

    # -- environment ------------------------------------------------------

    def _bind_params(self, func: ast.FunctionDef) -> None:
        for arg in func.args.args + func.args.kwonlyargs:
            if arg.arg == "self":
                self.env["self"] = _Binding(tag="engine")
                continue
            tag = None
            if arg.annotation is not None:
                ann = _annotation_tail(arg.annotation)
                tag = _PARAM_ANNOTATION_TAGS.get(ann)
            if tag is None:
                tag = _PARAM_NAME_TAGS.get(arg.arg, "unknown")
            self.env[arg.arg] = _Binding(tag=tag)

    def tag_of(self, node: ast.AST) -> _Binding:
        """Receiver classification for an expression."""
        if isinstance(node, ast.Name):
            if node.id == "self":
                return _Binding(tag="engine")
            return self.env.get(node.id, _Binding())
        if isinstance(node, ast.Attribute):
            base = self.tag_of(node.value)
            if base.tag == "engine":
                if node.attr in SELF_ATTR_TAGS:
                    return _Binding(tag=SELF_ATTR_TAGS[node.attr])
                if node.attr in SELF_STATE_LOCATIONS:
                    return _Binding(tag="container",
                                    alias=SELF_STATE_LOCATIONS[node.attr])
                return _Binding(tag="engine-attr")
            if base.tag in ("writeop", "roundop"):
                if node.attr in ("ack_c", "ack_p", "acks"):
                    return _Binding(tag="ackround")
                return _Binding(tag="pure")
            if base.tag == "replica" and node.attr == "condition":
                return _Binding(tag="condition")
            if base.tag == "message":
                return _Binding(tag="pure")
            if base.tag == "ctx" and node.attr == "txn":
                return _Binding(tag="txn")
            return _Binding(tag=base.tag + "-attr"
                            if base.tag not in ("unknown", "pure", "local")
                            else base.tag)
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp, ast.Constant,
                             ast.Tuple, ast.GeneratorExp, ast.BinOp,
                             ast.Compare, ast.BoolOp, ast.UnaryOp,
                             ast.IfExp, ast.JoinedStr)):
            return _Binding(tag="local")
        if isinstance(node, ast.Call):
            return self._call_result_tag(node)
        if isinstance(node, ast.Subscript):
            base = self.tag_of(node.value)
            if base.alias is not None:
                return _Binding(tag=self._element_tag(base.alias),
                                alias=base.alias)
            return _Binding()
        return _Binding()

    @staticmethod
    def _element_tag(location: str) -> str:
        if location == "engine.outstanding_writes":
            return "writeop"
        if location == "engine.outstanding_rounds":
            return "roundop"
        return "unknown"

    def _call_result_tag(self, node: ast.Call) -> _Binding:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = self.tag_of(func.value)
            if base.tag == "replicatable" and func.attr == "get":
                return _Binding(tag="replica")
            if base.alias is not None and func.attr in ("get", "pop",
                                                        "setdefault"):
                return _Binding(tag=self._element_tag(base.alias),
                                alias=base.alias)
        if isinstance(func, ast.Name) and func.id in ("AckRound",):
            return _Binding(tag="ackround")
        if isinstance(func, ast.Name) and func.id in ("_WriteOp",):
            return _Binding(tag="writeop")
        if isinstance(func, ast.Name) and func.id in ("_RoundOp",):
            return _Binding(tag="roundop")
        return _Binding()

    # -- traversal --------------------------------------------------------

    def run(self) -> None:
        # Nested function definitions (persist runners, watchdog checks)
        # are analyzed when referenced; collect them first.
        for stmt in ast.walk(self.func):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt is not self.func:
                self.local_defs[stmt.name] = stmt
        for stmt in self.func.body:
            self._visit_stmt(stmt)
        # Closures scheduled via sim.call_at(...) or processes built from
        # nested defs contribute their effects to this handler.
        for nested in self.local_defs.values():
            for stmt in nested.body:
                self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # analyzed via local_defs
        if isinstance(stmt, ast.Assign):
            self._visit_expr(stmt.value)
            binding = self.tag_of(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, binding, stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_expr(stmt.value)
                self._assign_target(stmt.target, self.tag_of(stmt.value),
                                    stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value)
            self._assign_target(stmt.target, _Binding(tag="local"), stmt,
                                aug=True)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter)
            self._bind_loop_target(stmt.target, stmt.iter)
            for s in stmt.body + stmt.orelse:
                self._visit_stmt(s)
            return
        if isinstance(stmt, (ast.While, ast.If)):
            self.guard_stack.append(self._test_locations(stmt.test))
            try:
                for s in stmt.body + stmt.orelse:
                    self._visit_stmt(s)
            finally:
                self.guard_stack.pop()
            return
        if isinstance(stmt, ast.Try):
            for s in stmt.body + stmt.orelse + stmt.finalbody:
                self._visit_stmt(s)
            for handler in stmt.handlers:
                for s in handler.body:
                    self._visit_stmt(s)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._visit_expr(item.context_expr)
            for s in stmt.body:
                self._visit_stmt(s)
            return
        if isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._visit_expr(stmt.value)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    base = self.tag_of(target.value)
                    if base.alias is not None:
                        self.effects.add(base.alias, "wm",
                                         self.site(stmt, "del"))
                self._visit_expr(target)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._visit_expr(child)
            return
        # pass / break / continue / global / import — nothing to do.

    def _bind_loop_target(self, target: ast.expr, source: ast.expr) -> None:
        binding = self.tag_of(source)
        if isinstance(target, ast.Name):
            if binding.alias is not None:
                self.env[target.id] = _Binding(
                    tag=self._element_tag(binding.alias),
                    alias=binding.alias)
            else:
                self.env[target.id] = _Binding(tag="local")
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    self.env[elt.id] = _Binding(tag="local")

    def _assign_target(self, target: ast.expr, binding: _Binding,
                       stmt: ast.stmt, aug: bool = False) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = binding
            return
        if isinstance(target, ast.Attribute):
            base = self.tag_of(target.value)
            key = (base.tag, target.attr)
            if key in ATTR_WRITES:
                loc, mode = ATTR_WRITES[key]
                self.effects.add(loc, mode,
                                 self.site(stmt, f"{target.attr} ="))
                return
            if base.tag == "engine":
                loc = SELF_STATE_LOCATIONS.get(target.attr)
                if loc is not None:
                    # Counter increments commute; rebinds are raw.
                    mode = "wm" if aug else "w"
                    self.effects.add(loc, mode,
                                     self.site(stmt, f"self.{target.attr}"))
                return
            if base.tag in ("ctx", "txn", "message"):
                self.effects.add("ctx", "wm",
                                 self.site(stmt, f"{base.tag} attr write"))
                return
            if base.tag == "replica":
                self.effects.add("replica.applied", "w",
                                 self.site(stmt, f"replica.{target.attr} ="))
            return
        if isinstance(target, ast.Subscript):
            base = self.tag_of(target.value)
            self._visit_expr(target.value)
            self._visit_expr(target.slice)
            if base.alias is not None:
                self.effects.add(base.alias, "wm",
                                 self.site(stmt, "keyed insert"))
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, _Binding(tag="local"), stmt)

    def _test_locations(self, test: ast.expr) -> frozenset:
        """Visit a branch test, recording its effects normally, and
        return the non-exempt locations it touches (the guard set)."""
        saved = self.effects
        probe = EffectSet()
        self.effects = probe
        try:
            self._visit_expr(test)
        finally:
            self.effects = saved
        saved.merge(probe)
        return frozenset(loc for loc in probe.locations()
                         if loc not in EXEMPT_LOCATIONS)

    # -- expressions ------------------------------------------------------

    def _visit_expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node)
            return
        if isinstance(node, ast.Attribute):
            self._record_attr_read(node)
            self._visit_expr(node.value)
            return
        if isinstance(node, ast.Lambda):
            self._visit_expr(node.body)
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._visit_expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, ast.comprehension):
                self._visit_expr(child.iter)
                for cond in child.ifs:
                    self._visit_expr(cond)

    def _record_attr_read(self, node: ast.Attribute) -> None:
        base = self.tag_of(node.value)
        key = (base.tag, node.attr)
        if key in ATTR_READS:
            self.effects.add(ATTR_READS[key], "r",
                             self.site(node, f".{node.attr}"))
        elif base.tag == "engine" and node.attr in SELF_STATE_LOCATIONS:
            self.effects.add(SELF_STATE_LOCATIONS[node.attr], "r",
                             self.site(node, f"self.{node.attr}"))

    def _visit_call(self, node: ast.Call) -> None:
        for arg in node.args:
            self._visit_expr(arg)
        for kw in node.keywords:
            self._visit_expr(kw.value)
        func = node.func
        if isinstance(func, ast.Name):
            self._visit_name_call(node, func)
            return
        if isinstance(func, ast.Attribute):
            self._visit_attr_call(node, func)
            return
        self._visit_expr(func)

    def _visit_name_call(self, node: ast.Call, func: ast.Name) -> None:
        name = func.id
        if name in _PURE_BUILTINS:
            return
        if name in self.local_defs:
            return  # nested def: body analyzed in run()
        if self.analysis.index.classes.get(name) is not None:
            return  # constructor of an analyzed class: allocation is pure
        if name == "super":
            return
        binding = self.env.get(name)
        if binding is not None and binding.tag in ("local", "pure"):
            return
        if name in self.analysis.index.functions:
            self.callees.add((MODULE_OWNER, name))
            callee = self.analysis._memo.get((MODULE_OWNER, name))
            if callee is not None:
                self.effects.merge(callee)
            return
        self.effects.add_unresolved(name, self.site(node, f"{name}(...)"))

    def _visit_attr_call(self, node: ast.Call, func: ast.Attribute) -> None:
        base = self.tag_of(func.value)
        method = func.attr
        # self.method(...) / super().method(...): interprocedural.
        if base.tag == "engine" or _is_super_call(func.value):
            if method in SELF_ATTR_TAGS or method in SELF_STATE_LOCATIONS:
                self._visit_expr(func.value)
                return
            resolved = self.analysis.index.resolve_method(
                self.class_name, method)
            if resolved is not None:
                self.callees.add((self.class_name, method))
                callee = self.analysis._memo.get((self.class_name, method))
                if callee is not None:
                    self.effects.merge(callee)
                return
            self.effects.add_unresolved(
                f"self.{method}", self.site(node, f"self.{method}(...)"))
            return
        if base.tag == "sim":
            self._visit_sim_call(node, method)
            return
        effects = self._call_effects(base, method, node)
        if effects is not None:
            site = self.site(node, f".{method}()")
            for loc, mode in effects:
                self.effects.add(loc, mode, site)
                if loc == "net.send" and self.guard_stack:
                    guard = frozenset().union(*self.guard_stack)
                    self.effects.add_guarded_send(site, guard)
            return
        if base.tag in _TAG_WILDCARD_EFFECTS:
            for loc, mode in _TAG_WILDCARD_EFFECTS[base.tag]:
                self.effects.add(loc, mode, self.site(node, f".{method}()"))
            return
        if base.alias is not None:
            self._visit_container_call(node, base.alias, method)
            return
        if base.tag in ("local", "pure", "message") \
                or method in _PURE_METHODS:
            self._visit_expr(func.value)
            return
        self._visit_expr(func.value)
        self.effects.add_unresolved(
            f"{base.tag}.{method}",
            self.site(node, f"{_call_repr(func)}(...)"))

    def _call_effects(self, base: _Binding, method: str,
                      node: ast.Call) -> Optional[List[Tuple[str, str]]]:
        effects = METHOD_EFFECTS.get((base.tag, method))
        if effects is None:
            return None
        if base.tag == "store" and method == "put" and node.args:
            # ``store.put(key, replica.applied_value)`` installs the
            # LWW winner: convergent regardless of interleaving.
            value = node.args[-1]
            if (isinstance(value, ast.Attribute)
                    and self.tag_of(value.value).tag == "replica"
                    and value.attr == "applied_value"):
                return [("store.slot", "wm")]
        return effects

    def _visit_sim_call(self, node: ast.Call, method: str) -> None:
        if method not in _SIM_SCHEDULING:
            if method in ("run", "step"):
                self.effects.add_unresolved(
                    f"sim.{method}", self.site(node, f"sim.{method}(...)"))
            return
        self.effects.add("sched", "wm", self.site(node, f"sim.{method}()"))
        # Generators / callbacks that the scheduler will run carry their
        # effects into this handler's set (they start at the same
        # simulated timestamp unless explicitly delayed; being coarse
        # here only over-approximates).
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._inherit_scheduled(arg)

    def _inherit_scheduled(self, arg: ast.expr) -> None:
        if isinstance(arg, ast.Call):
            func = arg.func
            if isinstance(func, ast.Attribute) \
                    and self.tag_of(func.value).tag == "engine":
                resolved = self.analysis.index.resolve_method(
                    self.class_name, func.attr)
                if resolved is not None:
                    self.callees.add((self.class_name, func.attr))
                    callee = self.analysis._memo.get(
                        (self.class_name, func.attr))
                    if callee is not None:
                        self.effects.merge(callee)
        elif isinstance(arg, ast.Name) and arg.id in self.local_defs:
            pass  # nested defs already analyzed in run()
        elif isinstance(arg, ast.Lambda):
            self._visit_expr(arg.body)

    def _visit_container_call(self, node: ast.Call, location: str,
                              method: str) -> None:
        if method in _CONTAINER_READS:
            self.effects.add(location, "r", self.site(node, f".{method}()"))
        elif method in _KEYED_CONTAINER_WM:
            self.effects.add(location, "wm", self.site(node, f".{method}()"))
        elif method in _CONTAINER_RAW:
            self.effects.add(location, "w", self.site(node, f".{method}()"))
        else:
            self.effects.add_unresolved(
                f"{location}.{method}", self.site(node, f".{method}(...)"))


def _is_super_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "super")


def _call_repr(func: ast.Attribute) -> str:
    parts = [func.attr]
    node: ast.expr = func.value
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _annotation_tail(node: ast.expr) -> str:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1]
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


# ---------------------------------------------------------------------------
# Conflicts
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Conflict:
    """One conflicting co-schedulable handler pair on one location."""

    engine: str
    location: str
    handler_a: str
    handler_b: str
    modes_a: Tuple[str, ...]
    modes_b: Tuple[str, ...]
    site: Site

    @property
    def pair(self) -> Tuple[str, str]:
        return tuple(sorted((self.handler_a, self.handler_b)))


def conflicts(reports: Iterable[HandlerReport]) -> List[Conflict]:
    """All raw-write conflicts among co-schedulable handlers.

    Every pair (including a handler against a second instance of
    itself) is co-schedulable; a conflict exists when one side raw-
    writes a non-exempt location the other side touches at all.  The
    witness site is the raw write, so a commutativity waiver sits next
    to the code that must commute.
    """
    reports = list(reports)
    found: List[Conflict] = []
    for i, a in enumerate(reports):
        for b in reports[i:]:
            for loc, site in a.effects.raw_writes():
                if loc in EXEMPT_LOCATIONS:
                    continue
                other = b.effects.modes(loc)
                if other:
                    found.append(Conflict(
                        engine=a.engine, location=loc,
                        handler_a=a.handler, handler_b=b.handler,
                        modes_a=tuple(sorted(a.effects.modes(loc))),
                        modes_b=tuple(sorted(other)), site=site))
            if b is not a:
                for loc, site in b.effects.raw_writes():
                    if loc in EXEMPT_LOCATIONS:
                        continue
                    other = a.effects.modes(loc)
                    if other and "w" not in other:
                        # w-vs-w already reported from a's side.
                        found.append(Conflict(
                            engine=a.engine, location=loc,
                            handler_a=b.handler, handler_b=a.handler,
                            modes_a=tuple(sorted(b.effects.modes(loc))),
                            modes_b=tuple(sorted(other)), site=site))
    return found


def analyze_engines(contexts: Iterable) -> Dict[str, List[HandlerReport]]:
    """Handler reports for every engine class in the context set."""
    index = ProjectIndex.from_contexts(contexts)
    analysis = EffectAnalysis(index)
    out: Dict[str, List[HandlerReport]] = {}
    for info in index.engine_classes():
        out[info.name] = analysis.handler_reports(info.name)
    return out
