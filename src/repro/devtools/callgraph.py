"""Class/method index for the ordering analysis (purely AST-based).

The effect analysis (:mod:`repro.devtools.effects`) needs to follow
``self._helper(...)`` calls from message handlers through the engine
class hierarchy — including subclass overrides, since
``LeaderProtocolNode`` and ``HybridProtocolNode`` inherit
``_DISPATCH`` from :class:`~repro.core.engine.ProtocolNode`.  This
module builds that view from parsed sources alone: unlike the
dispatch-completeness rule it never imports the code under analysis,
so lint fixtures (deliberately broken engines) can be analyzed without
being importable.

Resolution is by class *name* across the analyzed file set.  Class
names are unique in this repo (and the analysis reports a finding
rather than guessing if they ever stop being unique).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["ClassInfo", "ProjectIndex", "dispatch_table"]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class ClassInfo:
    """One class definition as the analysis sees it."""

    name: str
    path: str
    node: ast.ClassDef
    bases: List[str]
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)

    @property
    def lineno(self) -> int:
        return self.node.lineno


def _tail_name(node: ast.AST) -> str:
    """``Base`` or ``mod.Base`` -> ``"Base"`` (tail name)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class ProjectIndex:
    """All top-level classes across a set of parsed file contexts."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        self.duplicates: List[str] = []
        #: Module-level functions: name -> (path, node).  Helpers like
        #: ``_applied_at_least`` (predicate factories) live here.
        self.functions: Dict[str, Tuple[str, ast.FunctionDef]] = {}

    @classmethod
    def from_contexts(cls, contexts: Iterable) -> "ProjectIndex":
        index = cls()
        for ctx in contexts:
            if ctx.tree is None:
                continue
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef):
                    index._add_class(node, ctx.path)
                elif isinstance(node, _FUNCTION_NODES):
                    index.functions.setdefault(node.name, (ctx.path, node))
        return index

    def _add_class(self, node: ast.ClassDef, path: str) -> None:
        if node.name in self.classes:
            self.duplicates.append(node.name)
            return
        info = ClassInfo(name=node.name, path=path, node=node,
                         bases=[_tail_name(b) for b in node.bases])
        for item in node.body:
            if isinstance(item, _FUNCTION_NODES):
                info.methods[item.name] = item
        self.classes[node.name] = info

    # -- hierarchy -------------------------------------------------------

    def mro(self, class_name: str) -> List[ClassInfo]:
        """Left-to-right depth-first linearization over known classes.

        Good enough for the single-inheritance engine hierarchy; bases
        outside the analyzed file set are simply absent.
        """
        seen: List[ClassInfo] = []
        names = set()

        def visit(name: str) -> None:
            info = self.classes.get(name)
            if info is None or info.name in names:
                return
            names.add(info.name)
            seen.append(info)
            for base in info.bases:
                visit(base)

        visit(class_name)
        return seen

    def resolve_method(
            self, class_name: str,
            method: str) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        """The defining class and AST for ``class_name.method`` (MRO)."""
        for info in self.mro(class_name):
            func = info.methods.get(method)
            if func is not None:
                return info, func
        return None

    def engine_classes(self) -> List[ClassInfo]:
        """Classes that define or inherit a ``_DISPATCH`` table, sorted
        by (path, line) for deterministic reporting."""
        found = []
        for info in self.classes.values():
            if any(self._defines_dispatch(c) for c in self.mro(info.name)):
                found.append(info)
        return sorted(found, key=lambda c: (c.path, c.lineno))

    @staticmethod
    def _defines_dispatch(info: ClassInfo) -> bool:
        for item in info.node.body:
            targets = []
            if isinstance(item, ast.Assign):
                targets = item.targets
            elif isinstance(item, ast.AnnAssign) and item.value is not None:
                targets = [item.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "_DISPATCH":
                    return True
        return False


def dispatch_table(index: ProjectIndex,
                   class_name: str) -> Dict[str, str]:
    """``MsgType`` member name -> handler method name for a class.

    Walks the MRO so subclasses that do not redefine ``_DISPATCH``
    inherit the base table; a subclass's own table wins wholesale (the
    engine semantics: ``_DISPATCH`` is rebound, not merged).
    """
    for info in index.mro(class_name):
        table = _parse_dispatch(info.node)
        if table is not None:
            return table
    return {}


def _parse_dispatch(cls: ast.ClassDef) -> Optional[Dict[str, str]]:
    for item in cls.body:
        value = None
        if isinstance(item, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "_DISPATCH"
                   for t in item.targets):
                value = item.value
        elif (isinstance(item, ast.AnnAssign)
              and isinstance(item.target, ast.Name)
              and item.target.id == "_DISPATCH"):
            value = item.value
        if value is None:
            continue
        table: Dict[str, str] = {}
        if isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                member = _tail_name(key) if key is not None else ""
                if member and isinstance(val, ast.Constant) \
                        and isinstance(val.value, str):
                    table[member] = val.value
        return table
    return None
