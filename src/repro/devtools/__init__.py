"""reprolint — project-specific static analysis.

A small AST-based rule engine enforcing the invariants this repro's
evaluation depends on but that no generic linter knows about:

* determinism — all randomness flows through :class:`repro.sim.rng.
  SeededStream`; no wall-clock reads or salted ``hash()`` inside
  ``src/repro/`` (the exact bug class PR 1 fixed in ``fork()``);
* tracing stays free — ``tracer.emit``/``tracer.span`` on hot paths
  sit under a ``tracer.enabled`` guard, and tracer null-checks use
  ``is not None`` (an *empty* tracer is falsy; PR 1 again);
* protocol completeness — every :class:`~repro.core.messages.MsgType`
  member has a handler in every engine's dispatch table;
* ordered effects — no message sends / event scheduling from
  ``set``/``dict.keys()`` iteration order.

Findings can be waived inline::

    risky_call()  # repro: lint-ok[rule-id] one-line justification

Run it as ``repro lint src tests benchmarks`` (or via pre-commit / CI).
"""

from repro.devtools.engine import (
    FileContext,
    LintResult,
    UsageError,
    format_text,
    iter_python_files,
    lint_sources,
    run_lint,
    to_json,
)
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, all_rules, get_rule, load_rules

__all__ = [
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "UsageError",
    "all_rules",
    "format_text",
    "get_rule",
    "iter_python_files",
    "lint_sources",
    "load_rules",
    "run_lint",
    "to_json",
]
