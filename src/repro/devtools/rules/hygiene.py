"""mutable-default / bare-except hygiene, scoped to src/repro.

* **mutable-default** — a ``def f(x=[])`` default is created once and
  shared across calls *and across simulated nodes*: state bleeding
  between replicas through a default argument is a protocol bug that
  looks like a consistency violation.  Use ``None`` + construct inside.

* **bare-except** — ``except:`` swallows ``KeyboardInterrupt`` /
  ``SystemExit`` and, worse here, the simulator kernel's internal
  control-flow exceptions, turning a crashed process into silent wrong
  numbers.  Catch a concrete exception type.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import file_rule, in_src
from repro.devtools.rules.util import code, location

MUTABLE_RULE = "mutable-default"
EXCEPT_RULE = "bare-except"

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "defaultdict", "deque", "Counter",
    "OrderedDict", "bytearray",
})


def _is_mutable(default: ast.AST) -> bool:
    if isinstance(default, (ast.List, ast.Dict, ast.Set,
                            ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(default, ast.Call):
        func = default.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else "")
        return name in _MUTABLE_CALLS
    return False


@file_rule(
    MUTABLE_RULE,
    summary="mutable default argument shared across calls",
    guards="no state bleeding between simulated nodes via defaults",
    scope=in_src)
def check_mutable_default(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable(default):
                line, col = location(default)
                yield Finding(
                    MUTABLE_RULE, ctx.path, line, col,
                    f"mutable default `{code(default)}` is shared "
                    f"across calls; default to None and construct "
                    f"inside the function")


@file_rule(
    EXCEPT_RULE,
    summary="bare `except:` swallows kernel control flow",
    guards="simulator-kernel exceptions surface instead of becoming "
           "silent wrong numbers",
    scope=in_src)
def check_bare_except(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            line, col = location(node)
            yield Finding(
                EXCEPT_RULE, ctx.path, line, col,
                "bare `except:` catches SystemExit/KeyboardInterrupt "
                "and kernel control-flow exceptions; name the "
                "exception type")
