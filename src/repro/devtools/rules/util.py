"""Shared AST helpers for rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["build_parents", "code", "dotted_name", "enclosing_function",
           "iter_ancestors", "location"]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def build_parents(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child -> parent map for ancestor walks."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def code(node: Optional[ast.AST]) -> str:
    """Source-ish text of a node (for substring checks and messages)."""
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return ast.dump(node)


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, else ``""``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def iter_ancestors(node: ast.AST,
                   parents: Dict[ast.AST, ast.AST]) -> Iterator[ast.AST]:
    while node in parents:
        node = parents[node]
        yield node


def enclosing_function(
        node: ast.AST,
        parents: Dict[ast.AST, ast.AST]) -> Optional[ast.AST]:
    for ancestor in iter_ancestors(node, parents):
        if isinstance(ancestor, _FUNCTION_NODES):
            return ancestor
    return None


def location(node: ast.AST) -> Tuple[int, int]:
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0)
