"""tracer-guard / tracer-truthiness: tracing must stay free when off.

Two invariants from the observability PRs:

* **tracer-guard** — ``tracer.emit(...)`` / ``tracer.span(...)`` on a
  hot path must sit under a ``tracer.enabled`` check, otherwise every
  simulated message pays argument-marshalling cost even with tracing
  off (the equivalence tests in ``tests/obs`` only hold because the
  guarded sites compile to one attribute load).  Recognised guards:
  an enclosing ``if`` whose test mentions ``.enabled`` (directly or
  via a local like ``tracing = self.tracer.enabled``), or an
  early-return ``if ... not ... enabled: return`` above the call.

* **tracer-truthiness** — tracer null-checks must use ``is not None``.
  A :class:`~repro.sim.trace.Tracer` defines ``__len__``, so an *empty*
  tracer is falsy: ``tracer or NullTracer()`` silently replaced a real
  tracer with a null one until PR 1 fixed three such sites.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.devtools.findings import Finding
from repro.devtools.registry import file_rule, in_src
from repro.devtools.rules.util import (
    build_parents,
    code,
    enclosing_function,
    iter_ancestors,
    location,
)

GUARD_RULE = "tracer-guard"
TRUTHY_RULE = "tracer-truthiness"

_EMIT_METHODS = frozenset({"emit", "span", "instant"})
_EXIT_NODES = (ast.Return, ast.Continue, ast.Raise)


def _is_tracer(node: ast.AST) -> bool:
    """Does this expression denote a tracer object itself?"""
    if isinstance(node, ast.Name):
        return "tracer" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "tracer" in node.attr.lower()
    return False


def _guard_names(func: Optional[ast.AST]) -> Set[str]:
    """Locals assigned from ``...enabled`` in ``func`` (e.g.
    ``tracing = self.tracer.enabled``)."""
    if func is None:
        return set()
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and ".enabled" in code(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _test_guards(test: ast.AST, guard_names: Set[str]) -> bool:
    if ".enabled" in code(test):
        return True
    return any(isinstance(n, ast.Name) and n.id in guard_names
               for n in ast.walk(test))


def _is_guarded(call: ast.Call, parents: Dict[ast.AST, ast.AST]) -> bool:
    func = enclosing_function(call, parents)
    guard_names = _guard_names(func)
    for ancestor in iter_ancestors(call, parents):
        if (isinstance(ancestor, ast.If)
                and _test_guards(ancestor.test, guard_names)):
            return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    if func is None:
        return False
    # Early-return guard above the call, e.g.
    #   if tracer is None or not tracer.enabled:
    #       return
    call_line = getattr(call, "lineno", 0)
    for node in ast.walk(func):
        if (isinstance(node, ast.If)
                and getattr(node, "lineno", call_line) < call_line
                and node.body
                and all(isinstance(s, _EXIT_NODES) for s in node.body)
                and not node.orelse
                and _test_guards(node.test, guard_names)):
            return True
    return False


@file_rule(
    GUARD_RULE,
    summary="tracer.emit/span without a tracer.enabled guard",
    guards="tracing-off hot paths cost one attribute load "
           "(tests/obs equivalence suite)",
    scope=in_src)
def check_guard(ctx) -> Iterator[Finding]:
    parents = build_parents(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _EMIT_METHODS
                and _is_tracer(node.func.value)):
            continue
        if _is_guarded(node, parents):
            continue
        line, col = location(node)
        yield Finding(
            GUARD_RULE, ctx.path, line, col,
            f"{code(node.func)}(...) runs even with tracing off; guard "
            f"it with `if <tracer>.enabled:` (or an early return)")


@file_rule(
    TRUTHY_RULE,
    summary="tracer null-check via truthiness instead of `is not None`",
    guards="an empty Tracer is falsy — `tracer or NullTracer()` "
           "dropped real tracers (PR-1 bug)",
    scope=in_src)
def check_truthiness(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        tests: List[ast.AST] = []
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            test = node.test
            if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
                test = test.operand
            tests.append(test)
        elif isinstance(node, ast.BoolOp):
            # Any tracer operand of and/or is a truthiness test
            # (`tracer or NullTracer()` was the PR-1 bug shape).
            tests.extend(node.values)
        for test in tests:
            if _is_tracer(test):
                line, col = location(node)
                yield Finding(
                    TRUTHY_RULE, ctx.path, line, col,
                    f"`{code(test)}` is checked by truthiness, but an "
                    f"empty tracer is falsy; compare `is not None`")
