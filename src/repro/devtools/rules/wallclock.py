"""wall-clock-ban: no real-time reads or salted ``hash()`` in src/repro.

Simulated time is the only clock the models may observe — a wall-clock
read inside ``src/repro/`` either leaks host speed into results or is
dead weight.  Builtin ``hash()`` is process-salted for ``str``/``bytes``
(PYTHONHASHSEED), the exact bug that made ``SeededStream.fork`` differ
across processes before PR 1; anything derived from it (bank mapping,
fork seeds, bucketing) silently varies between runs.  Use
``hashlib.blake2b`` for stable digests or plain modulo for int keys.

Legitimate wall-clock use carries an inline waiver saying so.  Two
families exist today, both in ``repro.obs``:

* the kernel profiler (``obs/profile.py``) — measuring real elapsed
  time *is* its job: run wall clock, per-step attribution windows,
  handler resume segments, and the live-snapshot fix all bracket real
  time with ``perf_counter``;
* the frame sampler (``obs/perf.py``) — its sample weights are the
  real seconds between polls of ``sys._current_frames()``.

Both run strictly *outside* the simulation's observable behavior: they
read clocks but never feed them back into scheduling, so determinism
holds (enforced by the byte-identity suite in
``tests/obs/test_tracing_equivalence.py``).  A waiver on code whose
clock reads *can* influence event order is a bug, not a style issue —
reject it in review.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import file_rule, in_src
from repro.devtools.rules.util import dotted_name, location

RULE_ID = "wall-clock-ban"

_BANNED_CALLS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
}


@file_rule(
    RULE_ID,
    summary="wall-clock read or builtin hash() inside src/repro/",
    guards="host-independent results; unsalted cross-process hashing "
           "(PR-1 SeededStream.fork bug)",
    scope=in_src)
def check(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        line, col = location(node)
        name = dotted_name(node.func)
        if name in _BANNED_CALLS:
            yield Finding(
                RULE_ID, ctx.path, line, col,
                f"{name}() reads the wall clock; simulation code must "
                f"only observe sim.now")
        elif isinstance(node.func, ast.Name) and node.func.id == "hash":
            yield Finding(
                RULE_ID, ctx.path, line, col,
                "builtin hash() is process-salted for str/bytes "
                "(PYTHONHASHSEED); use hashlib.blake2b for stable "
                "digests or modulo for int keys")
