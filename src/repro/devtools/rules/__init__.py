"""The reprolint rule set.

Importing this package registers every rule (see
:mod:`repro.devtools.registry`).  One module per invariant family:

* :mod:`~repro.devtools.rules.rng` — rng-discipline
* :mod:`~repro.devtools.rules.wallclock` — wall-clock-ban
* :mod:`~repro.devtools.rules.tracer` — tracer-guard, tracer-truthiness
* :mod:`~repro.devtools.rules.iteration` — unordered-iteration
* :mod:`~repro.devtools.rules.dispatch` — dispatch-completeness
* :mod:`~repro.devtools.rules.hygiene` — mutable-default, bare-except
* :mod:`~repro.devtools.rules.ordering` — effect-conflict,
  schedule-sensitive-send, untracked-effect
"""

from repro.devtools.rules import (  # noqa: F401  (imported for registration)
    dispatch,
    hygiene,
    iteration,
    ordering,
    rng,
    tracer,
    wallclock,
)
