"""Ordering rules: the static half of the determinism certificate.

ROADMAP item 1 wants DES-kernel surgery (calendar queue, trampoline
flattening) that reshuffles *tie-breaking order* for same-timestamp
events.  That surgery is only safe if co-scheduled message handlers
commute on engine state.  These three project rules surface the
interprocedural effect analysis (:mod:`repro.devtools.effects`) through
the ordinary lint machinery so the certificate is enforced in CI and
exceptions carry inline justifications:

* ``effect-conflict`` — a handler raw-writes an abstract location that
  a co-schedulable handler also touches; the pair's outcome depends on
  pop order unless the code commutes for a reason the analysis cannot
  see (version guards, wholesale consumption).  Waive at the raw-write
  site with the reason.
* ``schedule-sensitive-send`` — a message send guarded by a branch that
  reads raw-written state: whether the send happens at all depends on
  tie order, which cascades the divergence across the cluster.
* ``untracked-effect`` — a call inside a handler escaped the effect
  model (no intrinsic, not resolvable); the certificate has a hole
  until the call is modeled, refactored, or waived.

The dynamic tie-batch sanitizer (``repro order --sanitize``) permutes
real tie batches and checks byte-identity — these rules are the static
over-approximation, the sanitizer the ground truth probe; ``repro
order`` cross-references the two.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.devtools.effects import HandlerReport, analyze_engines, conflicts
from repro.devtools.findings import Finding
from repro.devtools.registry import in_src, project_rule

RULE_CONFLICT = "effect-conflict"
RULE_SEND = "schedule-sensitive-send"
RULE_UNTRACKED = "untracked-effect"

#: Analysis results per context set.  The three rules run back-to-back
#: over the same parsed files inside one lint run; keying on context
#: object identity makes the second and third rule free.
_CACHE: Dict[Tuple[int, ...], Dict[str, List[HandlerReport]]] = {}
_CACHE_MAX = 4


def engine_reports(contexts) -> Dict[str, List[HandlerReport]]:
    """Handler effect reports for every engine in ``contexts`` (cached
    on context identity within a lint run)."""
    key = tuple(sorted(id(ctx) for ctx in contexts))
    if key not in _CACHE:
        if len(_CACHE) >= _CACHE_MAX:
            _CACHE.clear()
        _CACHE[key] = analyze_engines(contexts)
    return _CACHE[key]


def _format_pairs(pairs) -> str:
    return ", ".join(f"{a}~{b}" for a, b in sorted(pairs))


@project_rule(
    RULE_CONFLICT,
    summary="co-schedulable handlers have order-dependent effects on "
            "shared engine state",
    guards="tie-breaking freedom for the DES kernel (ROADMAP item 1): "
           "same-timestamp handler pairs must commute on state or carry "
           "a justified waiver",
    scope=in_src)
def check_conflicts(contexts) -> Iterator[Finding]:
    grouped: Dict[Tuple[str, int, str], Dict] = {}
    for engine in sorted(engine_reports(contexts)):
        for conflict in conflicts(engine_reports(contexts)[engine]):
            key = (conflict.site.path, conflict.site.line, conflict.location)
            entry = grouped.setdefault(
                key, {"site": conflict.site, "pairs": set(),
                      "engines": set()})
            entry["pairs"].add(conflict.pair)
            entry["engines"].add(engine)
    for (path, line, location) in sorted(grouped):
        entry = grouped[(path, line, location)]
        site = entry["site"]
        yield Finding(
            RULE_CONFLICT, path, line, 0,
            f"raw write to {location} ({site.detail}) does not commute "
            f"with co-scheduled handlers ({_format_pairs(entry['pairs'])});"
            f" prove it commutes and waive with the reason, or restructure",
            extra={"location": location,
                   "engines": sorted(entry["engines"]),
                   "pairs": [list(p) for p in sorted(entry["pairs"])]})


@project_rule(
    RULE_SEND,
    summary="a message send is guarded by raw-written state",
    guards="divergence containment: a send conditioned on racy state "
           "turns one node's tie-order into cluster-visible behavior",
    scope=in_src)
def check_guarded_sends(contexts) -> Iterator[Finding]:
    reports = engine_reports(contexts)
    seen = set()
    for engine in sorted(reports):
        raw_locs = set()
        for report in reports[engine]:
            raw_locs.update(loc for loc, _ in report.effects.raw_writes())
        for report in reports[engine]:
            for (site, guard) in report.effects.guarded_sends:
                hot = sorted(set(guard) & raw_locs)
                if not hot:
                    continue
                key = (site.path, site.line)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    RULE_SEND, site.path, site.line, 0,
                    f"send in {engine}.{report.handler} is guarded by "
                    f"raw-written state ({', '.join(hot)}): whether it "
                    f"fires depends on same-timestamp pop order",
                    extra={"handler": report.handler, "engine": engine,
                           "guard_locations": hot})


@project_rule(
    RULE_UNTRACKED,
    summary="a handler call escapes the effect model",
    guards="certificate completeness: an unmodeled call could hide a "
           "raw write the conflict rule would never see",
    scope=in_src)
def check_untracked(contexts) -> Iterator[Finding]:
    reports = engine_reports(contexts)
    seen = set()
    for engine in sorted(reports):
        for report in reports[engine]:
            for call, site in sorted(report.effects.unresolved.items()):
                key = (site.path, site.line, call)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    RULE_UNTRACKED, site.path, site.line, 0,
                    f"call {call!r} in {engine}.{report.handler} has no "
                    f"effect model: add an intrinsic to METHOD_EFFECTS, "
                    f"make it resolvable, or waive with the reason",
                    extra={"call": call, "engine": engine,
                           "handler": report.handler})
