"""dispatch-completeness: every MsgType has a handler in every engine.

Table 3's protocols only work if every message kind that can arrive is
handled — a missing entry is a silent drop that shifts benchmark
numbers without failing a test until some model exercises the path.
The engines declare their dispatch as a class-level ``_DISPATCH``
mapping (``MsgType -> handler method name``) exactly so this rule can
*import* each engine class and inspect coverage without running a
simulation, subclass overrides included via the MRO.

This is a project rule: it fires once per lint run, anchored at the
engine's class definition, and is waivable there like any finding.
"""

from __future__ import annotations

import ast
import importlib
from typing import Iterator, List, Optional, Tuple

from repro.devtools.findings import Finding
from repro.devtools.registry import in_src, project_rule
from repro.devtools.rules.util import location

RULE_ID = "dispatch-completeness"

#: (module, class, path suffix) for every engine with a dispatch path.
ENGINE_SPECS: Tuple[Tuple[str, str, str], ...] = (
    ("repro.core.engine", "ProtocolNode", "repro/core/engine.py"),
    ("repro.hybrid.engine", "HybridProtocolNode", "repro/hybrid/engine.py"),
    ("repro.variants.leader", "LeaderProtocolNode",
     "repro/variants/leader.py"),
)


def inspect_engine(module_name: str, class_name: str,
                   enum=None) -> List[str]:
    """Import ``module_name.class_name`` and report dispatch problems.

    Returns human-readable problem strings (empty = complete).  The
    ``enum`` parameter exists for fixture tests; it defaults to the
    real :class:`~repro.core.messages.MsgType`.
    """
    if enum is None:
        from repro.core.messages import MsgType
        enum = MsgType
    try:
        cls = getattr(importlib.import_module(module_name), class_name)
    except Exception as exc:
        return [f"cannot import {module_name}.{class_name}: {exc}"]
    table = getattr(cls, "_DISPATCH", None)
    if table is None:
        return [f"{class_name} has no _DISPATCH table to inspect "
                f"(declare MsgType -> handler-name at class level)"]
    problems = []
    missing = [member.name for member in enum if member not in table]
    if missing:
        problems.append(
            f"{class_name}._DISPATCH does not handle "
            f"{enum.__name__} member(s): {', '.join(missing)}")
    for member, handler_name in table.items():
        if not callable(getattr(cls, handler_name, None)):
            problems.append(
                f"{class_name}._DISPATCH maps {member.name} to "
                f"{handler_name!r}, which is not a method of the class")
    return problems


def _class_def_line(tree: Optional[ast.AST],
                    class_name: str) -> Tuple[int, int]:
    if tree is not None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                return location(node)
    return 1, 0


@project_rule(
    RULE_ID,
    summary="a MsgType member lacks a handler in an engine's _DISPATCH",
    guards="complete protocol dispatch (Table 3; Hermes-style broadcast "
           "assumes no silent message drops)",
    scope=in_src)
def check(contexts) -> Iterator[Finding]:
    for module_name, class_name, suffix in ENGINE_SPECS:
        ctx = next((c for c in contexts if c.path.endswith(suffix)), None)
        if ctx is None:
            continue
        problems = inspect_engine(module_name, class_name)
        if not problems:
            continue
        line, col = _class_def_line(ctx.tree, class_name)
        for problem in problems:
            yield Finding(RULE_ID, ctx.path, line, col, problem,
                          extra={"module": module_name,
                                 "class": class_name})
