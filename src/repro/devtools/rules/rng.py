"""rng-discipline: all randomness flows through ``SeededStream``.

Same-seed runs must be byte-identical (DESIGN §6; the fig6/ablation
benchmark archives depend on it).  ``random`` module state, OS entropy
(``os.urandom``), UUIDs, and ``secrets`` all inject nondeterminism that
no seed controls.  Only :mod:`repro.sim.rng` may touch :mod:`random` —
every other component forks a named :class:`SeededStream` so adding a
consumer does not shift the draws of existing ones.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import file_rule
from repro.devtools.rules.util import dotted_name, location

RULE_ID = "rng-discipline"

_BANNED_MODULES = {
    "random": "seeded or not, module-level random state is shared and "
              "order-sensitive",
    "secrets": "OS entropy is unseedable",
    "uuid": "uuid1/uuid4 draw OS entropy",
}
_BANNED_CALLS = {
    "os.urandom": "OS entropy is unseedable",
    "os.getrandom": "OS entropy is unseedable",
}


def _allowed(path: str) -> bool:
    # sim/rng.py *is* the seam: the one place random.Random may appear.
    return path.endswith("sim/rng.py")


@file_rule(
    RULE_ID,
    summary="randomness outside sim/rng.py (use a SeededStream fork)",
    guards="byte-identical same-seed runs (DESIGN §6; PR-1 fork() bug "
           "class)")
def check(ctx) -> Iterator[Finding]:
    if _allowed(ctx.path):
        return
    for node in ast.walk(ctx.tree):
        line, col = location(node)
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _BANNED_MODULES:
                    yield Finding(
                        RULE_ID, ctx.path, line, col,
                        f"import {alias.name}: {_BANNED_MODULES[root]}; "
                        f"draw from a SeededStream fork instead")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _BANNED_MODULES:
                yield Finding(
                    RULE_ID, ctx.path, line, col,
                    f"from {node.module} import ...: "
                    f"{_BANNED_MODULES[root]}; draw from a SeededStream "
                    f"fork instead")
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in _BANNED_CALLS:
                yield Finding(
                    RULE_ID, ctx.path, line, col,
                    f"{name}(): {_BANNED_CALLS[name]}; draw from a "
                    f"SeededStream fork instead")
