"""unordered-iteration: no protocol effects from set iteration order.

Hermes-style broadcast rounds (Katsarakis et al.) and the durable-
linearizability obligations both assume a *stable* message order; the
simulator only replays byte-identical traces if every send/schedule
sequence is deterministic.  Iterating a ``set`` (or ``dict.keys()`` /
``dict.items()`` / ``dict.values()``, which read as "order doesn't
matter" even though CPython preserves insertion order) while sending
messages or scheduling events ties protocol behaviour to
hash/insertion history.  The same hazard hides in comprehensions: a
set/dict comprehension whose element expression sends or schedules, or
a loop over one, orders effects by the comprehension's iteration.
Wrap the iterable in ``sorted(...)`` — or iterate a list — when the
body has effects.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.devtools.findings import Finding
from repro.devtools.registry import file_rule, in_src
from repro.devtools.rules.util import build_parents, code, iter_ancestors, location

RULE_ID = "unordered-iteration"

#: Calls in a loop body that make iteration order observable: message
#: sends, event scheduling, and trace emission (trace files are
#: byte-compared in tests).
_EFFECT_ATTRS = frozenset({
    "_broadcast", "_send", "send", "broadcast",
    "schedule", "process", "timeout",
    "emit", "span",
})

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp, ast.DictComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _SET_CONSTRUCTORS)


def _set_attrs(cls: ast.ClassDef) -> frozenset:
    """Attributes assigned ``set(...)``/set literals anywhere in the
    class — cheap type inference for ``for x in self.peers`` loops."""
    attrs = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    attrs.add(target.attr)
    return frozenset(attrs)


def _is_unordered(iterable: ast.AST, set_attrs: frozenset) -> bool:
    if _is_set_expr(iterable):
        return True
    if isinstance(iterable, ast.Call):
        func = iterable.func
        if (isinstance(func, ast.Attribute)
                and func.attr in ("keys", "items", "values")):
            return True
    if isinstance(iterable, (ast.Name, ast.Attribute)):
        name = (iterable.id if isinstance(iterable, ast.Name)
                else iterable.attr)
        if name.endswith(("_set", "_sets")):
            return True
        return (isinstance(iterable, ast.Attribute)
                and isinstance(iterable.value, ast.Name)
                and iterable.value.id == "self"
                and name in set_attrs)
    return False


def _has_effects(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _EFFECT_ATTRS):
                return True
    return False


def _comp_elements(node: ast.AST) -> List[ast.AST]:
    """The expressions a comprehension evaluates per item."""
    if isinstance(node, ast.DictComp):
        return [node.key, node.value]
    return [node.elt]


def _expr_has_effects(exprs: List[ast.AST]) -> bool:
    for expr in exprs:
        for sub in ast.walk(expr):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _EFFECT_ATTRS):
                return True
    return False


@file_rule(
    RULE_ID,
    summary="sends/schedules from set or dict.keys() iteration order",
    guards="deterministic message order (Hermes-style broadcast; "
           "byte-identical trace tests)",
    scope=in_src)
def check(ctx) -> Iterator[Finding]:
    parents = build_parents(ctx.tree)
    attrs_by_class = {}

    def class_set_attrs(node):
        cls = next((a for a in iter_ancestors(node, parents)
                    if isinstance(a, ast.ClassDef)), None)
        if cls is not None and cls not in attrs_by_class:
            attrs_by_class[cls] = _set_attrs(cls)
        return attrs_by_class.get(cls, frozenset())

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            set_attrs = class_set_attrs(node)
            if not _is_unordered(node.iter, set_attrs):
                continue
            if not _has_effects(node.body):
                continue
            line, col = location(node)
            yield Finding(
                RULE_ID, ctx.path, line, col,
                f"loop over `{code(node.iter)}` sends messages or "
                f"schedules events; iteration order is a nondeterminism "
                f"hazard — iterate `sorted({code(node.iter)})` instead")
        elif isinstance(node, (ast.ListComp, ast.SetComp,
                               ast.GeneratorExp, ast.DictComp)):
            set_attrs = class_set_attrs(node)
            hazard = next(
                (gen.iter for gen in node.generators
                 if _is_unordered(gen.iter, set_attrs)), None)
            if hazard is None:
                continue
            if not _expr_has_effects(_comp_elements(node)):
                continue
            line, col = location(node)
            yield Finding(
                RULE_ID, ctx.path, line, col,
                f"comprehension over `{code(hazard)}` sends messages or "
                f"schedules events; iteration order is a nondeterminism "
                f"hazard — iterate `sorted({code(hazard)})` instead")
