"""The lint engine: file collection, rule running, waivers, reports.

The engine parses each file once, hands the tree to every in-scope file
rule, then runs project rules over the whole file set, and finally
applies inline waivers.  Three checks are built into the engine itself
rather than the rule registry proper (they police the lint mechanism,
not the code):

* ``parse-error`` — a linted file does not parse;
* ``waiver-syntax`` — a ``lint-ok`` comment without a justification or
  naming an unknown rule id;
* ``unused-waiver`` — a waiver that matched no finding (stale waivers
  are how a lint layer rots).
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, all_rules
from repro.devtools.waivers import Waivers, parse_waivers

__all__ = [
    "FileContext",
    "LintResult",
    "UsageError",
    "SKIP_DIRS",
    "format_text",
    "iter_python_files",
    "lint_sources",
    "run_lint",
    "to_json",
]

#: Directory names never descended into when a directory is linted.
#: ``lint_fixtures`` holds deliberately-bad rule fixtures; explicit file
#: arguments are always linted, so tests can still target them.
SKIP_DIRS = frozenset({"__pycache__", ".git", "results", "lint_fixtures",
                       ".venv", "node_modules"})

ENGINE_RULES = ("parse-error", "waiver-syntax", "unused-waiver")


class UsageError(Exception):
    """Bad invocation (missing path, unknown rule) — CLI exit code 2."""


@dataclass
class FileContext:
    """One file as the rules see it."""

    path: str
    """Display path (repo-relative posix when possible)."""
    source: str
    abspath: str = ""
    tree: Optional[ast.AST] = None
    parse_error: Optional[str] = None
    waivers: Waivers = field(default_factory=lambda: parse_waivers(""))

    @classmethod
    def from_source(cls, path: str, source: str) -> FileContext:
        ctx = cls(path=path.replace(os.sep, "/"), source=source,
                  abspath=os.path.abspath(path))
        try:
            ctx.tree = ast.parse(source)
        except SyntaxError as exc:
            ctx.parse_error = (f"line {exc.lineno}: {exc.msg}"
                               if exc.lineno else str(exc))
        ctx.waivers = parse_waivers(source)
        return ctx

    @classmethod
    def from_file(cls, path: str) -> FileContext:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        display = os.path.relpath(path).replace(os.sep, "/")
        if display.startswith("../"):
            display = path.replace(os.sep, "/")
        ctx = cls.from_source(display, source)
        ctx.abspath = os.path.abspath(path)
        return ctx


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding]
    files: int
    rules: List[str]
    paths: List[str]

    @property
    def unwaived(self) -> List[Finding]:
        return [f for f in self.findings if not f.waived]

    @property
    def waived(self) -> List[Finding]:
        return [f for f in self.findings if f.waived]

    @property
    def clean(self) -> bool:
        return not self.unwaived

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand path arguments to the ordered list of ``.py`` files.

    Explicit file arguments are taken as-is (even inside skip dirs);
    directories are walked recursively in sorted order, pruning
    :data:`SKIP_DIRS` and hidden directories.
    """
    files: List[str] = []
    seen = set()

    def add(path: str) -> None:
        key = os.path.abspath(path)
        if key not in seen:
            seen.add(key)
            files.append(path)

    for path in paths:
        if os.path.isfile(path):
            add(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in SKIP_DIRS and not d.startswith("."))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        add(os.path.join(dirpath, name))
        else:
            raise UsageError(f"no such file or directory: {path}")
    return files


def _select_rules(rule_ids: Optional[Sequence[str]]) -> List[Rule]:
    rules = all_rules()
    if rule_ids is None:
        return rules
    known = {rule.id for rule in rules}
    unknown = [r for r in rule_ids if r not in known]
    if unknown:
        raise UsageError(
            f"unknown rule id(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})")
    wanted = set(rule_ids)
    return [rule for rule in rules if rule.id in wanted]


def _engine_findings(ctx: FileContext, known_ids: Iterable[str],
                     full_run: bool) -> List[Finding]:
    findings: List[Finding] = []
    known = set(known_ids)
    if ctx.parse_error is not None:
        findings.append(Finding("parse-error", ctx.path, 1, 0,
                                f"file does not parse: {ctx.parse_error}"))
    if not full_run:
        # With a rule subset, waivers for unselected rules would look
        # unused; waiver validation only makes sense on full runs.
        return findings
    for waiver in ctx.waivers:
        if not waiver.well_formed:
            findings.append(Finding(
                "waiver-syntax", ctx.path, waiver.line, 0,
                "waiver needs rule id(s) and a one-line justification: "
                "# repro: lint-ok[rule-id] reason"))
            continue
        bogus = [r for r in waiver.rule_ids if r not in known]
        if bogus:
            findings.append(Finding(
                "waiver-syntax", ctx.path, waiver.line, 0,
                f"waiver names unknown rule id(s): {', '.join(bogus)}"))
        elif not waiver.used:
            findings.append(Finding(
                "unused-waiver", ctx.path, waiver.line, 0,
                f"waiver for [{', '.join(waiver.rule_ids)}] matched no "
                f"finding — remove it (or the rule it was written for "
                f"has moved)"))
    return findings


def _run(contexts: List[FileContext],
         rule_ids: Optional[Sequence[str]] = None,
         paths: Sequence[str] = ()) -> LintResult:
    rules = _select_rules(rule_ids)
    file_rules = [r for r in rules if r.kind == "file"]
    project_rules = [r for r in rules if r.kind == "project"]
    known_ids = [r.id for r in all_rules()] + list(ENGINE_RULES)

    findings: List[Finding] = []
    for ctx in contexts:
        if ctx.tree is None:
            continue
        for rule in file_rules:
            if rule.scope(ctx.path):
                findings.extend(rule.check(ctx))
    for rule in project_rules:
        in_scope = [ctx for ctx in contexts if rule.scope(ctx.path)]
        if in_scope:
            findings.extend(rule.check(in_scope))

    # Waivers first, engine checks second: unused-waiver must see which
    # waivers real findings consumed.
    waived: List[Finding] = []
    by_path = {ctx.path: ctx for ctx in contexts}
    for finding in findings:
        ctx = by_path.get(finding.path)
        waiver = (ctx.waivers.lookup(finding.rule, finding.line)
                  if ctx is not None else None)
        waived.append(finding if waiver is None
                      else finding.waive(waiver.reason))
    for ctx in contexts:
        waived.extend(_engine_findings(ctx, known_ids,
                                       full_run=rule_ids is None))
    waived.sort(key=lambda f: f.sort_key)
    return LintResult(waived, files=len(contexts),
                      rules=[r.id for r in rules], paths=list(paths))


def run_lint(paths: Sequence[str],
             rule_ids: Optional[Sequence[str]] = None) -> LintResult:
    """Lint files/directories on disk."""
    contexts = [FileContext.from_file(p) for p in iter_python_files(paths)]
    return _run(contexts, rule_ids, paths=paths)


def lint_sources(sources: Sequence[Tuple[str, str]],
                 rule_ids: Optional[Sequence[str]] = None) -> LintResult:
    """Lint in-memory ``(virtual_path, source)`` pairs.

    The virtual path drives rule scoping, so tests can lint a fixture
    as if it lived at ``src/repro/...``.
    """
    contexts = [FileContext.from_source(path, source)
                for path, source in sources]
    return _run(contexts, rule_ids, paths=[p for p, _ in sources])


def format_text(result: LintResult, show_waived: bool = False) -> str:
    shown = result.findings if show_waived else result.unwaived
    lines = [f.format() for f in shown]
    bad, ok = len(result.unwaived), len(result.waived)
    if bad or ok:
        lines.append(f"{bad} finding(s), {ok} waived, "
                     f"{result.files} file(s) checked")
    else:
        lines.append(f"clean: {result.files} file(s), "
                     f"{len(result.rules)} rule(s)")
    return "\n".join(lines)


def to_json(result: LintResult) -> str:
    counts: Dict[str, int] = {}
    for finding in result.unwaived:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    from repro.obs.schemas import LINT_REPORT_SCHEMA
    doc = {
        "schema": LINT_REPORT_SCHEMA,
        "paths": list(result.paths),
        "files": result.files,
        "rules": list(result.rules),
        "findings": [f.to_dict() for f in result.findings],
        "counts": dict(sorted(counts.items())),
        "total": len(result.unwaived),
        "waived": len(result.waived),
        "clean": result.clean,
    }
    return json.dumps(doc, indent=2, sort_keys=False)
