"""``repro lint`` / ``repro order`` — the CLI face of reprolint.

``lint`` runs the whole rule catalog; ``order`` is the determinism
certificate: the three ordering rules (effect-conflict,
schedule-sensitive-send, untracked-effect), golden effect-set dumps,
and the dynamic tie-batch sanitizer with static/dynamic
cross-referencing.

Exit codes (both commands): 0 clean (waived findings allowed), 1
unwaived findings or sanitizer divergence, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.devtools.engine import (FileContext, UsageError, format_text,
                                   iter_python_files, run_lint, to_json)
from repro.devtools.registry import all_rules

__all__ = ["add_lint_parser", "cmd_lint", "add_order_parser", "cmd_order",
           "ORDER_RULES", "effects_document", "flagged_message_pairs"]

#: The rule subset `repro order` runs (see rules/ordering.py).
ORDER_RULES = ["effect-conflict", "schedule-sensitive-send",
               "untracked-effect"]


def add_lint_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "lint",
        help="run the project lint rules (reprolint)",
        description="AST-based project lint: determinism, tracer "
                    "guards, protocol-dispatch completeness. Waive a "
                    "finding inline with "
                    "`# repro: lint-ok[rule-id] reason`.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--json", action="store_true",
                        help="emit the repro.lint_report/1 JSON document")
    parser.add_argument("--sarif", action="store_true",
                        help="emit a SARIF 2.1.0 document (for code "
                             "scanning upload)")
    parser.add_argument("--rules", default=None, metavar="ID[,ID...]",
                        help="run only these rule ids")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--show-waived", action="store_true",
                        help="include waived findings in text output")
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.id:24s} {rule.summary}")
        print(f"{'':24s}   guards: {rule.guards}")
    return 0


def cmd_lint(args) -> int:
    if args.list_rules:
        return _list_rules()
    rule_ids = ([r.strip() for r in args.rules.split(",") if r.strip()]
                if args.rules else None)
    try:
        result = run_lint(args.paths, rule_ids=rule_ids)
    except UsageError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.sarif:
        from repro.devtools.sarif import to_sarif
        print(to_sarif(result))
    elif args.json:
        print(to_json(result))
    else:
        print(format_text(result, show_waived=args.show_waived))
    return result.exit_code


# ---------------------------------------------------------------------------
# repro order
# ---------------------------------------------------------------------------


def add_order_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "order",
        help="ordering/determinism certificate (static + dynamic)",
        description="Static effect analysis over every message handler "
                    "(effect-conflict, schedule-sensitive-send, "
                    "untracked-effect) plus the dynamic tie-batch "
                    "sanitizer. Exit 0 means tie-breaking order is "
                    "certified free for the DES kernel.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report")
    parser.add_argument("--sarif", action="store_true",
                        help="emit the static findings as SARIF 2.1.0")
    parser.add_argument("--show-waived", action="store_true",
                        help="include waived findings in text output")
    parser.add_argument("--effects", action="store_true",
                        help="dump per-handler effect sets instead of "
                             "linting")
    parser.add_argument("--effects-out", metavar="FILE", default=None,
                        help="write the effect dump (repro.effects/1 "
                             "JSON) to FILE (golden-fixture form)")
    parser.add_argument("--sanitize", action="store_true",
                        help="also run the tie-batch permutation sweep "
                             "across all 25 DDP models")
    parser.add_argument("--seeds", default="1,2,3,4", metavar="S[,S...]",
                        help="permutation seeds for --sanitize "
                             "(default: 1,2,3,4)")
    parser.add_argument("--ops", type=int, default=30, metavar="N",
                        help="request budget per client for --sanitize "
                             "(fixed-work drain; default: 30)")
    parser.add_argument("--sweep-out", metavar="FILE", default=None,
                        help="write the sweep report (repro.order_sweep/1"
                             " JSON) to FILE")
    return parser


def _analyze(paths):
    from repro.devtools.effects import analyze_engines

    contexts = [FileContext.from_file(p) for p in iter_python_files(paths)]
    return analyze_engines(contexts)


def effects_document(reports_by_engine) -> dict:
    """The golden effect-dump document (``repro.effects/1``)."""
    engines = {}
    for engine in sorted(reports_by_engine):
        handlers = {}
        for report in reports_by_engine[engine]:
            handlers[report.handler] = {
                "msg_types": list(report.msg_types),
                "defined_in": report.defined_in,
                "effects": report.effects.summary(),
                "unresolved": sorted(report.effects.unresolved),
                "guarded_sends": len(report.effects.guarded_sends),
            }
        engines[engine] = handlers
    return {"schema": "repro.effects/1", "engines": engines}


def flagged_message_pairs(reports_by_engine):
    """Statically flagged handler conflicts as message-type pairs.

    The sanitizer observes ties as message-type labels, so conflicts are
    translated through each handler's dispatch entries for coverage
    cross-referencing.
    """
    from repro.devtools.effects import conflicts

    pairs = set()
    for engine, reports in reports_by_engine.items():
        types = {r.handler: r.msg_types for r in reports}
        for conflict in conflicts(reports):
            for a in types.get(conflict.handler_a, []):
                for b in types.get(conflict.handler_b, []):
                    pairs.add(tuple(sorted((a, b))))
    return sorted(pairs)


def _cmd_effects(args) -> int:
    reports = _analyze(args.paths)
    doc = effects_document(reports)
    payload = json.dumps(doc, indent=2, sort_keys=False)
    if args.effects_out:
        with open(args.effects_out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        total = sum(len(h) for h in doc["engines"].values())
        print(f"wrote {args.effects_out}: {len(doc['engines'])} "
              f"engine(s), {total} handler(s)")
    elif args.json:
        print(payload)
    else:
        for engine, handlers in doc["engines"].items():
            print(engine)
            for handler, info in handlers.items():
                msgs = ", ".join(info["msg_types"])
                print(f"  {handler}  [{msgs}]")
                for line in info["effects"]:
                    print(f"    {line}")
                for call in info["unresolved"]:
                    print(f"    ?  {call}  (unresolved)")
    return 0


def _run_sanitize(args, reports_by_engine):
    from repro.devtools.sanitizer import coverage, sweep

    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    result = sweep(ops_per_client=args.ops, seeds=seeds)
    cover = coverage(flagged_message_pairs(reports_by_engine), result)
    return result, cover


def cmd_order(args) -> int:
    if args.effects or args.effects_out:
        return _cmd_effects(args)
    try:
        result = run_lint(args.paths, rule_ids=ORDER_RULES)
    except UsageError as exc:
        print(f"repro order: {exc}", file=sys.stderr)
        return 2
    if args.sarif:
        from repro.devtools.sarif import to_sarif
        print(to_sarif(result, tool_name="repro-order"))
        return result.exit_code

    sweep_result = cover = None
    if args.sanitize:
        sweep_result, cover = _run_sanitize(args, _analyze(args.paths))
        if args.sweep_out:
            doc = sweep_result.to_dict()
            doc["coverage"] = cover
            with open(args.sweep_out, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(doc, indent=2) + "\n")

    exit_code = result.exit_code
    if sweep_result is not None and not sweep_result.ok:
        exit_code = 1

    if args.json:
        doc = json.loads(to_json(result))
        if sweep_result is not None:
            doc["sweep"] = sweep_result.to_dict()
            doc["sweep"]["coverage"] = cover
        print(json.dumps(doc, indent=2))
        return exit_code

    print(format_text(result, show_waived=args.show_waived))
    if sweep_result is not None:
        cells = sweep_result.cells
        permuted = sum(sum(c.permuted.values()) for c in cells)
        print(f"sanitizer: {len(cells)} model(s) x "
              f"{len(sweep_result.seeds)} seed(s), "
              f"{permuted} batch permutation(s), "
              f"{'all byte-identical' if sweep_result.ok else 'DIVERGED'}")
        for cell in sweep_result.diverged:
            print(f"  DIVERGED {cell.model}: seeds {cell.diverged} "
                  f"(pairs: {cell.observed_pairs})")
        exercised, uncovered = cover["exercised"], cover["uncovered"]
        print(f"coverage: {len(cover['flagged'])} flagged pair(s), "
              f"{len(exercised)} exercised, {len(uncovered)} uncovered")
        for pair in uncovered:
            print(f"  uncovered: {pair[0]}~{pair[1]} (static claim "
                  f"never exercised dynamically)")
    return exit_code
