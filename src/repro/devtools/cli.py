"""``repro lint`` — the CLI face of reprolint.

Exit codes: 0 clean (waived findings allowed), 1 unwaived findings,
2 usage error (unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
import sys

from repro.devtools.engine import UsageError, format_text, run_lint, to_json
from repro.devtools.registry import all_rules

__all__ = ["add_lint_parser", "cmd_lint"]


def add_lint_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "lint",
        help="run the project lint rules (reprolint)",
        description="AST-based project lint: determinism, tracer "
                    "guards, protocol-dispatch completeness. Waive a "
                    "finding inline with "
                    "`# repro: lint-ok[rule-id] reason`.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--json", action="store_true",
                        help="emit the repro.lint_report/1 JSON document")
    parser.add_argument("--rules", default=None, metavar="ID[,ID...]",
                        help="run only these rule ids")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--show-waived", action="store_true",
                        help="include waived findings in text output")
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.id:24s} {rule.summary}")
        print(f"{'':24s}   guards: {rule.guards}")
    return 0


def cmd_lint(args) -> int:
    if args.list_rules:
        return _list_rules()
    rule_ids = ([r.strip() for r in args.rules.split(",") if r.strip()]
                if args.rules else None)
    try:
        result = run_lint(args.paths, rule_ids=rule_ids)
    except UsageError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(to_json(result))
    else:
        print(format_text(result, show_waived=args.show_waived))
    return result.exit_code
