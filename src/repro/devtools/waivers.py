"""Inline lint waivers.

Syntax (same line as the finding, or the line directly above it)::

    bank = self._banks[hash(addr) % n]  # repro: lint-ok[wall-clock-ban] addr is an int; hash(int) is unsalted

    # repro: lint-ok[rng-discipline] hypothesis draws the seed deterministically
    import random

Several rules can share one waiver: ``lint-ok[rule-a,rule-b] reason``.
The justification is mandatory — a waiver without one is itself a
finding (``waiver-syntax``), as is a waiver naming an unknown rule or
one that never matches a finding (``unused-waiver``).  That keeps the
waiver file from silently rotting as code moves.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Waiver", "Waivers", "parse_waivers"]

_WAIVER_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*?)\s*$")


@dataclass
class Waiver:
    """One ``lint-ok`` comment."""

    line: int
    rule_ids: List[str]
    reason: str
    used: bool = field(default=False, compare=False)

    @property
    def well_formed(self) -> bool:
        return bool(self.rule_ids) and bool(self.reason)


class Waivers:
    """All waivers of one file, indexed for lookup by finding line."""

    def __init__(self, waivers: List[Waiver]):
        self._by_line: Dict[int, Waiver] = {w.line: w for w in waivers}

    def __iter__(self):
        return iter(self._by_line.values())

    def __len__(self) -> int:
        return len(self._by_line)

    def lookup(self, rule_id: str, line: int) -> Optional[Waiver]:
        """The waiver covering ``rule_id`` at ``line``, if any.

        A waiver covers the line it sits on and the line below it (the
        comment-above form).  Malformed waivers never match — they are
        reported instead of honoured.
        """
        for candidate_line in (line, line - 1):
            waiver = self._by_line.get(candidate_line)
            if (waiver is not None and waiver.well_formed
                    and rule_id in waiver.rule_ids):
                waiver.used = True
                return waiver
        return None


def _iter_comments(source: str):
    """(line, comment_text) for every real comment token.

    Tokenizing (rather than regex over raw lines) keeps waiver examples
    inside docstrings from registering as live waivers.  Files broken
    enough to defeat the tokenizer fall back to a line scan so their
    waivers stay visible alongside the parse error.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, SyntaxError, ValueError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                yield lineno, text


def parse_waivers(source: str) -> Waivers:
    """Extract ``lint-ok`` waiver comments from ``source``."""
    waivers: List[Waiver] = []
    for lineno, comment in _iter_comments(source):
        match = _WAIVER_RE.search(comment)
        if match is None:
            continue
        rule_ids = [part.strip() for part in match.group("rules").split(",")
                    if part.strip()]
        waivers.append(Waiver(lineno, rule_ids, match.group("reason")))
    return Waivers(waivers)
