"""Command-line interface for the reproduction.

Subcommands:

* ``run`` — simulate one DDP model on one workload and print a summary.
* ``sweep`` — run several models on the same workload, normalized to
  <Linearizable, Synchronous> (a one-line Figure 6 slice).
* ``tradeoffs`` — print the derived Table 4 (or the full 25-model grid).
* ``recover`` — run a workload, crash the cluster, simulate recovery,
  and report what survived.

Examples::

    python -m repro.cli run --consistency causal --persistency synchronous
    python -m repro.cli sweep --workload B --duration-us 150
    python -m repro.cli tradeoffs --all
    python -m repro.cli recover --persistency eventual --strategy majority
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import format_summary_table
from repro.cluster.cluster import Cluster, run_simulation
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency, DdpModel, Persistency, all_ddp_models
from repro.core.tradeoffs import analyze_all
from repro.recovery.replayer import RecoveryReplayer
from repro.workload.ycsb import WORKLOADS

__all__ = ["main", "build_parser"]


def _model_from(args) -> DdpModel:
    return DdpModel(Consistency(args.consistency), Persistency(args.persistency))


def _config_from(args) -> ClusterConfig:
    return ClusterConfig(servers=args.servers,
                         clients_per_server=args.clients // args.servers,
                         seed=args.seed)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="A", choices=sorted(WORKLOADS),
                        help="YCSB workload mix (default: A)")
    parser.add_argument("--servers", type=int, default=5)
    parser.add_argument("--clients", type=int, default=100,
                        help="total clients across the cluster")
    parser.add_argument("--duration-us", type=float, default=100.0,
                        help="measured simulated time per run")
    parser.add_argument("--seed", type=int, default=2021)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Data Persistency (MICRO 2021) reproduction")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="simulate one DDP model")
    run_parser.add_argument("--consistency", default="causal",
                            choices=[c.value for c in Consistency])
    run_parser.add_argument("--persistency", default="synchronous",
                            choices=[p.value for p in Persistency])
    _add_common(run_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="compare models on one workload")
    sweep_parser.add_argument("--all", action="store_true",
                              help="sweep all 25 models (slow)")
    _add_common(sweep_parser)

    tradeoff_parser = subparsers.add_parser(
        "tradeoffs", help="print the derived Table 4")
    tradeoff_parser.add_argument("--all", action="store_true",
                                 help="derive all 25 models")

    recover_parser = subparsers.add_parser(
        "recover", help="crash mid-run and simulate recovery")
    recover_parser.add_argument("--consistency", default="causal",
                                choices=[c.value for c in Consistency])
    recover_parser.add_argument("--persistency", default="synchronous",
                                choices=[p.value for p in Persistency])
    recover_parser.add_argument("--strategy", default="latest",
                                choices=["latest", "majority"])
    _add_common(recover_parser)
    return parser


def _cmd_run(args) -> int:
    model = _model_from(args)
    duration = args.duration_us * 1000.0
    summary = run_simulation(model, WORKLOADS[args.workload],
                             config=_config_from(args),
                             duration_ns=duration,
                             warmup_ns=duration / 10)
    print(format_summary_table([(str(model), summary)]))
    print(f"\npersists={summary.persists}  messages={summary.total_messages}"
          f"  causal-buffer-peak={summary.causal_buffer_peak}"
          f"  txn-conflicts={summary.txn_conflicts}")
    return 0


def _cmd_sweep(args) -> int:
    duration = args.duration_us * 1000.0
    if args.all:
        models = all_ddp_models()
    else:
        models = [
            DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS),
            DdpModel(Consistency.READ_ENFORCED, Persistency.SYNCHRONOUS),
            DdpModel(Consistency.TRANSACTIONAL, Persistency.SYNCHRONOUS),
            DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS),
            DdpModel(Consistency.CAUSAL, Persistency.EVENTUAL),
            DdpModel(Consistency.EVENTUAL, Persistency.EVENTUAL),
        ]
    rows = []
    baseline = None
    for model in models:
        summary = run_simulation(model, WORKLOADS[args.workload],
                                 config=_config_from(args),
                                 duration_ns=duration,
                                 warmup_ns=duration / 10)
        if baseline is None:
            baseline = summary
        rows.append((str(model), summary))
    print(format_summary_table(rows, baseline=baseline))
    return 0


def _cmd_tradeoffs(args) -> int:
    models = all_ddp_models() if args.all else None
    for profile in analyze_all(models):
        print(profile.row())
    return 0


def _cmd_recover(args) -> int:
    model = _model_from(args)
    duration = args.duration_us * 1000.0
    cluster = Cluster(model, config=_config_from(args),
                      workload=WORKLOADS[args.workload])
    cluster.run(duration_ns=duration, warmup_ns=duration / 10)
    cluster.crash_all()
    report = RecoveryReplayer(cluster).simulate(args.strategy)
    print(f"model                : {model}")
    print(f"strategy             : {report.strategy}")
    print(f"keys in NVM images   : {report.total_keys}")
    print(f"divergent keys       : {report.divergent_keys} "
          f"({report.divergence_fraction:.1%})")
    print(f"scan time            : {report.scan_ns / 1000:.1f} us")
    print(f"reconciliation time  : {report.reconcile_ns / 1000:.1f} us")
    print(f"total recovery time  : {report.total_ns / 1000:.1f} us")
    print(f"recovered keys       : {len(report.state)}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "tradeoffs": _cmd_tradeoffs,
    "recover": _cmd_recover,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
