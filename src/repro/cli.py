"""Command-line interface for the reproduction.

Subcommands:

* ``run`` — simulate one DDP model on one workload and print a summary.
  ``--trace-out`` / ``--metrics-out`` / ``--profile`` additionally emit
  a Chrome-trace JSON (open in Perfetto), a run-report JSON (windowed
  throughput/latency and VP/DP-lag series), and kernel profile counters.
  ``--faults PLAN.json`` / ``--crash NODE@T_US[+RESTART_US]`` inject
  deterministic faults (crashes, message loss, partitions, NVM
  slowdowns; see :mod:`repro.faults`) and validate the model's
  durability contracts after the run — exit code 1 on a violation.
* ``trace`` — run one model and dump its timeline: writes the
  Chrome-trace file and prints a category summary plus the first records.
* ``journey`` — per-update critical-path waterfalls: where each write's
  end-to-end VP/DP latency went (network / coordination-wait / NVM-queue
  / device / compute), aggregated and for the slowest updates; ``--all``
  sweeps the 25-model matrix fig6-style.
* ``profile`` — the kernel performance observatory: run one model with
  the profiler attached and print a hotspot table (event kinds and
  message handlers ranked by cumulative wall time, per-event overhead,
  scheduling statistics).  ``--flame-out`` / ``--speedscope-out``
  additionally sample Python stacks at a wall interval and write
  Brendan-Gregg folded stacks / speedscope JSON, phase-tagged (kernel /
  protocol / store / workload); ``--json`` emits the machine-readable
  snapshot.
* ``diff`` — compare two run reports, sweep reports, or
  ``BENCH_*.json`` artifacts: config-hash compatibility check,
  per-metric deltas with a noise threshold (per matrix cell for sweep
  reports, where a crashed cell also counts as a regression), and a
  regression verdict (markdown or ``--json``).  Exit codes: 0 no
  regression, 1 regression, 2 unusable/incompatible input.
* ``audit`` — the black-box contract auditor: verify a recorded client
  history (``run --history-out``) against all 25 consistency/persistency
  cells from observation alone and print the verdict matrix (or the
  ``repro.audit_report/1`` JSON with ``--json``).  ``run --audit`` does
  the record-and-audit round trip in one command.  Exit codes: 0 target
  model passes, 1 contract violation, 2 unusable history.
* ``sweep`` — run several models (or, with ``--all``, the full 5x5
  matrix, times ``--seeds``) on the same workload, normalized to
  <Linearizable, Synchronous> (a one-line Figure 6 slice).
  ``--workers N`` fans the matrix across worker processes; the merged
  ``repro.sweep_report/1`` artifact (``--out``) is byte-identical
  whatever the worker count, and a crashed cell becomes a schema-valid
  ``error`` entry (exit code 1).  ``--journeys`` / ``--health`` /
  ``--profile`` / ``--audit`` embed the matching per-cell sections;
  ``--html-out`` also renders the dashboard.
* ``dash`` — render a saved sweep report as one self-contained static
  HTML dashboard: 5x5 heatmaps, journey waterfalls, kernel
  attribution, ``--baseline`` diff deltas, and ``--bench-dir`` trend
  sparklines.  Exit code 2 on unusable input.
* ``tradeoffs`` — print the derived Table 4 (or the full 25-model grid).
* ``recover`` — run a workload, crash the cluster, simulate recovery,
  and report what survived.
* ``lint`` — run the project's own static analysis (reprolint):
  determinism, tracer-guard, and protocol-dispatch invariants.  Exit
  codes: 0 clean, 1 findings, 2 usage error.

Examples::

    python -m repro.cli run --consistency causal --persistency synchronous
    python -m repro.cli run --trace-out t.json --metrics-out m.json --profile
    python -m repro.cli run --health --metrics-out report.json
    python -m repro.cli run --crash 2@50+40 --metrics-out report.json
    python -m repro.cli run --faults chaos.json --trace-out t.json
    python -m repro.cli trace --consistency causal --persistency eventual
    python -m repro.cli trace t.json            # re-open a saved trace
    python -m repro.cli journey --consistency linearizable --slowest 3
    python -m repro.cli journey report.json     # re-open a saved report
    python -m repro.cli journey --all --duration-us 40
    python -m repro.cli profile --consistency linearizable --top 10
    python -m repro.cli profile --flame-out kernel.folded --speedscope-out kernel.speedscope.json
    python -m repro.cli diff baseline.json fresh.json --json
    python -m repro.cli run --audit --consistency linearizable
    python -m repro.cli run --history-out h.jsonl --crash 1@120+60
    python -m repro.cli audit h.jsonl --consistency eventual
    python -m repro.cli sweep --workload B --duration-us 150
    python -m repro.cli sweep --all --workers 4 --out sweep.json --html-out dash.html
    python -m repro.cli dash sweep.json --baseline old_sweep.json --bench-dir benchmarks/results
    python -m repro.cli tradeoffs --all
    python -m repro.cli recover --persistency eventual --strategy majority
    python -m repro.cli lint src tests benchmarks --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.metrics import Metrics
from repro.analysis.points import PointsTracker
from repro.audit import audit_exit_code, audit_history, format_audit_table
from repro.analysis.report import format_summary_table
from repro.analysis.waterfall import aggregate_journeys, format_waterfall
from repro.cluster.cluster import Cluster, run_simulation
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency, DdpModel, Persistency, all_ddp_models
from repro.core.tradeoffs import analyze_all
from repro.devtools.cli import (add_lint_parser, add_order_parser,
                                cmd_lint, cmd_order)
from repro.faults import (FaultInjector, load_fault_plan,
                          plan_from_crash_specs, validate_faulty_run)
from repro.obs import (
    DiffError,
    FanoutTracer,
    SweepProgress,
    build_dashboard,
    build_sweep_report,
    load_bench_dir,
    matrix_specs,
    run_sweep,
    write_dashboard,
    write_sweep_report,
    FrameSampler,
    HealthMonitor,
    HistoryRecorder,
    JourneyTracker,
    JsonlSink,
    KernelProfile,
    build_run_report,
    format_hotspots,
    config_fingerprint,
    diff_json,
    diff_paths,
    format_markdown,
    health_chrome_events,
    journey_chrome_events,
    load_artifact,
    load_history,
    recovered_from_cluster,
    write_chrome_trace,
    write_history,
    write_run_report,
)
from repro.obs.schemas import (KERNEL_PROFILE_SCHEMA, SchemaError,
                               validate_artifact)
from repro.recovery.replayer import RecoveryReplayer
from repro.sim.trace import Tracer
from repro.workload.ycsb import WORKLOADS

__all__ = ["main", "build_parser"]


def _model_from(args) -> DdpModel:
    return DdpModel(Consistency(args.consistency), Persistency(args.persistency))


def _config_from(args) -> ClusterConfig:
    return ClusterConfig(servers=args.servers,
                         clients_per_server=args.clients // args.servers,
                         seed=args.seed)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="A", choices=sorted(WORKLOADS),
                        help="YCSB workload mix (default: A)")
    parser.add_argument("--servers", type=int, default=5)
    parser.add_argument("--clients", type=int, default=100,
                        help="total clients across the cluster")
    parser.add_argument("--duration-us", type=float, default=100.0,
                        help="measured simulated time per run")
    parser.add_argument("--seed", type=int, default=2021)


def _positive(kind):
    def parse(text: str):
        value = kind(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(f"must be positive: {text}")
        return value
    return parse


def _add_observability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome trace_event JSON timeline "
                             "(open in Perfetto / chrome://tracing)")
    parser.add_argument("--trace-jsonl", metavar="PATH", default=None,
                        help="stream trace records to a JSONL file")
    parser.add_argument("--trace-limit", type=_positive(int),
                        default=1_000_000,
                        help="max in-memory trace records (default: 1M)")
    parser.add_argument("--trace-ring", action="store_true",
                        help="keep the newest records when the limit is "
                             "hit instead of the oldest")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the run-report JSON (windowed "
                             "throughput/latency, VP/DP lag series)")
    parser.add_argument("--metrics-window-us", type=_positive(float),
                        default=10.0,
                        help="time-series window size (default: 10 us)")
    parser.add_argument("--journey-out", metavar="PATH", default=None,
                        help="track per-update journeys and write a "
                             "run-report JSON with the critical-path "
                             "waterfall (journeys section)")
    parser.add_argument("--journey-sample-every", type=_positive(int),
                        default=1, metavar="N",
                        help="track every Nth write (default: 1)")
    parser.add_argument("--journey-max", type=_positive(int), default=None,
                        metavar="N",
                        help="cap tracked journeys; later writes count "
                             "as dropped (default: unlimited)")
    parser.add_argument("--profile", action="store_true",
                        help="collect and print simulation-kernel "
                             "profile counters")
    parser.add_argument("--health", action="store_true",
                        help="sample cluster health on the simulation "
                             "clock (persist queues, causal buffers, "
                             "inflight rounds, invariant probes); folds "
                             "into --metrics-out and --trace-out")
    parser.add_argument("--health-interval-us", type=_positive(float),
                        default=5.0,
                        help="health sampling interval (default: 5 us)")
    parser.add_argument("--health-samples", type=_positive(int),
                        default=10_000,
                        help="max health samples kept (default: 10000)")
    parser.add_argument("--health-top-k", type=int, default=8,
                        help="hot keys tracked per sample (default: 8)")
    parser.add_argument("--history-out", metavar="PATH", default=None,
                        help="record every client-observed operation and "
                             "write the repro.history/1 JSONL artifact "
                             "(the black-box contract auditor's input)")
    parser.add_argument("--audit", action="store_true",
                        help="record the client history and audit it "
                             "against the 5x5 consistency/persistency "
                             "matrix after the run; exit code 1 if the "
                             "run's own model fails its contract")
    parser.add_argument("--history-limit", type=_positive(int),
                        default=1_000_000, metavar="N",
                        help="max recorded operations (default: 1M); an "
                             "over-limit history is truncated and "
                             "audits as unusable")


def _run_meta(args, model: DdpModel, duration_ns: float,
              warmup_ns: float) -> dict:
    """Artifact metadata, including the ``config_hash`` that lets
    ``repro diff`` refuse apples-to-oranges comparisons.  The hash
    covers the resolved experiment shape (model, workload, cluster
    size) but not the seed or duration, so same-shape runs with
    different seeds stay comparable."""
    return {
        "model": str(model),
        "consistency": model.consistency.value,
        "persistency": model.persistency.value,
        "workload": args.workload,
        "servers": args.servers,
        "clients": args.clients,
        "seed": args.seed,
        "duration_ns": duration_ns,
        "warmup_ns": warmup_ns,
        "config_hash": config_fingerprint({
            "model": str(model),
            "workload": args.workload,
            "servers": args.servers,
            "clients": args.clients,
        }),
    }


class _Observability:
    """The per-run observability sinks the CLI flags requested."""

    def __init__(self, args):
        want_trace = bool(getattr(args, "trace_out", None)
                          or getattr(args, "trace_jsonl", None))
        want_journey = bool(getattr(args, "journey_out", None))
        # A journey report rides in the full run-report document, so it
        # needs the same metrics/points collectors as --metrics-out.
        want_metrics = bool(getattr(args, "metrics_out", None)) or want_journey
        # Fail on an unwritable destination now, not after simulating.
        for path in (getattr(args, "trace_out", None), args.metrics_out,
                     getattr(args, "journey_out", None),
                     getattr(args, "history_out", None)):
            if path:
                try:
                    open(path, "w").close()
                except OSError as exc:
                    raise SystemExit(
                        f"repro: cannot write {path}: {exc}") from exc
        self.window_ns = args.metrics_window_us * 1000.0
        self.recorder = (HistoryRecorder(
                             max_ops=getattr(args, "history_limit",
                                             1_000_000))
                         if (getattr(args, "history_out", None)
                             or getattr(args, "audit", False)) else None)
        self.tracer = (Tracer(max_records=args.trace_limit,
                              ring=args.trace_ring)
                       if want_trace else None)
        self.points = PointsTracker(args.servers) if want_metrics else None
        self.journey = (JourneyTracker(
                            args.servers,
                            sample_every=args.journey_sample_every,
                            max_journeys=args.journey_max)
                        if want_journey else None)
        self.jsonl = (JsonlSink(args.trace_jsonl)
                      if getattr(args, "trace_jsonl", None) else None)
        self.metrics = (Metrics(window_ns=self.window_ns)
                        if want_metrics else None)
        self.profile = KernelProfile() if args.profile else None
        self.monitor = None
        if getattr(args, "health", False):
            self.monitor = HealthMonitor(
                interval_ns=args.health_interval_us * 1000.0,
                max_samples=args.health_samples,
                top_k=args.health_top_k)
            self.monitor.watch(tracer=self.tracer, journey=self.journey)
        sinks = [s for s in (self.tracer, self.points, self.journey,
                             self.jsonl)
                 if s is not None]
        self.engine_tracer = (sinks[0] if len(sinks) == 1
                              else FanoutTracer(sinks) if sinks else None)

    def finalize(self, args, model: DdpModel, summary, duration_ns: float,
                 warmup_ns: float, faults=None, audit=None) -> None:
        """Write the requested artifacts after the run."""
        if self.jsonl is not None:
            self.jsonl.close()
        meta = _run_meta(args, model, duration_ns, warmup_ns)
        waterfall = None
        if self.journey is not None:
            waterfall = aggregate_journeys(self.journey.journeys,
                                           args.servers, label=str(model),
                                           dropped=self.journey.dropped)
        if getattr(args, "trace_out", None):
            extra = (journey_chrome_events(self.journey.journeys,
                                           args.servers)
                     if self.journey is not None else [])
            if self.monitor is not None:
                extra = list(extra) + health_chrome_events(self.monitor)
            write_chrome_trace(args.trace_out, self.tracer.records,
                               dropped=self.tracer.dropped, meta=meta,
                               extra_events=extra or None)
            print(f"trace    -> {args.trace_out} "
                  f"({len(self.tracer)} records, "
                  f"{self.tracer.dropped} dropped)")
        if getattr(args, "metrics_out", None):
            report = build_run_report(summary, self.metrics, self.window_ns,
                                      meta=meta, points=self.points,
                                      profile=self.profile,
                                      tracer=self.tracer,
                                      journeys=waterfall,
                                      monitor=self.monitor,
                                      faults=faults, audit=audit)
            write_run_report(args.metrics_out, report)
            print(f"metrics  -> {args.metrics_out} "
                  f"(window {args.metrics_window_us:g} us)")
        if getattr(args, "journey_out", None):
            report = build_run_report(summary, self.metrics, self.window_ns,
                                      meta=meta, points=self.points,
                                      profile=self.profile,
                                      tracer=self.tracer,
                                      journeys=waterfall,
                                      monitor=self.monitor,
                                      faults=faults, audit=audit)
            write_run_report(args.journey_out, report)
            print(f"journeys -> {args.journey_out} "
                  f"({len(self.journey)} tracked, "
                  f"{self.journey.dropped} dropped)")
        if self.monitor is not None:
            print(f"health   :  {len(self.monitor)} samples "
                  f"(every {self.monitor.interval_ns / 1000:g} us, "
                  f"{self.monitor.dropped} dropped)  "
                  f"peak-queue={self.monitor.peak_event_queue_depth}  "
                  f"peak-nvm={self.monitor.peak_nvm_outstanding}  "
                  f"violations={self.monitor.violations_total}")
        if self.profile is not None:
            print(self.profile.format())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Data Persistency (MICRO 2021) reproduction")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="simulate one DDP model")
    run_parser.add_argument("--consistency", default="causal",
                            choices=[c.value for c in Consistency])
    run_parser.add_argument("--persistency", default="synchronous",
                            choices=[p.value for p in Persistency])
    _add_common(run_parser)
    _add_observability(run_parser)
    run_parser.add_argument("--faults", metavar="PLAN.json", default=None,
                            help="inject the faults described in a JSON "
                                 "plan (crashes, drops, delays, "
                                 "duplicates, partitions, NVM slowdowns) "
                                 "and validate durability contracts "
                                 "afterwards")
    run_parser.add_argument("--crash", metavar="NODE@T_US[+RESTART_US]",
                            action="append", default=None,
                            help="crash a node at a time (us), optionally "
                                 "restarting it after RESTART_US more; "
                                 "repeatable; combines with --faults")

    trace_parser = subparsers.add_parser(
        "trace", help="run one model and dump its event timeline")
    trace_parser.add_argument("input", nargs="?", default=None,
                              metavar="FILE",
                              help="re-open a saved Chrome-trace JSON "
                                   "instead of running a simulation")
    trace_parser.add_argument("--consistency", default="causal",
                              choices=[c.value for c in Consistency])
    trace_parser.add_argument("--persistency", default="synchronous",
                              choices=[p.value for p in Persistency])
    _add_common(trace_parser)
    trace_parser.add_argument("--out", metavar="PATH", default=None,
                              help="write the Chrome trace_event JSON here")
    trace_parser.add_argument("--limit", type=int, default=20,
                              help="records to print (default: 20)")
    trace_parser.add_argument("--category", action="append", default=None,
                              help="only trace these categories "
                                   "(repeatable)")
    trace_parser.add_argument("--max-records", type=_positive(int),
                              default=1_000_000,
                              help="max in-memory trace records "
                                   "(default: 1M)")
    trace_parser.add_argument("--ring", action="store_true",
                              help="keep the newest records when the "
                                   "limit is hit instead of the oldest")

    journey_parser = subparsers.add_parser(
        "journey", help="per-update critical-path latency waterfalls")
    journey_parser.add_argument("input", nargs="?", default=None,
                                metavar="FILE",
                                help="re-open a saved run-report JSON "
                                     "(journeys section) instead of "
                                     "running a simulation")
    journey_parser.add_argument("--consistency", default="causal",
                                choices=[c.value for c in Consistency])
    journey_parser.add_argument("--persistency", default="synchronous",
                                choices=[p.value for p in Persistency])
    journey_parser.add_argument("--all", action="store_true",
                                help="fig6-style sweep: one waterfall per "
                                     "model of the 5x5 matrix")
    _add_common(journey_parser)
    journey_parser.add_argument("--key", type=int, default=None,
                                help="only updates to this key")
    journey_parser.add_argument("--node", type=int, default=None,
                                help="only updates coordinated by this node")
    journey_parser.add_argument("--slowest", type=int, default=5,
                                help="slowest-N updates to break down "
                                     "individually (default: 5)")
    journey_parser.add_argument("--sample-every", type=_positive(int),
                                default=1,
                                help="track every Nth write (default: 1)")
    journey_parser.add_argument("--journey-out", metavar="PATH", default=None,
                                help="write the run-report JSON "
                                     "(repro.run_report/6) with the "
                                     "journeys section (single model only)")

    profile_parser = subparsers.add_parser(
        "profile", help="kernel performance observatory: hotspot "
                        "attribution and flamegraph export")
    profile_parser.add_argument("--consistency", default="causal",
                                choices=[c.value for c in Consistency])
    profile_parser.add_argument("--persistency", default="synchronous",
                                choices=[p.value for p in Persistency])
    _add_common(profile_parser)
    profile_parser.add_argument("--top", type=_positive(int), default=None,
                                metavar="N",
                                help="rows per hotspot section "
                                     "(default: all)")
    profile_parser.add_argument("--flame-out", metavar="PATH", default=None,
                                help="sample Python stacks and write "
                                     "Brendan-Gregg folded stacks "
                                     "(flamegraph.pl / speedscope input)")
    profile_parser.add_argument("--speedscope-out", metavar="PATH",
                                default=None,
                                help="sample Python stacks and write a "
                                     "speedscope JSON profile")
    profile_parser.add_argument("--sample-interval-ms", type=_positive(float),
                                default=5.0,
                                help="stack sampling wall interval "
                                     "(default: 5 ms)")
    profile_parser.add_argument("--json", action="store_true",
                                dest="as_json",
                                help="print the profile snapshot as JSON "
                                     "instead of the hotspot table")

    diff_parser = subparsers.add_parser(
        "diff", help="compare two run/sweep reports or bench artifacts "
                     "for regressions")
    diff_parser.add_argument("baseline", help="baseline artifact "
                             "(run report, sweep report, or "
                             "BENCH_*.json)")
    diff_parser.add_argument("candidate", help="candidate artifact to "
                             "judge against the baseline")
    diff_parser.add_argument("--threshold", type=_positive(float),
                             default=5.0, metavar="PCT",
                             help="noise threshold in percent "
                                  "(default: 5)")
    diff_parser.add_argument("--json", action="store_true", dest="as_json",
                             help="print the repro.diff_report/1 JSON "
                                  "instead of markdown")
    diff_parser.add_argument("--out", metavar="PATH", default=None,
                             help="also write the JSON diff document here")
    diff_parser.add_argument("--force", action="store_true",
                             help="compare despite a config-hash mismatch")

    audit_parser = subparsers.add_parser(
        "audit", help="verify a recorded client history against the 5x5 "
                      "consistency/persistency matrix")
    audit_parser.add_argument("history", metavar="HISTORY.jsonl",
                              help="repro.history/1 artifact from "
                                   "run --history-out")
    audit_parser.add_argument("--consistency", default=None,
                              choices=[c.value for c in Consistency],
                              help="override the target consistency model "
                                   "(default: the history's run metadata)")
    audit_parser.add_argument("--persistency", default=None,
                              choices=[p.value for p in Persistency],
                              help="override the target persistency model "
                                   "(default: the history's run metadata)")
    audit_parser.add_argument("--json", action="store_true", dest="as_json",
                              help="print the repro.audit_report/1 JSON "
                                   "instead of the verdict table")
    audit_parser.add_argument("--out", metavar="PATH", default=None,
                              help="also write the JSON audit report here")

    sweep_parser = subparsers.add_parser(
        "sweep", help="compare models on one workload; --workers fans "
                      "the matrix across processes")
    sweep_parser.add_argument("--all", action="store_true",
                              help="sweep all 25 models (slow)")
    _add_common(sweep_parser)
    sweep_parser.add_argument("--workers", type=_positive(int), default=1,
                              metavar="N",
                              help="worker processes (default: 1 = "
                                   "in-process); the merged artifact is "
                                   "byte-identical for any worker count")
    sweep_parser.add_argument("--seeds", type=int, nargs="+", default=None,
                              metavar="SEED",
                              help="run each model once per seed "
                                   "(default: just --seed)")
    sweep_parser.add_argument("--out", metavar="PATH", default=None,
                              help="write the merged repro.sweep_report/1 "
                                   "JSON here")
    sweep_parser.add_argument("--html-out", metavar="PATH", default=None,
                              help="also render the self-contained HTML "
                                   "dashboard here")
    sweep_parser.add_argument("--baseline", metavar="PATH", default=None,
                              help="sweep report to diff against in the "
                                   "dashboard")
    sweep_parser.add_argument("--bench-dir", metavar="DIR", default=None,
                              help="BENCH_*.json directory for dashboard "
                                   "trend sparklines")
    sweep_parser.add_argument("--journeys", action="store_true",
                              help="embed per-cell journey waterfalls")
    sweep_parser.add_argument("--health", action="store_true",
                              help="embed per-cell health sections")
    sweep_parser.add_argument("--profile", action="store_true",
                              help="embed per-cell kernel profiles "
                                   "(deterministic counters only)")
    sweep_parser.add_argument("--audit", action="store_true",
                              help="embed per-cell black-box audit "
                                   "verdicts")
    sweep_parser.add_argument("--no-progress", action="store_true",
                              help="suppress the stderr progress "
                                   "telemetry")

    dash_parser = subparsers.add_parser(
        "dash", help="render a sweep report as a static HTML dashboard")
    dash_parser.add_argument("report", metavar="SWEEP.json",
                             help="repro.sweep_report/1 artifact from "
                                  "sweep --out")
    dash_parser.add_argument("--out", metavar="PATH", default=None,
                             help="output HTML path "
                                  "(default: <report>.html)")
    dash_parser.add_argument("--baseline", metavar="PATH", default=None,
                             help="sweep report to diff against "
                                  "(deltas colored by repro diff verdict)")
    dash_parser.add_argument("--bench-dir", metavar="DIR", default=None,
                             help="BENCH_*.json directory for trend "
                                  "sparklines")
    dash_parser.add_argument("--title", default="DDP sweep dashboard",
                             help="page title")

    tradeoff_parser = subparsers.add_parser(
        "tradeoffs", help="print the derived Table 4")
    tradeoff_parser.add_argument("--all", action="store_true",
                                 help="derive all 25 models")

    recover_parser = subparsers.add_parser(
        "recover", help="crash mid-run and simulate recovery")
    recover_parser.add_argument("--consistency", default="causal",
                                choices=[c.value for c in Consistency])
    recover_parser.add_argument("--persistency", default="synchronous",
                                choices=[p.value for p in Persistency])
    recover_parser.add_argument("--strategy", default="latest",
                                choices=["latest", "majority"])
    _add_common(recover_parser)

    add_lint_parser(subparsers)
    add_order_parser(subparsers)
    return parser


def _faults_from(args) -> Optional[FaultInjector]:
    """Build the injector requested by ``--faults`` / ``--crash``."""
    plan = None
    if getattr(args, "faults", None):
        try:
            plan = load_fault_plan(args.faults)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro: bad fault plan {args.faults}: {exc}")
    if getattr(args, "crash", None):
        crash_plan = plan_from_crash_specs(args.crash, seed=args.seed)
        if plan is None:
            plan = crash_plan
        else:
            import dataclasses
            plan = dataclasses.replace(
                plan, events=tuple(sorted(plan.events + crash_plan.events,
                                          key=lambda e: (e.at_ns, e.kind))))
    return FaultInjector(plan) if plan is not None else None


def _print_fault_outcome(cluster, injector) -> int:
    """Fault/recovery summary + contract validation; returns exit code."""
    network = cluster.network
    resends = sum(e.round_resends for e in cluster.engines)
    retargeted = sum(e.rounds_retargeted for e in cluster.engines)
    print(f"\nfaults   :  crashes={injector.crashes} "
          f"detections={injector.detections} restarts={injector.restarts} "
          f"txns-abandoned={injector.txns_abandoned} "
          f"ops-severed={injector.ops_severed}")
    print(f"network  :  dropped={network.dropped_messages} "
          f"delayed={network.delayed_messages} "
          f"duplicated={network.duplicated_messages}")
    print(f"rounds   :  resends={resends} retargeted={retargeted} "
          f"epoch={cluster.membership.epoch} "
          f"live={sorted(cluster.membership.live)}")
    failed = False
    for result in validate_faulty_run(cluster):
        status = "ok" if result.ok else "VIOLATED"
        print(f"check    :  {result.name:28s} {status}")
        for violation in result.violations[:5]:
            print(f"            {violation}")
        if len(result.violations) > 5:
            print(f"            ... and {len(result.violations) - 5} more")
        failed = failed or not result.ok
    return 1 if failed else 0


def _cmd_run(args) -> int:
    model = _model_from(args)
    duration = args.duration_us * 1000.0
    warmup = duration / 10
    obs = _Observability(args)
    injector = _faults_from(args)
    cluster = Cluster(model, config=_config_from(args),
                      workload=WORKLOADS[args.workload],
                      tracer=obs.engine_tracer,
                      metrics=obs.metrics,
                      profile=obs.profile,
                      monitor=obs.monitor,
                      faults=injector,
                      history=obs.recorder)
    summary = cluster.run(duration, warmup_ns=warmup)
    print(format_summary_table([(str(model), summary)]))
    print(f"\npersists={summary.persists}  messages={summary.total_messages}"
          f"  causal-buffer-peak={summary.causal_buffer_peak}"
          f"  txn-conflicts={summary.txn_conflicts}")
    exit_code = 0
    if injector is not None:
        exit_code = _print_fault_outcome(cluster, injector)
    audit_report = None
    if obs.recorder is not None:
        obs.recorder.meta = _run_meta(args, model, duration, warmup)
        obs.recorder.recovered = recovered_from_cluster(cluster)
        history = obs.recorder.history()
        if args.history_out:
            write_history(args.history_out, history)
            print(f"history  -> {args.history_out} "
                  f"({len(history.ops)} ops, "
                  f"{history.dropped} dropped)")
        if args.audit:
            audit_report = audit_history(history)
            print()
            print(format_audit_table(audit_report))
            exit_code = max(exit_code, audit_exit_code(audit_report))
    obs.finalize(args, model, summary, duration, warmup, faults=injector,
                 audit=audit_report)
    return exit_code


def _load_trace_file(path: str) -> dict:
    """Load a saved Chrome-trace JSON; :class:`DiffError` if unusable."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise DiffError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DiffError(f"{path} is not valid JSON ({exc})") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"),
                                                   list):
        raise DiffError(f"{path}: not a Chrome trace_event file "
                        f"(no traceEvents array)")
    return doc


def _show_trace_file(args) -> int:
    try:
        doc = _load_trace_file(args.input)
    except DiffError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    events = doc["traceEvents"]
    other = doc.get("otherData", {})
    model = other.get("model", "?")
    print(f"{args.input}: model {model}   "
          f"{other.get('record_count', len(events))} records, "
          f"{other.get('dropped_records', 0)} dropped")
    counts: dict = {}
    for event in events:
        if event.get("ph") == "M":
            continue
        name = str(event.get("name", "?"))
        counts[name] = counts.get(name, 0) + 1
    print("\nevent counts:")
    for name, count in sorted(counts.items()):
        print(f"  {name:28s} {count:8d}")
    return 0


def _cmd_trace(args) -> int:
    if args.input is not None:
        return _show_trace_file(args)
    model = _model_from(args)
    duration = args.duration_us * 1000.0
    warmup = duration / 10
    tracer = Tracer(categories=args.category, max_records=args.max_records,
                    ring=args.ring)
    summary = run_simulation(model, WORKLOADS[args.workload],
                             config=_config_from(args),
                             duration_ns=duration,
                             warmup_ns=warmup,
                             tracer=tracer)
    print(f"model: {model}   throughput: "
          f"{summary.throughput_ops_per_s / 1e6:.2f} Mops/s   "
          f"records: {len(tracer)}   dropped: {tracer.dropped}")
    if tracer.dropped:
        end = "oldest" if args.ring else "newest"
        print(f"WARNING: timeline truncated — {tracer.dropped} {end} "
              f"records dropped at the --max-records={args.max_records} "
              f"cap; raise it or switch --ring to change which end is "
              f"kept")
    print("\ncategory counts:")
    for category, count in sorted(tracer.categories().items()):
        print(f"  {category:28s} {count:8d}")
    if args.limit > 0:
        print(f"\nfirst {min(args.limit, len(tracer))} records:")
        print(tracer.dump(limit=args.limit))
    if args.out:
        write_chrome_trace(args.out, tracer.records, dropped=tracer.dropped,
                           meta={"model": str(model),
                                 "workload": args.workload,
                                 "seed": args.seed})
        print(f"\ntrace -> {args.out}")
    return 0


def _show_journey_file(args) -> int:
    try:
        doc = load_artifact(args.input)
    except DiffError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    journeys = doc.get("journeys")
    if not isinstance(journeys, dict):
        print(f"repro: {args.input}: run report has no journeys section "
              f"(produce one with --journey-out)", file=sys.stderr)
        return 2
    meta = doc.get("meta", {})
    print(f"{args.input}: model {meta.get('model', '?')}   "
          f"{journeys.get('journeys', 0)} journeys, "
          f"{journeys.get('dropped', 0)} dropped")
    for point in ("vp", "dp"):
        aggregate = journeys.get(point)
        if not aggregate:
            print(f"  {point}: no completed journeys")
            continue
        buckets = aggregate.get("buckets_ns", {})
        top = sorted(buckets.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        split = "  ".join(f"{name} {ns / 1000:.1f}us" for name, ns in top)
        print(f"  {point}: {aggregate.get('count', 0)} journeys, "
              f"mean {aggregate.get('mean_latency_ns', 0.0) / 1000:.2f} us"
              f"   top buckets: {split}")
    return 0


def _cmd_journey(args) -> int:
    if args.input is not None:
        return _show_journey_file(args)
    if args.journey_out and args.all:
        raise SystemExit("repro: --journey-out needs a single model "
                         "(drop --all)")
    duration = args.duration_us * 1000.0
    warmup = duration / 10
    window_ns = 10_000.0
    models = all_ddp_models() if args.all else [_model_from(args)]
    first = True
    for model in models:
        tracker = JourneyTracker(args.servers,
                                 sample_every=args.sample_every)
        metrics = (Metrics(window_ns=window_ns)
                   if args.journey_out else None)
        points = PointsTracker(args.servers) if args.journey_out else None
        engine_tracer = (tracker if points is None
                         else FanoutTracer([tracker, points]))
        summary = run_simulation(model, WORKLOADS[args.workload],
                                 config=_config_from(args),
                                 duration_ns=duration,
                                 warmup_ns=warmup,
                                 tracer=engine_tracer,
                                 metrics=metrics)
        journeys = tracker.journeys
        if args.key is not None:
            journeys = [j for j in journeys if j.key == args.key]
        if args.node is not None:
            journeys = [j for j in journeys if j.coordinator == args.node]
        report = aggregate_journeys(journeys, args.servers,
                                    label=str(model),
                                    slowest=args.slowest,
                                    dropped=tracker.dropped)
        if not first:
            print()
        first = False
        print(format_waterfall(report))
        if args.journey_out:
            meta = _run_meta(args, model, duration, warmup)
            doc = build_run_report(summary, metrics, window_ns, meta=meta,
                                   points=points, journeys=report)
            write_run_report(args.journey_out, doc)
            print(f"\njourneys -> {args.journey_out} "
                  f"({len(tracker)} tracked, {tracker.dropped} dropped)")
    return 0


def _cmd_profile(args) -> int:
    model = _model_from(args)
    duration = args.duration_us * 1000.0
    warmup = duration / 10
    # Fail on an unwritable destination now, not after simulating.
    for path in (args.flame_out, args.speedscope_out):
        if path:
            try:
                open(path, "w").close()
            except OSError as exc:
                print(f"repro: cannot write {path}: {exc}", file=sys.stderr)
                return 2
    profile = KernelProfile()
    sampler = None
    if args.flame_out or args.speedscope_out:
        sampler = FrameSampler(interval_s=args.sample_interval_ms / 1000.0)
        sampler.start()
    try:
        summary = run_simulation(model, WORKLOADS[args.workload],
                                 config=_config_from(args),
                                 duration_ns=duration,
                                 warmup_ns=warmup,
                                 profile=profile)
    finally:
        if sampler is not None:
            sampler.stop()
    if args.as_json:
        doc = {
            "schema": KERNEL_PROFILE_SCHEMA,
            "meta": _run_meta(args, model, duration, warmup),
            "profile": profile.snapshot(),
        }
        if sampler is not None:
            doc["sampling"] = {
                "samples": len(sampler.samples),
                "interval_ms": args.sample_interval_ms,
                "phase_seconds": sampler.phase_totals(),
            }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(f"model: {model}   throughput: "
              f"{summary.throughput_ops_per_s / 1e6:.2f} Mops/s   "
              f"{profile.format()}")
        print()
        print(format_hotspots(profile, top=args.top))
    if sampler is not None and not args.as_json:
        totals = sampler.phase_totals()
        split = "  ".join(f"{phase} {seconds * 1e3:.0f}ms" for phase, seconds
                          in sorted(totals.items(), key=lambda kv: -kv[1]))
        print(f"\nsampled  :  {len(sampler.samples)} stacks "
              f"(every {args.sample_interval_ms:g} ms)  {split}")
    if args.flame_out:
        lines = sampler.write_folded(args.flame_out)
        print(f"folded   -> {args.flame_out} ({lines} stack lines)")
    if args.speedscope_out:
        sampler.write_speedscope(args.speedscope_out, name=str(model))
        print(f"speedscope -> {args.speedscope_out}")
    return 0


def _cmd_diff(args) -> int:
    try:
        report = diff_paths(args.baseline, args.candidate,
                            threshold=args.threshold / 100.0,
                            force=args.force)
    except DiffError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    doc = diff_json(report)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
    if args.as_json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(format_markdown(report))
    return 1 if report.verdict == "regression" else 0


def _cmd_audit(args) -> int:
    try:
        history = load_history(args.history)
    except (OSError, ValueError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    report = audit_history(history, consistency=args.consistency,
                           persistency=args.persistency)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_audit_table(report))
    return audit_exit_code(report)


def _dashboard_inputs(args):
    """Load the optional dashboard context (baseline sweep, bench dir).

    :class:`DiffError` propagates for an unusable baseline — the caller
    maps it to exit code 2."""
    baseline = load_artifact(args.baseline) if args.baseline else None
    bench = load_bench_dir(args.bench_dir) if args.bench_dir else []
    return baseline, bench


def _cmd_sweep(args) -> int:
    duration = args.duration_us * 1000.0
    if args.all:
        models = all_ddp_models()
    else:
        models = [
            DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS),
            DdpModel(Consistency.READ_ENFORCED, Persistency.SYNCHRONOUS),
            DdpModel(Consistency.TRANSACTIONAL, Persistency.SYNCHRONOUS),
            DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS),
            DdpModel(Consistency.CAUSAL, Persistency.EVENTUAL),
            DdpModel(Consistency.EVENTUAL, Persistency.EVENTUAL),
        ]
    seeds = args.seeds if args.seeds else [args.seed]
    sections = tuple(name for name in ("journeys", "health", "profile",
                                       "audit") if getattr(args, name))
    specs = matrix_specs(models, seeds, workload=args.workload,
                         servers=args.servers, clients=args.clients,
                         duration_ns=duration, warmup_ns=duration / 10,
                         sections=sections)
    progress = (None if args.no_progress
                else SweepProgress(len(specs), workers=args.workers))
    results = run_sweep(specs, workers=args.workers, progress=progress)
    doc = build_sweep_report(results)
    if args.out:
        write_sweep_report(args.out, doc)
        print(f"sweep report -> {args.out} "
              f"({doc['totals']['ok']}/{doc['totals']['cells']} cells ok)")
    if args.html_out:
        try:
            baseline_doc, bench = _dashboard_inputs(args)
        except DiffError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return 2
        write_dashboard(args.html_out,
                        build_dashboard(doc, baseline=baseline_doc,
                                        bench_docs=bench))
        print(f"dashboard -> {args.html_out}")
    by_key = {(r.spec.consistency, r.spec.persistency, r.spec.seed): r
              for r in results}
    rows = []
    baseline = None
    for model in models:
        result = by_key[(model.consistency.value, model.persistency.value,
                         seeds[0])]
        if result.status != "ok":
            continue
        if baseline is None:
            baseline = result.summary
        rows.append((str(model), result.summary))
    if rows:
        print(format_summary_table(rows, baseline=baseline))
    errors = doc["totals"]["errors"]
    if errors:
        print(f"repro: {errors} sweep cell(s) errored", file=sys.stderr)
        return 1
    return 0


def _cmd_dash(args) -> int:
    try:
        with open(args.report) as fh:
            doc = json.load(fh)
    except OSError as exc:
        print(f"repro: cannot read {args.report}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"repro: {args.report} is not valid JSON ({exc})",
              file=sys.stderr)
        return 2
    try:
        validate_artifact(doc, family="repro.sweep_report",
                          path=args.report)
    except SchemaError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    try:
        baseline_doc, bench = _dashboard_inputs(args)
    except DiffError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    out = args.out or args.report + ".html"
    write_dashboard(out, build_dashboard(doc, baseline=baseline_doc,
                                         bench_docs=bench,
                                         title=args.title))
    print(f"dashboard -> {out}")
    return 0


def _cmd_tradeoffs(args) -> int:
    models = all_ddp_models() if args.all else None
    for profile in analyze_all(models):
        print(profile.row())
    return 0


def _cmd_recover(args) -> int:
    model = _model_from(args)
    duration = args.duration_us * 1000.0
    cluster = Cluster(model, config=_config_from(args),
                      workload=WORKLOADS[args.workload])
    cluster.run(duration_ns=duration, warmup_ns=duration / 10)
    cluster.crash_all()
    report = RecoveryReplayer(cluster).simulate(args.strategy)
    print(f"model                : {model}")
    print(f"strategy             : {report.strategy}")
    print(f"keys in NVM images   : {report.total_keys}")
    print(f"divergent keys       : {report.divergent_keys} "
          f"({report.divergence_fraction:.1%})")
    print(f"scan time            : {report.scan_ns / 1000:.1f} us")
    print(f"reconciliation time  : {report.reconcile_ns / 1000:.1f} us")
    print(f"total recovery time  : {report.total_ns / 1000:.1f} us")
    print(f"recovered keys       : {len(report.state)}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "trace": _cmd_trace,
    "journey": _cmd_journey,
    "profile": _cmd_profile,
    "diff": _cmd_diff,
    "audit": _cmd_audit,
    "sweep": _cmd_sweep,
    "dash": _cmd_dash,
    "tradeoffs": _cmd_tradeoffs,
    "recover": _cmd_recover,
    "lint": cmd_lint,
    "order": cmd_order,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
