"""Durability and intuition-property checkers (paper Section 6).

These validate, against a recovered state, the contracts each DDP model
makes in Tables 2 and 4:

* *Non-stale reads across a crash*: every write that **completed** (the
  client was acknowledged) before the crash must be recoverable.  Holds
  for <Linearizable/Transactional, Strict/Synchronous> models.
* *Read durability* (Read-Enforced persistency): every value that was
  **read** before the crash must be recoverable — unread writes may be
  lost.
* *Scope atomicity* (Scope persistency): for every scope, either all of
  its writes are durable at a node or none influence recovery (partial
  scopes are discarded).

The inputs are plain records collected by the caller (tests, the crash
example), keeping the checkers independent of how the run was driven.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.core.replica import Version
from repro.recovery.log import NvmLog
from repro.recovery.recovery import RecoveredState

__all__ = ["CheckResult", "check_completed_writes_recovered",
           "check_read_values_recovered", "check_scope_atomicity",
           "check_monotonic_reads"]


@dataclass
class CheckResult:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def check_completed_writes_recovered(
        recovered: RecoveredState,
        completed_writes: Iterable[Tuple[int, Version]]) -> CheckResult:
    """Non-stale reads across a crash: completed writes survive."""
    violations = []
    for key, version in completed_writes:
        if recovered.version_of(key) < version:
            violations.append(
                f"key {key}: completed write {version} lost "
                f"(recovered {recovered.version_of(key)})")
    return CheckResult("completed_writes_recovered", not violations, violations)


def check_read_values_recovered(
        recovered: RecoveredState,
        observed_reads: Iterable[Tuple[int, Version]]) -> CheckResult:
    """Read-Enforced durability: every read value survives."""
    violations = []
    for key, version in observed_reads:
        if version[0] <= 0:
            continue  # read of the initial (absent) value
        if recovered.version_of(key) < version:
            violations.append(
                f"key {key}: read version {version} lost "
                f"(recovered {recovered.version_of(key)})")
    return CheckResult("read_values_recovered", not violations, violations)


def check_scope_atomicity(log: NvmLog, node_ids,
                          scope_writes: Dict[int, List[Tuple[int, Version]]]
                          ) -> CheckResult:
    """Scope persistency: a scope is recoverable all-or-nothing per node.

    ``scope_writes`` maps scope_id -> the (key, version) pairs the scope
    contained.
    """
    violations = []
    for node_id in node_ids:
        for scope_id, writes in scope_writes.items():
            recovered_flags = []
            for key, version in writes:
                entry = log.durable_entry(node_id, key)
                recovered_flags.append(
                    entry is not None and entry.version >= version)
            if log.is_scope_committed(node_id, scope_id):
                if not all(recovered_flags):
                    violations.append(
                        f"node {node_id} scope {scope_id}: committed but "
                        f"not fully recoverable")
            # An uncommitted scope's entries are filtered out by
            # NvmLog.durable_entry, so nothing to check on that side
            # unless a *newer committed* version re-covered the key.
    return CheckResult("scope_atomicity", not violations, violations)


def check_monotonic_reads(
        read_sequence: Iterable[Tuple[int, Version]]) -> CheckResult:
    """Within one observer, per-key read versions never go backward."""
    last_seen: Dict[int, Version] = {}
    violations = []
    for key, version in read_sequence:
        previous = last_seen.get(key)
        if previous is not None and version < previous:
            violations.append(
                f"key {key}: read {version} after having read {previous}")
        last_seen[key] = version
    return CheckResult("monotonic_reads", not violations, violations)
