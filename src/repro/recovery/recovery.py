"""Crash recovery from the durable NVM images.

After a volatile-storage failure, each node's recoverable state is its
NVM image (scope-uncommitted entries excluded).  Cluster recovery
reconciles the per-node images into one post-crash state.  The paper
(Section 9) notes that strict DDP models have trivial recovery (all
nodes share the same persistent view) while weak models may need an
advanced, e.g. voting-based, algorithm — we implement both:

* :func:`recover_latest` — take the highest durable version of each key
  across nodes.  Correct whenever versions are only persisted after
  being legitimately produced (all our models), and the natural choice
  for strict models.
* :func:`recover_majority` — voting-based: prefer the value durable at a
  majority of nodes, falling back to the latest version for keys with no
  majority.  This is the conservative choice for Eventual models, where
  a lone node may hold a version that was never acknowledged anywhere.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.replica import Version, ZERO_VERSION
from repro.recovery.log import NvmLog

__all__ = ["RecoveredState", "recover_latest", "recover_majority",
           "recovery_divergence"]


@dataclass(frozen=True)
class RecoveredState:
    """Cluster state after recovery: key -> (version, value)."""

    entries: Dict[int, Tuple[Version, Any]]
    strategy: str

    def version_of(self, key: int) -> Version:
        entry = self.entries.get(key)
        return entry[0] if entry is not None else ZERO_VERSION

    def value_of(self, key: int) -> Any:
        entry = self.entries.get(key)
        return entry[1] if entry is not None else None

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: int) -> bool:
        return key in self.entries


def _trace_resolution(tracer, now: float, strategy: str,
                      entries: Dict[int, Tuple[Version, Any]],
                      scanned_keys: int) -> None:
    if tracer is None or not tracer.enabled:
        return
    tracer.emit(now, "recovery_resolve", strategy=strategy,
                recovered_keys=len(entries), scanned_keys=scanned_keys)


def recover_latest(log: NvmLog, node_ids, tracer=None,
                   now: float = 0.0) -> RecoveredState:
    """Highest durable version of every key across all nodes."""
    entries: Dict[int, Tuple[Version, Any]] = {}
    all_keys = log.all_keys()
    for key in all_keys:
        best: Optional[Tuple[Version, Any]] = None
        for node_id in node_ids:
            entry = log.durable_entry(node_id, key)
            if entry is None:
                continue
            if best is None or entry.version > best[0]:
                best = (entry.version, entry.value)
        if best is not None:
            entries[key] = best
    _trace_resolution(tracer, now, "latest", entries, len(all_keys))
    return RecoveredState(entries, strategy="latest")


def recover_majority(log: NvmLog, node_ids, tracer=None,
                     now: float = 0.0) -> RecoveredState:
    """Voting-based recovery: majority version wins, latest breaks it."""
    node_ids = list(node_ids)
    quorum = len(node_ids) // 2 + 1
    entries: Dict[int, Tuple[Version, Any]] = {}
    all_keys = log.all_keys()
    for key in all_keys:
        votes: Counter = Counter()
        values: Dict[Version, Any] = {}
        for node_id in node_ids:
            entry = log.durable_entry(node_id, key)
            if entry is None:
                continue
            votes[entry.version] += 1
            values[entry.version] = entry.value
        if not votes:
            continue
        majority = [v for v, count in votes.items() if count >= quorum]
        if majority:
            version = max(majority)
        else:
            version = max(votes)
        entries[key] = (version, values[version])
    _trace_resolution(tracer, now, "majority", entries, len(all_keys))
    return RecoveredState(entries, strategy="majority")


def recovery_divergence(log: NvmLog, node_ids) -> Dict[int, int]:
    """Per-key count of distinct durable versions across nodes.

    Strict models should show 1 everywhere (all nodes share the same
    persistent view); weak models diverge, which is what makes their
    recovery complex (paper Section 9).
    """
    node_ids = list(node_ids)
    divergence: Dict[int, int] = {}
    for key in log.all_keys():
        versions = set()
        for node_id in node_ids:
            entry = log.durable_entry(node_id, key)
            if entry is not None:
                versions.add(entry.version)
        if versions:
            divergence[key] = len(versions)
    return divergence
