"""Simulating the recovery process itself (paper Section 9).

"Irrespective of the DDP model, a recovery algorithm is invoked on a
crash.  The complexity of the recovery is higher in the weaker models
than in the stricter ones" — strict models leave every node with the
same persistent view (one scan, no reconciliation), while weak models
diverge and may need a voting round.

:class:`RecoveryReplayer` measures that cost in simulated time:

1. **Scan** — each node reads every durable entry from its NVM
   (140 ns reads, queued at the real banked device, so large images and
   few banks genuinely take longer).
2. **Digest exchange** — nodes exchange per-key version digests
   (one broadcast round; bytes proportional to the image size).
3. **Resolution** — divergent keys need value shipping: one message per
   divergent key; the voting strategy adds a second full round.

The recovered state itself comes from :mod:`repro.recovery.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.messages import CAUHIST_ENTRY_BYTES, VALUE_BYTES
from repro.recovery.recovery import (
    RecoveredState,
    recover_latest,
    recover_majority,
    recovery_divergence,
)

__all__ = ["RecoveryReport", "RecoveryReplayer"]

DIGEST_ENTRY_BYTES = CAUHIST_ENTRY_BYTES


@dataclass(frozen=True)
class RecoveryReport:
    """Timing and outcome of one simulated recovery."""

    strategy: str
    scan_ns: float
    reconcile_ns: float
    divergent_keys: int
    total_keys: int
    state: RecoveredState

    @property
    def total_ns(self) -> float:
        return self.scan_ns + self.reconcile_ns

    @property
    def divergence_fraction(self) -> float:
        return self.divergent_keys / max(self.total_keys, 1)


class RecoveryReplayer:
    """Replays recovery on a crashed cluster, in simulated time."""

    def __init__(self, cluster):
        self.cluster = cluster

    # -- phase 1: NVM scans ------------------------------------------------------

    def _scan_node(self, node) -> Generator:
        log = self.cluster.nvm_log
        for key in log.durable_keys(node.node_id):
            yield from node.memory.nvm_read(key)

    def _run_scans(self) -> float:
        sim = self.cluster.sim
        start = sim.now
        scans = [sim.process(self._scan_node(node), name=f"recover{node.node_id}")
                 for node in self.cluster.nodes]
        gate = sim.all_of(scans)
        while not gate.triggered:
            sim.step()
        return sim.now - start

    # -- phase 2/3: reconciliation ---------------------------------------------------

    def _reconcile_ns(self, divergent: int, total: int, rounds: int) -> float:
        network = self.cluster.network.config
        digest_bytes = total * DIGEST_ENTRY_BYTES
        serialization = digest_bytes / network.bandwidth_bytes_per_ns
        per_round = network.round_trip_ns + serialization
        resolution = divergent * (VALUE_BYTES / network.bandwidth_bytes_per_ns)
        return rounds * per_round + resolution

    # -- entry point ----------------------------------------------------------------------

    def simulate(self, strategy: str = "latest") -> RecoveryReport:
        """Run recovery on the (crashed) cluster; advances simulated time
        by the scan duration and returns the full report."""
        sim = self.cluster.sim
        tracer = getattr(self.cluster, "tracer", None)
        tracing = tracer is not None and tracer.enabled
        node_ids = [node.node_id for node in self.cluster.nodes]
        log = self.cluster.nvm_log

        scan_ns = self._run_scans()
        if tracing:
            tracer.emit(sim.now, "recovery_scan", dur=scan_ns,
                        nodes=len(node_ids))

        divergence = recovery_divergence(log, node_ids)
        divergent = sum(1 for count in divergence.values() if count > 1)
        total = len(log.all_keys())

        if strategy == "latest":
            state = recover_latest(log, node_ids, tracer=tracer, now=sim.now)
            rounds = 1
        elif strategy == "majority":
            state = recover_majority(log, node_ids, tracer=tracer,
                                     now=sim.now)
            rounds = 2  # vote collection + decision dissemination
        else:
            raise ValueError(f"unknown recovery strategy {strategy!r}")

        reconcile_ns = self._reconcile_ns(divergent, total, rounds)
        if tracing:
            # Reconciliation is modeled analytically, not stepped through
            # the kernel: place the span after the scan on the timeline.
            tracer.emit(sim.now + reconcile_ns, "recovery_reconcile",
                        dur=reconcile_ns, strategy=strategy,
                        divergent_keys=divergent, total_keys=total)
        return RecoveryReport(strategy=strategy, scan_ns=scan_ns,
                              reconcile_ns=reconcile_ns,
                              divergent_keys=divergent, total_keys=total,
                              state=state)
