"""The durable NVM image of each node.

:class:`NvmLog` is the recovery system's view of what each node's NVM
contains: the latest persisted (key, version, value) per key, plus scope
commit markers.  The protocol engine records into it at each persist
completion; :mod:`repro.recovery.recovery` reads it back after a crash.

Scope persistency semantics (paper Section 2.2): on a volatile-storage
failure "the state of all the completed scopes is recovered, and that of
those partially executed is discarded" — so entries tagged with a scope
id are recoverable only if that scope's commit marker was written.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from repro.core.replica import Version, ZERO_VERSION

__all__ = ["DurableEntry", "NvmLog"]


@dataclass(frozen=True)
class DurableEntry:
    """One persisted update in a node's NVM."""

    key: int
    version: Version
    value: Any
    scope_id: Optional[int] = None


class NvmLog:
    """Durable state of the whole cluster, one image per node.

    Scope-tagged persists follow redo-log semantics: the entry lands in a
    per-scope staging area and only becomes part of the recoverable image
    once the scope's commit marker is written.  A crash between the data
    persists and the commit therefore discards the partial scope without
    damaging earlier committed state, as the paper requires.
    """

    def __init__(self, node_ids):
        self._images: Dict[int, Dict[int, DurableEntry]] = {
            node_id: {} for node_id in node_ids}
        self._pending_scopes: Dict[int, Dict[int, Dict[int, DurableEntry]]] = {
            node_id: {} for node_id in node_ids}
        self._committed_scopes: Dict[int, Set[int]] = {
            node_id: set() for node_id in node_ids}
        self.total_records = 0

    # -- written by the protocol engine ------------------------------------------

    def record(self, node_id: int, key: int, version: Version, value: Any,
               scope_id: Optional[int] = None) -> None:
        """Persist completion at ``node_id`` for (key, version)."""
        self.total_records += 1
        entry = DurableEntry(key, version, value, scope_id)
        if scope_id is not None:
            self._pending_scopes[node_id].setdefault(scope_id, {})[key] = entry
            return
        self._install(node_id, entry)

    def _install(self, node_id: int, entry: DurableEntry) -> None:
        image = self._images[node_id]
        current = image.get(entry.key)
        if current is None or entry.version > current.version:
            image[entry.key] = entry

    def commit_scope(self, node_id: int, scope_id: int) -> None:
        """All of a scope's writes are durable at ``node_id``: write the
        commit marker and fold the staged entries into the image."""
        self._committed_scopes[node_id].add(scope_id)
        staged = self._pending_scopes[node_id].pop(scope_id, {})
        for entry in staged.values():
            self._install(node_id, entry)

    # -- read by the recovery system -----------------------------------------------

    def durable_entry(self, node_id: int, key: int) -> Optional[DurableEntry]:
        """The recoverable entry for ``key`` at ``node_id`` (staged entries
        of uncommitted scopes are invisible)."""
        return self._images[node_id].get(key)

    def durable_keys(self, node_id: int) -> List[int]:
        return [key for key in self._images[node_id]
                if self.durable_entry(node_id, key) is not None]

    def durable_version(self, node_id: int, key: int) -> Version:
        entry = self.durable_entry(node_id, key)
        return entry.version if entry is not None else ZERO_VERSION

    def is_scope_committed(self, node_id: int, scope_id: int) -> bool:
        return scope_id in self._committed_scopes[node_id]

    def all_keys(self) -> Set[int]:
        keys: Set[int] = set()
        for image in self._images.values():
            keys.update(image)
        return keys
