"""Recovery substrate: durable logs, crash recovery, invariant checkers."""

from repro.recovery.checker import (
    CheckResult,
    check_completed_writes_recovered,
    check_monotonic_reads,
    check_read_values_recovered,
    check_scope_atomicity,
)
from repro.recovery.log import DurableEntry, NvmLog
from repro.recovery.recovery import (
    RecoveredState,
    recover_latest,
    recover_majority,
    recovery_divergence,
)
from repro.recovery.replayer import RecoveryReplayer, RecoveryReport

__all__ = [
    "CheckResult",
    "DurableEntry",
    "NvmLog",
    "RecoveredState",
    "RecoveryReplayer",
    "RecoveryReport",
    "check_completed_writes_recovered",
    "check_monotonic_reads",
    "check_read_values_recovered",
    "check_scope_atomicity",
    "recover_latest",
    "recover_majority",
    "recovery_divergence",
]
