#!/usr/bin/env python3
"""Transactional consistency: concurrent bank transfers with conflicts.

Two tellers at different servers move money between overlapping sets of
accounts inside transactions (<Transactional, Synchronous>), running
*concurrently* in simulated time.  The conflict detector squashes the
younger transaction when their read/write sets collide; the squashed
teller backs off and retries.  At the end, the total balance is
conserved and every committed transfer is durable at every node
(completed transactions are never lost — Table 4 row 3).
"""

from repro import Cluster, ClusterConfig, Consistency, DdpModel, Persistency
from repro.core.context import ClientContext
from repro.txn.manager import TxnConflict

INITIAL_BALANCE = 1000
ACCOUNTS = [0, 1, 2, 3]


class Teller:
    """A concurrent client issuing transactional transfers."""

    def __init__(self, cluster, node, client_id, transfers):
        self.cluster = cluster
        self.engine = cluster.engines[node]
        self.ctx = ClientContext(client_id, node)
        self.transfers = transfers
        self.retries = 0
        self.completed = 0

    def run(self):
        """Process: perform every transfer, retrying squashed ones."""
        sim = self.cluster.sim
        for src, dst, amount in self.transfers:
            while True:
                try:
                    yield from self.engine.client_begin_txn(self.ctx)
                    from_balance = yield from self.engine.client_read(
                        self.ctx, src)
                    to_balance = yield from self.engine.client_read(
                        self.ctx, dst)
                    yield from self.engine.client_write(
                        self.ctx, src, from_balance - amount)
                    yield from self.engine.client_write(
                        self.ctx, dst, to_balance + amount)
                    yield from self.engine.client_end_txn(self.ctx)
                except TxnConflict:
                    self.retries += 1
                    yield from self.engine.client_abort_txn(self.ctx)
                    yield sim.timeout(4_000.0 * self.retries)
                    continue
                self.completed += 1
                break


def main():
    model = DdpModel(Consistency.TRANSACTIONAL, Persistency.SYNCHRONOUS)
    cluster = Cluster(model, config=ClusterConfig(servers=3,
                                                  clients_per_server=0,
                                                  store_type=None))
    cluster.start()
    sim = cluster.sim

    # Seed the accounts through one setup transaction.
    setup = Teller(cluster, 0, 99, [])
    sim.run_until_complete(sim.process(setup.engine.client_begin_txn(setup.ctx)))
    for account in ACCOUNTS:
        sim.run_until_complete(sim.process(
            setup.engine.client_write(setup.ctx, account, INITIAL_BALANCE)))
    sim.run_until_complete(sim.process(setup.engine.client_end_txn(setup.ctx)))

    # Two tellers with deliberately overlapping accounts, started together.
    alice = Teller(cluster, 0, 1,
                   [(0, 1, 100), (1, 2, 50), (0, 2, 10), (2, 3, 25)])
    bob = Teller(cluster, 1, 2,
                 [(1, 0, 60), (2, 1, 40), (3, 0, 75), (2, 0, 30)])
    alice_proc = sim.process(alice.run(), name="alice")
    bob_proc = sim.process(bob.run(), name="bob")
    sim.run_until_complete(alice_proc)
    sim.run_until_complete(bob_proc)
    sim.run(until=sim.now + 200_000)  # drain all protocol rounds

    print("Final balances (replica agreement across all 3 nodes):")
    total = 0
    for account in ACCOUNTS:
        values = {engine.replicas.get(account).applied_value
                  for engine in cluster.engines}
        persisted = {engine.replicas.get(account).persisted_value
                     for engine in cluster.engines}
        assert len(values) == 1, f"replicas disagree on account {account}"
        balance = values.pop()
        total += balance
        print(f"  account {account}: {balance:>5}  "
              f"(durable everywhere: {persisted == {balance}})")
    conserved = total == INITIAL_BALANCE * len(ACCOUNTS)
    print(f"  total: {total} (conserved: {conserved})")
    print(f"\ncompleted transfers    : {alice.completed + bob.completed}")
    print(f"committed transactions : {cluster.txn_table.committed}")
    print(f"conflicts detected     : {cluster.txn_table.conflicts}")
    print(f"squash/retry events    : {alice.retries + bob.retries}")


if __name__ == "__main__":
    main()
