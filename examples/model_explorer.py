#!/usr/bin/env python3
"""Model explorer: compare DDP models on performance AND guarantees.

Runs a selection of <consistency, persistency> pairs on the same
workload, prints measured performance normalized to <Linearizable,
Synchronous>, and sets the numbers side by side with the qualitative
trade-off profile (Table 4 of the paper) — because, as the paper argues,
throughput alone is not a fair comparison.

Usage: python examples/model_explorer.py [workload]   (A, B, C or W)
"""

import sys

from repro import (
    Consistency,
    DdpModel,
    Persistency,
    WORKLOADS,
    analyze,
    run_simulation,
)

MODELS = [
    DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS),
    DdpModel(Consistency.LINEARIZABLE, Persistency.READ_ENFORCED),
    DdpModel(Consistency.READ_ENFORCED, Persistency.SYNCHRONOUS),
    DdpModel(Consistency.TRANSACTIONAL, Persistency.SYNCHRONOUS),
    DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS),
    DdpModel(Consistency.CAUSAL, Persistency.EVENTUAL),
    DdpModel(Consistency.LINEARIZABLE, Persistency.SCOPE),
    DdpModel(Consistency.EVENTUAL, Persistency.EVENTUAL),
]


def main():
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "A"
    workload = WORKLOADS[workload_name]
    print(f"Workload {workload_name}: {workload.read_fraction:.0%} reads, "
          f"zipfian theta={workload.zipf_theta}\n")

    summaries = {}
    for model in MODELS:
        print(f"running {model} ...")
        summaries[model] = run_simulation(model, workload,
                                          duration_ns=100_000,
                                          warmup_ns=10_000)
    baseline = summaries[MODELS[0]]

    print(f"\n{'model':<42} {'thr':>6} {'rd(ns)':>7} {'wr(ns)':>7} "
          f"{'dur':>4} {'perf':>5} {'intuit':>7}")
    print("-" * 84)
    for model in MODELS:
        summary = summaries[model]
        profile = analyze(model)
        ratio = (summary.throughput_ops_per_s
                 / baseline.throughput_ops_per_s)
        print(f"{str(model):<42} {ratio:>5.2f}x "
              f"{summary.mean_read_ns:>7.0f} {summary.mean_write_ns:>7.0f} "
              f"{profile.durability.arrow:>4} {profile.performance.arrow:>5} "
              f"{profile.intuitiveness.arrow:>7}")

    print("\nArrows: ^ high, - medium, v low  "
          "(durability / derived performance / programmer intuition)")
    print("Note how the fastest models give up durability or intuition — "
          "the paper's central trade-off.")


if __name__ == "__main__":
    main()
