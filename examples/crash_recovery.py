#!/usr/bin/env python3
"""Crash and recover under different persistency models.

A client writes a stream of bank-style records, the whole cluster then
loses its volatile state ("a failure of the entire system can cause the
permanent loss of in-memory state" — paper Section 1), and the recovery
system rebuilds from each node's NVM image.

The script contrasts three persistency models bound to Causal
consistency and reports how many of the completed writes survived —
illustrating Table 4's durability column with live data.
"""

from repro import Cluster, ClusterConfig, Consistency, DdpModel, Persistency
from repro.core.context import ClientContext
from repro.recovery import recover_latest, recovery_divergence

PERSISTENCY_MODELS = [Persistency.STRICT, Persistency.SYNCHRONOUS,
                      Persistency.EVENTUAL]
NUM_WRITES = 40


def run_and_crash(persistency):
    model = DdpModel(Consistency.CAUSAL, persistency)
    cluster = Cluster(model, config=ClusterConfig(servers=3,
                                                  clients_per_server=0,
                                                  store_type=None))
    cluster.start()
    sim = cluster.sim
    engine = cluster.engines[0]
    ctx = ClientContext(0, 0)

    completed = []
    for i in range(NUM_WRITES):
        sim.run_until_complete(
            sim.process(engine.client_write(ctx, i % 10, f"balance-{i}")))
        completed.append((i % 10, engine.replicas.get(i % 10).applied_version))

    cluster.crash_all()  # volatile state gone, NVM survives
    recovered = recover_latest(cluster.nvm_log, range(3))

    survived = sum(1 for key, version in completed
                   if recovered.version_of(key) >= version)
    divergence = recovery_divergence(cluster.nvm_log, range(3))
    max_divergence = max(divergence.values()) if divergence else 0
    return survived, len(completed), max_divergence


def main():
    print(f"Writing {NUM_WRITES} records, then crashing the whole cluster.\n")
    print(f"{'persistency':<14} {'completed writes recovered':>28} "
          f"{'max per-key divergence':>24}")
    print("-" * 68)
    for persistency in PERSISTENCY_MODELS:
        survived, total, divergence = run_and_crash(persistency)
        print(f"{persistency.value:<14} {survived:>14}/{total:<13} "
              f"{divergence:>24}")
    print(
        "\nStrict persists before writes complete (nothing lost, all nodes\n"
        "agree); Synchronous persists at each visibility point (recent\n"
        "writes can be lost, nodes can briefly disagree); Eventual persists\n"
        "lazily (an arbitrary number of updates may be lost)."
    )


if __name__ == "__main__":
    main()
