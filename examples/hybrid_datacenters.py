#!/usr/bin/env python3
"""Hybrid deployment: strong consistency locally, Eventual across DCs.

Paper Section 9: "Many systems use hybrid consistency models — e.g.,
Linearizable or Read-Enforced consistency in a local cluster, and
Eventual consistency across the entire distributed system."

Two 3-server datacenters are connected by a 50 us WAN.  The script
compares running <Linearizable, Synchronous> globally (every write
round crosses the WAN) against the hybrid deployment (strong rounds
stay inside the datacenter; updates cross lazily), and shows the
trade: hybrid writes are local-latency and locally durable, while a
remote datacenter serves stale reads until propagation completes.
"""

from repro import ClusterConfig, Consistency, DdpModel, Persistency, WORKLOADS
from repro.cluster.cluster import Cluster
from repro.core.context import ClientContext
from repro.hybrid.cluster import HybridCluster

CROSS_DC_RTT_NS = 50_000.0
MODEL = DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS)
CONFIG = ClusterConfig(servers=6, clients_per_server=10)


def wan_one_way(src: int, dst: int) -> float:
    return 500.0 if (src // 3) == (dst // 3) else CROSS_DC_RTT_NS / 2


def run_workloads():
    print("Running YCSB-A on 2 datacenters x 3 servers, 50us WAN ...")
    global_cluster = Cluster(MODEL, config=CONFIG, workload=WORKLOADS["A"])
    global_cluster.network.one_way_fn = wan_one_way
    global_summary = global_cluster.run(duration_ns=150_000, warmup_ns=15_000)

    hybrid = HybridCluster(MODEL, groups=2, servers_per_group=3,
                           cross_dc_round_trip_ns=CROSS_DC_RTT_NS,
                           config=CONFIG, workload=WORKLOADS["A"])
    hybrid_summary = hybrid.run(duration_ns=150_000, warmup_ns=15_000)

    print(f"\n{'deployment':<42} {'thr(Mops/s)':>12} {'write(ns)':>10}")
    print(f"{'global <Linearizable, Synchronous>':<42} "
          f"{global_summary.throughput_ops_per_s / 1e6:>12.2f} "
          f"{global_summary.mean_write_ns:>10.0f}")
    print(f"{'hybrid: <Lin, Sync> per DC, Eventual WAN':<42} "
          f"{hybrid_summary.throughput_ops_per_s / 1e6:>12.2f} "
          f"{hybrid_summary.mean_write_ns:>10.0f}")


def show_staleness():
    cluster = HybridCluster(MODEL, groups=2, servers_per_group=3,
                            cross_dc_round_trip_ns=CROSS_DC_RTT_NS,
                            config=ClusterConfig(servers=6,
                                                 clients_per_server=0,
                                                 store_type=None))
    cluster.start()
    sim = cluster.sim
    writer = ClientContext(0, 0)
    sim.run_until_complete(sim.process(
        cluster.engines[0].client_write(writer, 42, "fresh")))

    local = cluster.engines[1].replicas.get(42)     # same DC
    remote = cluster.engines[4].replicas.get(42)    # other DC
    print("\nRight after the write completes (DC-0 coordinator):")
    print(f"  DC-0 follower sees : {local.applied_value!r} "
          f"(durable: {local.persisted_value!r})")
    print(f"  DC-1 node sees     : {remote.applied_value!r}")
    sim.run(until=sim.now + 3 * CROSS_DC_RTT_NS)
    print(f"After ~{3 * CROSS_DC_RTT_NS / 1000:.0f}us of WAN propagation:")
    print(f"  DC-1 node sees     : {remote.applied_value!r} "
          f"(durable: {remote.persisted_value!r})")


def main():
    run_workloads()
    show_staleness()
    print("\nHybrid keeps linearizable, durable semantics inside each "
          "datacenter\nat local latency; the other datacenter trades "
          "staleness for never\nputting the WAN on the critical path.")


if __name__ == "__main__":
    main()
