#!/usr/bin/env python3
"""Quickstart: run one DDP model on a YCSB workload and print results.

Builds the paper's default cluster (5 servers, 20 clients each, RDMA
network, DRAM+NVM memory), binds Causal consistency with Synchronous
persistency — the paper's recommended sweet spot for a broad class of
applications — and runs YCSB workload A for 100 us of simulated time.
"""

from repro import Consistency, DdpModel, Persistency, WORKLOADS, run_simulation


def main():
    model = DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS)
    print(f"Simulating {model} on YCSB workload A "
          f"(50% reads / 50% writes, zipfian keys) ...")

    summary = run_simulation(model, WORKLOADS["A"],
                             duration_ns=100_000, warmup_ns=10_000)

    print(f"\ncompleted requests : {summary.requests}")
    print(f"throughput         : {summary.throughput_ops_per_s / 1e6:.2f} Mops/s")
    print(f"mean read latency  : {summary.mean_read_ns:.0f} ns")
    print(f"mean write latency : {summary.mean_write_ns:.0f} ns")
    print(f"p95 read latency   : {summary.p95_read_ns:.0f} ns")
    print(f"p95 write latency  : {summary.p95_write_ns:.0f} ns")
    print(f"protocol messages  : {summary.total_messages}")
    print(f"NVM persists       : {summary.persists}")
    print(f"peak causal buffer : {summary.causal_buffer_peak} updates")


if __name__ == "__main__":
    main()
