#!/usr/bin/env python3
"""Causal consistency in action: a photo-sharing feed (paper Section 9).

The classic anomaly: Alice uploads a photo, then posts a comment about
it.  Under Causal consistency, no observer can ever see the comment
without the photo — the comment's causal history names the photo, so
replicas buffer the comment until the photo is visible.

The script delivers the two updates to a follower *out of order* (as a
congested network might) and shows the buffering; it then contrasts
Eventual consistency, where the anomaly is visible.
"""

from repro import Cluster, ClusterConfig, Consistency, DdpModel, Persistency
from repro.core.context import ClientContext
from repro.core.messages import Message, MsgType

PHOTO_KEY = 1001
COMMENT_KEY = 2001


def drive(consistency):
    model = DdpModel(consistency, Persistency.SYNCHRONOUS)
    cluster = Cluster(model, config=ClusterConfig(servers=3,
                                                  clients_per_server=0,
                                                  store_type=None))
    cluster.start()
    sim = cluster.sim
    follower = cluster.engines[1]

    # Alice's two updates, as the wire messages a coordinator would send.
    photo = Message(MsgType.UPD, src=0, op_id=1, key=PHOTO_KEY,
                    version=(1, 0), value="photo.jpg")
    comment_cauhist = ((PHOTO_KEY, (1, 0)),) if consistency is Consistency.CAUSAL else ()
    comment = Message(MsgType.UPD, src=0, op_id=2, key=COMMENT_KEY,
                      version=(1, 0), value="look at my photo!",
                      cauhist=comment_cauhist)

    # The network delivers the comment FIRST.
    sim.process(follower._handle_message(comment))
    sim.run(until=sim.now + 5_000)
    reader = ClientContext(9, 1)
    seen_comment = sim.run_until_complete(
        sim.process(follower.client_read(reader, COMMENT_KEY)))
    seen_photo = sim.run_until_complete(
        sim.process(follower.client_read(reader, PHOTO_KEY)))
    early = (seen_photo, seen_comment)

    # Now the photo arrives; everything becomes visible.
    sim.process(follower._handle_message(photo))
    sim.run(until=sim.now + 20_000)
    seen_comment = sim.run_until_complete(
        sim.process(follower.client_read(reader, COMMENT_KEY)))
    seen_photo = sim.run_until_complete(
        sim.process(follower.client_read(reader, PHOTO_KEY)))
    return early, (seen_photo, seen_comment)


def describe(label, early, late):
    photo, comment = early
    print(f"{label}:")
    print(f"  before the photo's update arrives: "
          f"photo={photo!r}, comment={comment!r}")
    if comment is not None and photo is None:
        print("  -> ANOMALY: the comment is visible without its photo")
    else:
        print("  -> no anomaly: the comment waits for its causal history")
    photo, comment = late
    print(f"  after both updates arrive:          "
          f"photo={photo!r}, comment={comment!r}\n")


def main():
    print("A follower receives Alice's comment BEFORE the photo it "
          "refers to.\n")
    early, late = drive(Consistency.CAUSAL)
    describe("<Causal, Synchronous>", early, late)
    early, late = drive(Consistency.EVENTUAL)
    describe("<Eventual, Synchronous>", early, late)
    print("Causal consistency buffers the out-of-order comment "
          "(implementability cost: tracking cauhists — Table 4 row 4); "
          "Eventual applies updates in arrival order and exposes the "
          "anomaly.")


if __name__ == "__main__":
    main()
