#!/usr/bin/env python3
"""Markdown link-and-anchor checker (stdlib only).

Validates every markdown file it is given (or discovers):

* **relative links** — ``[text](path)`` and ``[text](path#anchor)``
  must point at a file or directory that exists relative to the
  linking file;
* **anchors** — ``#fragment`` targets (same-file or cross-file) must
  match a heading slug in the target file, using GitHub's slug rules
  (lowercase; spaces to hyphens; punctuation stripped; duplicate
  slugs suffixed ``-1``, ``-2``, …);
* **reference definitions** — ``[text][ref]`` uses must have a
  matching ``[ref]: target`` definition, whose target is checked the
  same way.

External targets (``http:``, ``https:``, ``mailto:``) are recorded
but never fetched — CI must not depend on the network. Bare URLs in
prose are ignored.

Usage::

    python tools/mdlint.py                 # *.md at repo root + docs/
    python tools/mdlint.py README.md docs  # explicit files/dirs

Exit codes: 0 clean, 1 broken links/anchors, 2 usage error.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Dict, Iterable, List, Optional, Tuple

# Inline links/images: [text](target "title") — target ends at the
# first unescaped ')' or whitespace-before-title. Non-greedy text, no
# nested brackets (enough for this repo's prose).
_INLINE_LINK = re.compile(r"!?\[[^\]\n]*\]\(\s*<?([^)<>\s]+)>?"
                          r"(?:\s+\"[^\"]*\")?\s*\)")
_REF_USE = re.compile(r"\[[^\]\n]+\]\[([^\]\n]+)\]")
_REF_DEF = re.compile(r"^\s{0,3}\[([^\]\n]+)\]:\s+(\S+)", re.MULTILINE)
_HEADING = re.compile(r"^(#{1,6})\s+(.+?)\s*#*\s*$", re.MULTILINE)
_CODE_FENCE = re.compile(r"^(```|~~~).*$", re.MULTILINE)
# GitHub drops everything but word characters, hyphens, and spaces
# when slugging a heading (underscores survive as word characters).
_SLUG_DROP = re.compile(r"[^\w\- ]", re.UNICODE)
# Underscores stay: GitHub keeps them in slugs (they are word chars,
# and in-word underscores are not emphasis).
_MD_DECORATION = re.compile(r"[*`]|\[|\]\([^)]*\)|\]")

EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def strip_code_blocks(text: str, inline: bool = True) -> str:
    """Blank out fenced code blocks — and, unless ``inline=False``,
    inline code spans — so links in example snippets are not checked
    (they are often placeholders). Heading slugging keeps inline code:
    GitHub slugs the text *inside* backticks."""
    out: List[str] = []
    in_fence = False
    for line in text.splitlines(keepends=True):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            out.append("\n")
        elif in_fence:
            out.append("\n")
        elif inline:
            out.append(re.sub(r"`[^`\n]*`", "", line))
        else:
            out.append(line)
    return "".join(out)


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """Slug a heading the way GitHub's anchor generator does."""
    text = _MD_DECORATION.sub("", heading)
    slug = _SLUG_DROP.sub("", text.lower()).replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_slugs(text: str) -> List[str]:
    seen: Dict[str, int] = {}
    return [github_slug(m.group(2), seen)
            for m in _HEADING.finditer(strip_code_blocks(text,
                                                         inline=False))]


def iter_links(text: str) -> Iterable[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every checkable link."""
    cleaned = strip_code_blocks(text)
    defs = {m.group(1).lower(): m.group(2)
            for m in _REF_DEF.finditer(cleaned)}
    for match in _INLINE_LINK.finditer(cleaned):
        line = cleaned.count("\n", 0, match.start()) + 1
        yield line, match.group(1)
    for match in _REF_USE.finditer(cleaned):
        line = cleaned.count("\n", 0, match.start()) + 1
        ref = match.group(1).lower()
        if ref in defs:
            yield line, defs[ref]
        else:
            yield line, f"\0missing-ref:{match.group(1)}"


class Checker:
    def __init__(self) -> None:
        self._slug_cache: Dict[pathlib.Path, List[str]] = {}
        self.errors: List[str] = []
        self.links_checked = 0

    def slugs_for(self, path: pathlib.Path) -> Optional[List[str]]:
        path = path.resolve()
        if path not in self._slug_cache:
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                return None
            self._slug_cache[path] = heading_slugs(text)
        return self._slug_cache[path]

    def check_file(self, path: pathlib.Path) -> None:
        text = path.read_text(encoding="utf-8")
        for line, target in iter_links(text):
            self.links_checked += 1
            if target.startswith("\0missing-ref:"):
                ref = target.split(":", 1)[1]
                self.errors.append(f"{path}:{line}: reference [{ref}] "
                                   f"has no definition")
                continue
            if target.startswith(EXTERNAL_SCHEMES):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                dest = (path.parent / file_part).resolve()
                if not dest.exists():
                    self.errors.append(f"{path}:{line}: broken link "
                                       f"{target!r} ({file_part} does "
                                       f"not exist)")
                    continue
            else:
                dest = path.resolve()
            if anchor:
                if dest.is_dir() or dest.suffix.lower() != ".md":
                    continue  # anchors into non-markdown: not checkable
                slugs = self.slugs_for(dest)
                if slugs is not None and anchor not in slugs:
                    self.errors.append(f"{path}:{line}: broken anchor "
                                       f"{target!r} (no heading slugs "
                                       f"to {anchor!r} in {dest.name})")


def discover(args: List[str], root: pathlib.Path) -> List[pathlib.Path]:
    if not args:
        files = sorted(root.glob("*.md"))
        docs = root / "docs"
        if docs.is_dir():
            files.extend(sorted(docs.rglob("*.md")))
        return files
    files = []
    for arg in args:
        path = pathlib.Path(arg)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.is_file():
            files.append(path)
        else:
            raise SystemExit(f"mdlint: no such file or directory: {arg}")
    return files


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    files = discover(argv, pathlib.Path.cwd())
    if not files:
        print("mdlint: no markdown files found", file=sys.stderr)
        return 2
    checker = Checker()
    for path in files:
        checker.check_file(path)
    for error in checker.errors:
        print(error)
    status = "FAILED" if checker.errors else "clean"
    print(f"mdlint: {status} — {len(files)} file(s), "
          f"{checker.links_checked} link(s), "
          f"{len(checker.errors)} error(s)")
    return 1 if checker.errors else 0


if __name__ == "__main__":
    sys.exit(main())
