"""Table 1 — motivation: relative throughput of three environments.

The paper runs write-only clients on a 3-node cluster in three
configurations and reports normalized throughput:

==================================================  =================
Environment                                         Paper (normalized)
==================================================  =================
Volatile updates + NVM persists in critical path    1.00
Volatile updates in critical path, lazy persists    1.32
Neither in critical path                            4.08
==================================================  =================

We map the environments onto DDP models: <Linearizable, Synchronous>
(both in the critical path), <Linearizable, Eventual> (volatile updates
only), and <Eventual, Eventual> (neither).  The asserted *shape*:
strictly increasing throughput, with the fully-relaxed environment at
least ~2.5x the strict one.
"""

from conftest import archive, run_cached, time_one_run

from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.workload.ycsb import WorkloadSpec

WRITE_ONLY = WorkloadSpec(name="table1-writes", read_fraction=0.0)
THREE_NODES = ClusterConfig(servers=3, clients_per_server=20)

ENVIRONMENTS = [
    ("volatile+NVM in critical path", DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)),
    ("volatile in critical path", DdpModel(C.LINEARIZABLE, P.EVENTUAL)),
    ("neither in critical path", DdpModel(C.EVENTUAL, P.EVENTUAL)),
]

PAPER_NORMALIZED = [1.00, 1.32, 4.08]


def test_table1_relative_throughput(time_one_run):
    summaries = {}

    def run_all():
        for label, model in ENVIRONMENTS:
            summaries[label] = run_cached(model, workload=WRITE_ONLY,
                                          config=THREE_NODES)
        return summaries

    time_one_run(run_all)

    base = summaries[ENVIRONMENTS[0][0]].throughput_ops_per_s
    normalized = [summaries[label].throughput_ops_per_s / base
                  for label, _ in ENVIRONMENTS]

    lines = ["Table 1: relative throughput of three environments",
             f"{'environment':<42} {'measured':>9} {'paper':>7}"]
    for (label, _), measured, paper in zip(ENVIRONMENTS, normalized,
                                           PAPER_NORMALIZED):
        lines.append(f"{label:<42} {measured:>9.2f} {paper:>7.2f}")
    archive("table1_motivation", "\n".join(lines))

    # Shape: strictly increasing, and a big jump once nothing blocks.
    assert normalized[0] == 1.0
    assert normalized[1] > 1.05, "lazy persists should beat inline persists"
    assert normalized[2] > normalized[1]
    assert normalized[2] >= 2.5, (
        "fully-relaxed environment should be several times faster "
        f"(got {normalized[2]:.2f}x; paper reports 4.08x)")
