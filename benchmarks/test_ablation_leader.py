"""Ablation — leaderless broadcast vs a designated leader, and the
Ganesan read-conflict discrepancy (Section 8.1.2).

The paper measures >30% of reads conflicting with a yet-to-persist
write in <Read-Enforced, Read-Enforced>, against 5.1% in Ganesan et
al.'s work, and attributes the gap to two differences: 100 clients
instead of 10, and leaderless low-latency protocols instead of a
designated leader.  This ablation runs all four quadrants of that
comparison and regenerates the gap.
"""

import time

import pytest

from conftest import (DURATION_NS, WARMUP_NS, archive, archive_json,
                      run_cached, time_one_run)

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.variants.leader import LeaderCluster
from repro.workload.ycsb import WORKLOADS

RE_RE = DdpModel(C.READ_ENFORCED, P.READ_ENFORCED)
LIN_SYNC = DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)


def config_for(clients):
    return ClusterConfig(clients_per_server=clients // 5)


def run_quadrant(leaderless: bool, clients: int, model=RE_RE):
    builder = Cluster if leaderless else LeaderCluster
    cluster = builder(model, config=config_for(clients),
                      workload=WORKLOADS["A"])
    return cluster.run(duration_ns=DURATION_NS, warmup_ns=WARMUP_NS)


def conflict_fraction(summary):
    return summary.reads_blocked_by_unpersisted / max(summary.requests * 0.5, 1)


_SWEEP_WALL_S = [0.0]


@pytest.fixture(scope="module")
def quadrants():
    start = time.perf_counter()
    results = {(leaderless, clients): run_quadrant(leaderless, clients)
               for leaderless in (True, False)
               for clients in (10, 100)}
    _SWEEP_WALL_S[0] = time.perf_counter() - start
    return results


def test_generate(quadrants, time_one_run):
    time_one_run(lambda: run_cached(LIN_SYNC))
    lines = ["Ablation: read/unpersisted-write conflicts in "
             "<Read-Enforced, Read-Enforced>",
             "(the paper reports >30%; Ganesan's leader-based 10-client "
             "system reports 5.1%)",
             f"{'topology':<12} {'clients':>8} {'read conflicts':>15} "
             f"{'thr(Mops/s)':>12}"]
    for (leaderless, clients), summary in quadrants.items():
        topology = "leaderless" if leaderless else "leader"
        lines.append(f"{topology:<12} {clients:>8} "
                     f"{conflict_fraction(summary):>14.1%} "
                     f"{summary.throughput_ops_per_s / 1e6:>12.2f}")
    archive("ablation_leader", "\n".join(lines))
    archive_json(
        "ablation_leader",
        config={"workload": "YCSB-A", "model": str(RE_RE),
                "topologies": ["leaderless", "leader"],
                "client_counts": [10, 100],
                "duration_ns": DURATION_NS, "warmup_ns": WARMUP_NS},
        metrics={f"{'leaderless' if leaderless else 'leader'}"
                 f"@clients={clients}": summary
                 for (leaderless, clients), summary in quadrants.items()},
        wall_clock_seconds=_SWEEP_WALL_S[0],
    )


def test_paper_quadrant_exceeds_30_percent(quadrants):
    assert conflict_fraction(quadrants[(True, 100)]) > 0.25


def test_ganesan_quadrant_far_lower(quadrants):
    """Leader + 10 clients: the conflict fraction falls to roughly half
    the paper's leaderless 100-client rate, moving toward Ganesan's
    5.1% (his system differs in more than topology and client count, so
    we assert the direction and a substantial gap, not his exact value)."""
    ganesan_like = conflict_fraction(quadrants[(False, 10)])
    paper_like = conflict_fraction(quadrants[(True, 100)])
    assert ganesan_like < paper_like * 0.6
    assert ganesan_like < 0.20


def test_both_factors_contribute(quadrants):
    """Dropping either the client count or the leaderless design lowers
    the conflict rate; together they explain the full gap."""
    full = conflict_fraction(quadrants[(True, 100)])
    fewer_clients = conflict_fraction(quadrants[(True, 10)])
    with_leader = conflict_fraction(quadrants[(False, 100)])
    assert fewer_clients < full
    assert with_leader < full
