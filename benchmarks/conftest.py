"""Shared infrastructure for the reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper.  The
simulation runs are cached per-session (a figure's several tests share
one sweep), printed as text tables, and archived under
``benchmarks/results/`` so the numbers behind EXPERIMENTS.md can be
re-derived at any time.

Run duration is tunable via ``REPRO_BENCH_DURATION_NS`` (default
150 us measured per configuration, after a 10 us warmup); raise it for
smoother numbers, lower it for a faster smoke pass.
``REPRO_BENCH_WORKERS=N`` prefetches the default-config 25-model matrix
through the sweep observatory's process pool before the figure tests
read it; the cached summaries are byte-identical either way (the sweep
contract), only the wall clock changes.
"""

import json
import os
import pathlib
import time

import pytest

from repro.cluster.cluster import run_simulation
from repro.cluster.config import ClusterConfig
from repro.obs.report import _clean, config_fingerprint
from repro.obs.schemas import BENCH_SCHEMA
from repro.obs.sweep import sweep_summaries
from repro.workload.ycsb import WORKLOADS

DURATION_NS = float(os.environ.get("REPRO_BENCH_DURATION_NS", 150_000))
WARMUP_NS = min(10_000.0, DURATION_NS / 10)
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_CACHE = {}
_WALL_S = {}
_ORCHESTRATOR_WALL_S = 0.0


def _cache_key(model, workload, config, duration_ns):
    workload = workload or WORKLOADS["A"]
    config = config or ClusterConfig()
    duration = duration_ns or DURATION_NS
    return (model.key, workload, config, duration)


def run_cached(model, workload=None, config=None, duration_ns=None):
    """Run one configuration once per session; later calls reuse it."""
    key = _cache_key(model, workload, config, duration_ns)
    if key not in _CACHE:
        start = time.perf_counter()
        _CACHE[key] = run_simulation(model, key[1], config=key[2],
                                     duration_ns=key[3],
                                     warmup_ns=WARMUP_NS)
        _WALL_S[key] = time.perf_counter() - start
    return _CACHE[key]


def wall_clock_s(model, workload=None, config=None, duration_ns=None):
    """Wall-clock seconds this configuration's own simulation took —
    measured inside the run whether it executed here or in a prefetch
    worker, so per-cell costs stay comparable with serial baselines
    (0.0 if it was served from cache without ever running)."""
    return _WALL_S.get(_cache_key(model, workload, config, duration_ns), 0.0)


def orchestrator_wall_s() -> float:
    """Elapsed wall-clock seconds spent inside :func:`prefetch_matrix`.

    Under ``REPRO_BENCH_WORKERS > 1`` this is less than the sum of the
    per-cell walls — that difference *is* the parallel speedup, and the
    two are archived as separate ``wall_clock`` fields so neither
    masquerades as the other."""
    return _ORCHESTRATOR_WALL_S


def prefetch_matrix(models) -> None:
    """Fill the run cache for ``models`` at the default configuration.

    With ``REPRO_BENCH_WORKERS > 1`` the cells run through
    :func:`repro.obs.sweep.sweep_summaries` in parallel; otherwise each
    model runs serially via :func:`run_cached`.  Either way later
    :func:`run_cached` calls are cache hits with identical summaries."""
    global _ORCHESTRATOR_WALL_S
    missing = [m for m in models
               if _cache_key(m, None, None, None) not in _CACHE]
    if not missing:
        return
    start = time.perf_counter()
    if WORKERS > 1:
        config = ClusterConfig()
        by_model = sweep_summaries(
            missing, workload="A", servers=config.servers,
            clients=config.total_clients, duration_ns=DURATION_NS,
            warmup_ns=WARMUP_NS, seed=config.seed, workers=WORKERS)
        for model in missing:
            summary, cell_wall = by_model[(model.consistency.value,
                                           model.persistency.value)]
            key = _cache_key(model, None, None, None)
            _CACHE[key] = summary
            _WALL_S[key] = cell_wall
    else:
        for model in missing:
            run_cached(model)
    _ORCHESTRATOR_WALL_S += time.perf_counter() - start


def archive(name: str, text: str) -> None:
    """Print a result table and save it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def archive_json(name: str, config: dict, metrics: dict,
                 wall_clock_seconds: float = 0.0,
                 orchestrator_wall_seconds: float = None) -> None:
    """Write the machine-readable twin of an archived table:
    ``benchmarks/results/BENCH_<name>.json``.

    ``config`` describes the swept parameters, ``metrics`` maps result
    labels to :class:`~repro.analysis.metrics.Summary` objects (or plain
    dicts); values are cleaned to strict JSON (NaN/inf -> null) so the
    artifact is always parseable.

    ``wall_clock_seconds`` is the *sum of per-cell* simulation walls —
    comparable across serial and parallel runs.  Under a parallel
    prefetch the elapsed orchestrator time is a different (smaller)
    number; pass it as ``orchestrator_wall_seconds`` so the artifact
    records both instead of conflating them.
    """
    wall_clock = {"seconds": round(wall_clock_seconds, 3)}
    if orchestrator_wall_seconds is not None:
        wall_clock["orchestrator_seconds"] = round(
            orchestrator_wall_seconds, 3)
    doc = {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "config": _clean(config),
        # The fingerprint `repro diff` uses to reject apples-to-oranges
        # comparisons between artifacts from different sweeps.
        "config_hash": config_fingerprint(config),
        "metrics": _clean(metrics),
        "wall_clock": wall_clock,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    print(f"bench json -> {path}")


@pytest.fixture
def time_one_run(benchmark):
    """Benchmark helper: time a single simulation run exactly once
    (pytest-benchmark's auto-calibration would rerun a multi-second
    simulation dozens of times)."""

    def runner(fn):
        return benchmark.pedantic(fn, iterations=1, rounds=1)

    return runner


@pytest.fixture(autouse=True)
def _benchmark_guard(request, benchmark):
    """Every test in benchmarks/ is a benchmark.

    ``pytest --benchmark-only`` skips tests that never touch the
    benchmark fixture; the shape-assertion tests here verify the figures
    the timed sweeps produce, so they must run in the same invocation.
    Tests that did not time anything themselves get a trivial sample.
    """
    yield
    if benchmark._mode is None:
        benchmark.pedantic(lambda: None, iterations=1, rounds=1)
