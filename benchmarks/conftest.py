"""Shared infrastructure for the reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper.  The
simulation runs are cached per-session (a figure's several tests share
one sweep), printed as text tables, and archived under
``benchmarks/results/`` so the numbers behind EXPERIMENTS.md can be
re-derived at any time.

Run duration is tunable via ``REPRO_BENCH_DURATION_NS`` (default
150 us measured per configuration, after a 10 us warmup); raise it for
smoother numbers, lower it for a faster smoke pass.
"""

import os
import pathlib

import pytest

from repro.cluster.cluster import run_simulation
from repro.cluster.config import ClusterConfig
from repro.workload.ycsb import WORKLOADS

DURATION_NS = float(os.environ.get("REPRO_BENCH_DURATION_NS", 150_000))
WARMUP_NS = min(10_000.0, DURATION_NS / 10)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


_CACHE = {}


def run_cached(model, workload=None, config=None, duration_ns=None):
    """Run one configuration once per session; later calls reuse it."""
    workload = workload or WORKLOADS["A"]
    config = config or ClusterConfig()
    duration = duration_ns or DURATION_NS
    key = (model.key, workload, config, duration)
    if key not in _CACHE:
        _CACHE[key] = run_simulation(model, workload, config=config,
                                     duration_ns=duration,
                                     warmup_ns=WARMUP_NS)
    return _CACHE[key]


def archive(name: str, text: str) -> None:
    """Print a result table and save it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def time_one_run(benchmark):
    """Benchmark helper: time a single simulation run exactly once
    (pytest-benchmark's auto-calibration would rerun a multi-second
    simulation dozens of times)."""

    def runner(fn):
        return benchmark.pedantic(fn, iterations=1, rounds=1)

    return runner


@pytest.fixture(autouse=True)
def _benchmark_guard(request, benchmark):
    """Every test in benchmarks/ is a benchmark.

    ``pytest --benchmark-only`` skips tests that never touch the
    benchmark fixture; the shape-assertion tests here verify the figures
    the timed sweeps produce, so they must run in the same invocation.
    Tests that did not time anything themselves get a trivial sample.
    """
    yield
    if benchmark._mode is None:
        benchmark.pedantic(lambda: None, iterations=1, rounds=1)
