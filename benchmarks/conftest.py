"""Shared infrastructure for the reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper.  The
simulation runs are cached per-session (a figure's several tests share
one sweep), printed as text tables, and archived under
``benchmarks/results/`` so the numbers behind EXPERIMENTS.md can be
re-derived at any time.

Run duration is tunable via ``REPRO_BENCH_DURATION_NS`` (default
150 us measured per configuration, after a 10 us warmup); raise it for
smoother numbers, lower it for a faster smoke pass.
"""

import json
import os
import pathlib
import time

import pytest

from repro.cluster.cluster import run_simulation
from repro.cluster.config import ClusterConfig
from repro.obs.report import _clean, config_fingerprint
from repro.workload.ycsb import WORKLOADS

DURATION_NS = float(os.environ.get("REPRO_BENCH_DURATION_NS", 150_000))
WARMUP_NS = min(10_000.0, DURATION_NS / 10)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_SCHEMA = "repro.bench/1"

_CACHE = {}
_WALL_S = {}


def _cache_key(model, workload, config, duration_ns):
    workload = workload or WORKLOADS["A"]
    config = config or ClusterConfig()
    duration = duration_ns or DURATION_NS
    return (model.key, workload, config, duration)


def run_cached(model, workload=None, config=None, duration_ns=None):
    """Run one configuration once per session; later calls reuse it."""
    key = _cache_key(model, workload, config, duration_ns)
    if key not in _CACHE:
        start = time.perf_counter()
        _CACHE[key] = run_simulation(model, key[1], config=key[2],
                                     duration_ns=key[3],
                                     warmup_ns=WARMUP_NS)
        _WALL_S[key] = time.perf_counter() - start
    return _CACHE[key]


def wall_clock_s(model, workload=None, config=None, duration_ns=None):
    """Wall-clock seconds run_cached spent simulating this configuration
    (0.0 if it was served from cache without ever running here)."""
    return _WALL_S.get(_cache_key(model, workload, config, duration_ns), 0.0)


def archive(name: str, text: str) -> None:
    """Print a result table and save it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def archive_json(name: str, config: dict, metrics: dict,
                 wall_clock_seconds: float = 0.0) -> None:
    """Write the machine-readable twin of an archived table:
    ``benchmarks/results/BENCH_<name>.json``.

    ``config`` describes the swept parameters, ``metrics`` maps result
    labels to :class:`~repro.analysis.metrics.Summary` objects (or plain
    dicts); values are cleaned to strict JSON (NaN/inf -> null) so the
    artifact is always parseable.
    """
    doc = {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "config": _clean(config),
        # The fingerprint `repro diff` uses to reject apples-to-oranges
        # comparisons between artifacts from different sweeps.
        "config_hash": config_fingerprint(config),
        "metrics": _clean(metrics),
        "wall_clock": {"seconds": round(wall_clock_seconds, 3)},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    print(f"bench json -> {path}")


@pytest.fixture
def time_one_run(benchmark):
    """Benchmark helper: time a single simulation run exactly once
    (pytest-benchmark's auto-calibration would rerun a multi-second
    simulation dozens of times)."""

    def runner(fn):
        return benchmark.pedantic(fn, iterations=1, rounds=1)

    return runner


@pytest.fixture(autouse=True)
def _benchmark_guard(request, benchmark):
    """Every test in benchmarks/ is a benchmark.

    ``pytest --benchmark-only`` skips tests that never touch the
    benchmark fixture; the shape-assertion tests here verify the figures
    the timed sweeps produce, so they must run in the same invocation.
    Tests that did not time anything themselves get a trivial sample.
    """
    yield
    if benchmark._mode is None:
        benchmark.pedantic(lambda: None, iterations=1, rounds=1)
