"""Extension — hybrid deployments (paper Section 9).

"Many systems use hybrid consistency models — e.g., Linearizable or
Read-Enforced consistency in a local cluster, and Eventual consistency
across the entire distributed system in a data center."

This benchmark builds two 3-server datacenters connected by a 50 us WAN
and compares three deployments under YCSB-A:

* **global strong** — <Linearizable, Synchronous> across all 6 nodes
  (every write round crosses the WAN),
* **hybrid** — <Linearizable, Synchronous> within each datacenter,
  Eventual propagation across,
* **global eventual** — <Eventual, Eventual> everywhere (the upper
  bound).

Expected shape: hybrid recovers nearly all of the WAN-imposed loss while
keeping strong guarantees inside each datacenter.
"""

import pytest

from conftest import DURATION_NS, WARMUP_NS, archive, time_one_run

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.hybrid.cluster import HybridCluster
from repro.workload.ycsb import WORKLOADS

CROSS_DC_RTT = 50_000.0
CONFIG = ClusterConfig(servers=6, clients_per_server=10)


def wan_one_way(src: int, dst: int) -> float:
    return 500.0 if (src // 3) == (dst // 3) else CROSS_DC_RTT / 2


def run_global(model):
    cluster = Cluster(model, config=CONFIG, workload=WORKLOADS["A"])
    cluster.network.one_way_fn = wan_one_way
    return cluster.run(duration_ns=DURATION_NS, warmup_ns=WARMUP_NS)


def run_hybrid(model):
    cluster = HybridCluster(model, groups=2, servers_per_group=3,
                            cross_dc_round_trip_ns=CROSS_DC_RTT,
                            config=CONFIG, workload=WORKLOADS["A"])
    return cluster.run(duration_ns=DURATION_NS, warmup_ns=WARMUP_NS)


@pytest.fixture(scope="module")
def deployments():
    return {
        "global <Linearizable, Synchronous>":
            run_global(DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)),
        "hybrid  <Lin, Sync> local / Eventual WAN":
            run_hybrid(DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)),
        "global <Eventual, Eventual>":
            run_global(DdpModel(C.EVENTUAL, P.EVENTUAL)),
    }


def test_generate(deployments, time_one_run):
    time_one_run(lambda: run_hybrid(DdpModel(C.CAUSAL, P.SYNCHRONOUS)))
    lines = ["Hybrid deployment over a 50us WAN (2 datacenters x 3 servers, "
             "YCSB-A)",
             f"{'deployment':<45} {'thr(Mops/s)':>12} {'wr(ns)':>9}"]
    for label, summary in deployments.items():
        lines.append(f"{label:<45} "
                     f"{summary.throughput_ops_per_s / 1e6:>12.2f} "
                     f"{summary.mean_write_ns:>9.0f}")
    archive("hybrid_deployment", "\n".join(lines))


def test_hybrid_recovers_wan_loss(deployments):
    global_strong = deployments["global <Linearizable, Synchronous>"]
    hybrid = deployments["hybrid  <Lin, Sync> local / Eventual WAN"]
    assert (hybrid.throughput_ops_per_s
            > 3 * global_strong.throughput_ops_per_s)


def test_hybrid_write_latency_local(deployments):
    hybrid = deployments["hybrid  <Lin, Sync> local / Eventual WAN"]
    assert hybrid.mean_write_ns < CROSS_DC_RTT / 2


def test_hybrid_below_global_eventual(deployments):
    """Eventual everywhere remains the (guarantee-free) upper bound."""
    hybrid = deployments["hybrid  <Lin, Sync> local / Eventual WAN"]
    eventual = deployments["global <Eventual, Eventual>"]
    assert hybrid.throughput_ops_per_s <= eventual.throughput_ops_per_s * 1.05
