"""Extension — measuring Table 2 directly: VP and DP lag per DDP model.

The paper defines each model by *when* an update reaches its Visibility
Point (applied at all replicas) and Durability Point (persisted at all
replicas), but reports only end-performance.  This benchmark measures
the two lags directly with the :class:`repro.analysis.points.PointsTracker`
hook, quantifying Table 2's qualitative "when" column:

* Strict: DP within the write round.
* Synchronous: DP trails VP by one NVM persist.
* Read-Enforced: DP in the background, bounded by the eager persist.
* Scope: DP only at the scope's Persist round.
* Eventual: DP after the lazy-persist delay.
"""

import pytest

from conftest import archive, time_one_run

from repro.analysis.points import PointsTracker
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.context import ClientContext
from repro.core.model import Consistency as C, DdpModel, Persistency as P

WRITES = 60


def measure(consistency, persistency):
    tracker = PointsTracker(num_nodes=3)
    cluster = Cluster(DdpModel(consistency, persistency),
                      config=ClusterConfig(servers=3, clients_per_server=0,
                                           store_type=None),
                      tracer=tracker)
    cluster.start()
    engine = cluster.engines[0]
    ctx = ClientContext(0, 0)
    for i in range(WRITES):
        cluster.sim.run_until_complete(
            cluster.sim.process(engine.client_write(ctx, i % 20, f"v{i}")))
        if (persistency is P.SCOPE
                and (i + 1) % engine.config.scope_length == 0):
            cluster.sim.run_until_complete(
                cluster.sim.process(engine.client_persist_scope(ctx)))
    cluster.sim.run(until=cluster.sim.now + 500_000)
    return tracker.summarize()


@pytest.fixture(scope="module")
def lags():
    return {(c, p): measure(c, p)
            for c in (C.LINEARIZABLE, C.CAUSAL)
            for p in P}


def test_generate_lag_table(lags, time_one_run):
    time_one_run(lambda: measure(C.LINEARIZABLE, P.SYNCHRONOUS))
    lines = ["Visibility/Durability Point lags per model "
             "(60 isolated writes, 3 nodes)",
             f"{'model':<40} {'VP lag(ns)':>11} {'DP lag(ns)':>11} "
             f"{'DP done':>8}"]
    for (c, p), summary in lags.items():
        model = DdpModel(c, p)
        lines.append(
            f"{str(model):<40} {summary.mean_visibility_lag_ns:>11.0f} "
            f"{summary.mean_durability_lag_ns:>11.0f} "
            f"{summary.durability_completion_fraction:>7.0%}")
    archive("points_lag", "\n".join(lines))


def test_all_writes_reach_visibility(lags):
    for (c, p), summary in lags.items():
        assert summary.visibility_completion_fraction == 1.0, (c, p)


def test_durability_lag_ordering_matches_table2(lags):
    """For each consistency model, DP lag grows as persistency relaxes:
    Strict <= Synchronous <= Read-Enforced < Eventual."""
    for c in (C.LINEARIZABLE, C.CAUSAL):
        strict = lags[(c, P.STRICT)].mean_durability_lag_ns
        sync = lags[(c, P.SYNCHRONOUS)].mean_durability_lag_ns
        re = lags[(c, P.READ_ENFORCED)].mean_durability_lag_ns
        eventual = lags[(c, P.EVENTUAL)].mean_durability_lag_ns
        assert strict <= sync * 1.2, c
        assert sync <= re * 1.5, c
        assert re < eventual, c


def test_scope_dp_bounded_by_scope_rounds(lags):
    """With Persist calls issued every scope_length writes, every scope
    completes and durability lag is bounded by the scope window."""
    for c in (C.LINEARIZABLE, C.CAUSAL):
        summary = lags[(c, P.SCOPE)]
        assert summary.durability_completion_fraction == 1.0, c
        assert (summary.mean_durability_lag_ns
                > lags[(c, P.SYNCHRONOUS)].mean_durability_lag_ns), c
