"""Figure 9 — read/write-mix sensitivity (workloads B / A / W).

Workload B is 95% reads, A is 50/50, and the paper's custom W is 95%
writes.  Asserted shape: the more read-intensive the workload, the less
the choice of consistency/persistency model matters (the models govern
write propagation and persistence; reads are only affected indirectly).
"""

import pytest

from conftest import archive, run_cached, time_one_run

from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.workload.ycsb import WORKLOADS

MIXES = ["B", "A", "W"]
CONSISTENCIES = [C.LINEARIZABLE, C.CAUSAL]


@pytest.fixture(scope="module")
def fig9():
    results = {}
    for mix in MIXES:
        for consistency in CONSISTENCIES:
            for persistency in P:
                model = DdpModel(consistency, persistency)
                results[(mix, model)] = run_cached(model,
                                                   workload=WORKLOADS[mix])
    return results


def thr(fig9, mix, consistency, persistency):
    return fig9[(mix, DdpModel(consistency, persistency))].throughput_ops_per_s


def model_spread(fig9, mix):
    """Max/min throughput ratio across all swept models for one mix —
    how much the model choice matters."""
    values = [thr(fig9, mix, c, p) for c in CONSISTENCIES for p in P]
    return max(values) / min(values)


def test_fig9_generate(fig9, time_one_run):
    time_one_run(lambda: run_cached(DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS),
                                    workload=WORKLOADS["A"]))
    base = thr(fig9, "A", C.LINEARIZABLE, P.SYNCHRONOUS)
    lines = ["Figure 9: throughput vs read/write mix "
             "(normalized to <Linear, Synchronous> @ workload A)"]
    for mix in MIXES:
        spec = WORKLOADS[mix]
        for consistency in CONSISTENCIES:
            cells = [f"{p.short_name}={thr(fig9, mix, consistency, p) / base:5.2f}"
                     for p in P]
            lines.append(
                f"workload-{mix} ({spec.read_fraction:.0%} reads) "
                f"{consistency.short_name:<12} " + "  ".join(cells))
        lines.append(f"  model spread for workload-{mix}: "
                     f"{model_spread(fig9, mix):.2f}x")
    archive("fig9_workload_mix", "\n".join(lines))


def test_fig9_read_intensive_less_model_sensitive(fig9):
    """Spread across models shrinks as reads dominate."""
    spread_b = model_spread(fig9, "B")
    spread_a = model_spread(fig9, "A")
    spread_w = model_spread(fig9, "W")
    assert spread_b < spread_a <= spread_w * 1.10, (
        f"spreads B={spread_b:.2f} A={spread_a:.2f} W={spread_w:.2f}")


def test_fig9_read_heavy_raises_absolute_throughput_of_strict_models(fig9):
    """Strict models benefit most from fewer writes."""
    lin_b = thr(fig9, "B", C.LINEARIZABLE, P.SYNCHRONOUS)
    lin_w = thr(fig9, "W", C.LINEARIZABLE, P.SYNCHRONOUS)
    assert lin_b > lin_w


def test_fig9_write_heavy_magnifies_persistency_choice(fig9):
    """Under workload W the persistency model matters more for
    Linearizable consistency than under workload B."""
    def persistency_spread(mix):
        values = [thr(fig9, mix, C.LINEARIZABLE, p) for p in P]
        return max(values) / min(values)

    assert persistency_spread("W") > persistency_spread("B")
