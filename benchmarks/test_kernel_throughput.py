"""Kernel events/sec baseline: the needle the ROADMAP item-1 speedup
must move.

Runs the profiled kernel over representative model x cluster-size
points and archives ``BENCH_kernel.json`` (schema ``repro.bench/1``):
per-point events/sec, per-event overhead, slowdown factor, and the
deterministic event/process counts that let ``repro diff`` separate "the
kernel got faster" (wall-clock, informational) from "the run changed"
(counters, gated).

Points: the cheapest and the most message-heavy corners of the matrix
(causal x eventual, linearizable x synchronous) plus a cluster-size axis
(3 / 5 / 8 servers) on the cheap corner, so both per-event cost and
heap-depth scaling are visible.
"""

import time

from repro.cluster.config import ClusterConfig
from repro.cluster.cluster import run_simulation
from repro.core.model import Consistency, DdpModel, Persistency
from repro.obs import KernelProfile
from repro.workload.ycsb import WORKLOADS

from conftest import DURATION_NS, WARMUP_NS, archive, archive_json

CAUSAL_EVENTUAL = DdpModel(Consistency.CAUSAL, Persistency.EVENTUAL)
LIN_SYNC = DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS)

#: label -> (model, servers).  Clients scale with the cluster (20 per
#: server, the default density) so per-node load is constant.
KERNEL_POINTS = {
    "causal-eventual-3s": (CAUSAL_EVENTUAL, 3),
    "causal-eventual-5s": (CAUSAL_EVENTUAL, 5),
    "causal-eventual-8s": (CAUSAL_EVENTUAL, 8),
    "linearizable-synchronous-5s": (LIN_SYNC, 5),
}

_RESULTS = {}


def _run_points():
    """Run every point once per session, profile attached."""
    if _RESULTS:
        return _RESULTS
    for label, (model, servers) in KERNEL_POINTS.items():
        config = ClusterConfig(servers=servers, clients_per_server=20,
                               seed=2021)
        profile = KernelProfile()
        start = time.perf_counter()
        summary = run_simulation(model, WORKLOADS["A"], config=config,
                                 duration_ns=DURATION_NS,
                                 warmup_ns=WARMUP_NS,
                                 profile=profile)
        wall = time.perf_counter() - start
        _RESULTS[label] = (profile, summary, wall)
    return _RESULTS


def _metrics_row(profile, summary):
    """The BENCH_kernel.json metrics for one point: wall-clock rates
    (informational in diffs) plus deterministic kernel counters."""
    snapshot = profile.snapshot()
    events = profile.events_processed
    loop = profile.loop_wall_seconds
    return {
        "events_processed": events,
        "processes_spawned": profile.processes_spawned,
        "heap_peak": profile.heap_peak,
        "messages_handled": profile.messages_handled,
        "events_per_wall_second": profile.events_per_wall_second,
        "wall_seconds": profile.wall_elapsed_seconds,
        "loop_wall_seconds": loop,
        "ns_per_event": (loop / events * 1e9) if events else 0.0,
        "wall_seconds_per_sim_second": profile.wall_seconds_per_sim_second,
        "attributed_fraction":
            snapshot["attribution"]["attributed_fraction"],
        "throughput_ops_per_s": summary.throughput_ops_per_s,
    }


class TestKernelThroughput:
    def test_every_point_produces_throughput(self, time_one_run):
        results = time_one_run(_run_points)
        assert len(results) >= 3
        for label, (profile, _summary, _wall) in results.items():
            assert profile.events_processed > 0, label
            assert profile.events_per_wall_second > 0, label
            assert profile.loop_wall_seconds > 0, label

    def test_attribution_covers_loop_wall(self):
        """Acceptance bar: per-bucket wall-times sum to within 5% of the
        kernel's event-loop wall time, at every benched point."""
        for label, (profile, _summary, _wall) in _run_points().items():
            loop = profile.loop_wall_seconds
            attributed = profile.attributed_wall_seconds
            assert abs(attributed - loop) <= 0.05 * loop, (
                f"{label}: {attributed:.6f}s attributed vs "
                f"{loop:.6f}s loop wall")

    def test_event_counts_scale_with_cluster_size(self):
        """The deterministic counters behave: more servers (at constant
        per-node load) means more kernel events."""
        results = _run_points()
        small = results["causal-eventual-3s"][0].events_processed
        large = results["causal-eventual-8s"][0].events_processed
        assert large > small

    def test_archive_kernel_bench(self):
        results = _run_points()
        metrics = {label: _metrics_row(profile, summary)
                   for label, (profile, summary, _wall) in results.items()}
        total_wall = sum(wall for _p, _s, wall in results.values())
        config = {
            "bench": "kernel_throughput",
            "workload": "A",
            "duration_ns": DURATION_NS,
            "clients_per_server": 20,
            "points": {label: {"model": str(model), "servers": servers}
                       for label, (model, servers)
                       in KERNEL_POINTS.items()},
        }
        archive_json("kernel", config, metrics,
                     wall_clock_seconds=total_wall)

        header = (f"{'point':<30} {'events':>9} {'events/s':>11} "
                  f"{'ns/event':>9} {'slowdown':>9}")
        lines = ["kernel throughput baseline (events/sec)", header,
                 "-" * len(header)]
        for label, row in metrics.items():
            lines.append(
                f"{label:<30} {row['events_processed']:>9} "
                f"{row['events_per_wall_second']:>11.0f} "
                f"{row['ns_per_event']:>9.0f} "
                f"{row['wall_seconds_per_sim_second']:>8.0f}x")
        archive("kernel_throughput", "\n".join(lines))

    def test_bench_artifact_schema(self):
        """BENCH_kernel.json reloads with the fields the CI smoke step
        and `repro diff` rely on."""
        import json
        import pathlib
        self.test_archive_kernel_bench()
        path = (pathlib.Path(__file__).parent / "results"
                / "BENCH_kernel.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.bench/1"
        assert doc["bench"] == "kernel"
        assert isinstance(doc["config_hash"], str)
        assert len(doc["metrics"]) >= 3
        for label, row in doc["metrics"].items():
            assert row["events_per_wall_second"] > 0, label
            assert row["events_processed"] > 0, label
