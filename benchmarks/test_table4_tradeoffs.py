"""Table 4 — qualitative trade-off comparison of ten DDP models.

The trade-off engine *derives* durability, performance, programmer
intuition, programmability, and implementability from each model's
structure; this benchmark regenerates the table and cross-checks the
load-bearing cells against the paper (cell-exact agreement is enforced
by the unit tests in tests/core/test_tradeoffs.py).
"""

from conftest import archive, time_one_run

from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.core.tradeoffs import Level, TABLE4_MODELS, analyze, analyze_all


def test_table4_regenerate(time_one_run):
    profiles = time_one_run(analyze_all)
    header = "Table 4: trade-offs between DDP models (derived)"
    archive("table4_tradeoffs",
            header + "\n" + "\n".join(p.row() for p in profiles))

    by_model = {p.model: p for p in profiles}
    lin_sync = by_model[DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)]
    assert lin_sync.durability is Level.HIGH
    assert lin_sync.performance is Level.LOW
    assert lin_sync.intuitiveness is Level.HIGH

    causal_sync = by_model[DdpModel(C.CAUSAL, P.SYNCHRONOUS)]
    assert causal_sync.performance is Level.HIGH
    assert causal_sync.durability is Level.MEDIUM

    evt_sync = by_model[DdpModel(C.EVENTUAL, P.SYNCHRONOUS)]
    assert evt_sync.intuitiveness is Level.LOW

    lin_scope = by_model[DdpModel(C.LINEARIZABLE, P.SCOPE)]
    assert lin_scope.durability is Level.HIGH
    assert lin_scope.intuitiveness is Level.HIGH
    assert lin_scope.programmability is Level.LOW


def test_table4_full_matrix_derivation(time_one_run):
    """The derivation extends beyond the paper's ten rows to all 25."""
    from repro.core.model import all_ddp_models

    profiles = time_one_run(lambda: [analyze(m) for m in all_ddp_models()])
    archive("table4_full_matrix",
            "All 25 DDP models (derived trade-offs)\n"
            + "\n".join(p.row() for p in profiles))
    assert len(profiles) == 25
