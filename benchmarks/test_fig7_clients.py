"""Figure 7 — client-count sensitivity (10 / 100 / 150 clients).

The paper sweeps the number of clients for Linearizable and Causal
consistency across all five persistency models, normalized to
<Linearizable, Synchronous> at 100 clients.  Asserted shapes:

* Most models speed up substantially with fewer clients —
  <Linearizable, Synchronous> gains ~2.2x from 100 -> 10 clients.
* <Causal, Synchronous> and <Causal, Eventual> are largely flat: their
  reads and writes never stall.
* More clients (150) never increases throughput.
* Transaction conflicts drop roughly in half from 100 -> 10 clients.
"""

import pytest

from conftest import archive, run_cached, time_one_run

from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P

CLIENT_COUNTS = [10, 100, 150]
CONSISTENCIES = [C.LINEARIZABLE, C.CAUSAL]


def config_for(total_clients):
    assert total_clients % 5 == 0
    return ClusterConfig(clients_per_server=total_clients // 5)


@pytest.fixture(scope="module")
def fig7():
    results = {}
    for clients in CLIENT_COUNTS:
        for consistency in CONSISTENCIES:
            for persistency in P:
                model = DdpModel(consistency, persistency)
                results[(clients, model)] = run_cached(
                    model, config=config_for(clients))
    return results


def per_client_throughput(fig7, clients, consistency, persistency):
    return fig7[(clients, DdpModel(consistency, persistency))].throughput_ops_per_s


def test_fig7_generate(fig7, time_one_run):
    time_one_run(lambda: run_cached(DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS),
                                    config=config_for(100)))
    base = per_client_throughput(fig7, 100, C.LINEARIZABLE, P.SYNCHRONOUS)
    lines = ["Figure 7: throughput vs clients "
             "(normalized to <Linear, Synchronous> @ 100 clients)"]
    for clients in CLIENT_COUNTS:
        for consistency in CONSISTENCIES:
            cells = []
            for persistency in P:
                value = per_client_throughput(fig7, clients, consistency,
                                              persistency) / base
                cells.append(f"{persistency.short_name}={value:5.2f}")
            lines.append(f"{clients:>3} clients {consistency.short_name:<12} "
                         + "  ".join(cells))
    archive("fig7_clients", "\n".join(lines))


def test_fig7_lin_sync_gains_with_fewer_clients(fig7):
    at_10 = per_client_throughput(fig7, 10, C.LINEARIZABLE, P.SYNCHRONOUS)
    at_100 = per_client_throughput(fig7, 100, C.LINEARIZABLE, P.SYNCHRONOUS)
    # Aggregate throughput falls at 10 clients, but *per-client*
    # throughput (the inverse of mean latency) rises steeply — the
    # paper's 2.2x is per-configuration improvement from removing
    # contention; we check the per-client speedup band.
    speedup = (at_10 / 10) / (at_100 / 100)
    assert speedup > 1.5, f"per-client speedup only {speedup:.2f}x"


def test_fig7_causal_models_flat(fig7):
    """<Causal, Synchronous> and <Causal, Eventual> barely react to the
    client count (reads and writes never stall)."""
    for persistency in (P.SYNCHRONOUS, P.EVENTUAL):
        per_client = [
            per_client_throughput(fig7, clients, C.CAUSAL, persistency)
            / clients
            for clients in CLIENT_COUNTS]
        spread = max(per_client) / min(per_client)
        # Worker-pool saturation still compresses per-client rates at
        # higher counts; "flat" here means far less variation than
        # Linearizable shows.
        lin = [per_client_throughput(fig7, clients, C.LINEARIZABLE,
                                     P.SYNCHRONOUS) / clients
               for clients in CLIENT_COUNTS]
        lin_spread = max(lin) / min(lin)
        assert spread < lin_spread, (
            f"causal/{persistency.value} spread {spread:.2f} "
            f">= linearizable {lin_spread:.2f}")


def test_fig7_more_clients_never_help_lin(fig7):
    at_100 = per_client_throughput(fig7, 100, C.LINEARIZABLE, P.SYNCHRONOUS)
    at_150 = per_client_throughput(fig7, 150, C.LINEARIZABLE, P.SYNCHRONOUS)
    assert at_150 <= at_100 * 1.10


def test_fig7_txn_conflicts_drop_with_fewer_clients():
    model = DdpModel(C.TRANSACTIONAL, P.SYNCHRONOUS)
    at_100 = run_cached(model, config=config_for(100))
    at_10 = run_cached(model, config=config_for(10))

    def conflict_rate(summary):
        attempts = summary.txn_commits + summary.txn_conflicts
        return summary.txn_conflicts / max(attempts, 1)

    archive("fig7_txn_conflicts",
            "Transactional conflict rate vs clients\n"
            f"100 clients: {conflict_rate(at_100):.1%} "
            f"({at_100.txn_conflicts}/{at_100.txn_commits} conflicts/commits)\n"
            f" 10 clients: {conflict_rate(at_10):.1%} "
            f"({at_10.txn_conflicts}/{at_10.txn_commits} conflicts/commits)")
    assert conflict_rate(at_10) < conflict_rate(at_100) * 0.75, (
        "conflicts should drop substantially with 10x fewer clients")
