"""Chaos experiment: availability under a 1-node crash mid-run.

The paper argues (§8) that its membership-based failure handling keeps
the protocols available through node failures.  This experiment
quantifies that for each *consistency* model (at Synchronous
persistency): run the same workload fault-free and with one of three
nodes crashing mid-run (restarting after the failure-detector has
re-formed the membership), and compare throughput and write latency.

Availability = faulty throughput / fault-free throughput.  The crash
removes a third of the serving capacity for ~28% of the measured
window, so perfect rebalancing would still lose ~9% of the ops; the
assertion floor is far below that to stay robust across durations.
Every faulty run must also pass the model's durability contracts
(`repro.faults.validate_faulty_run`) after the node recovers from NVM
and rejoins.
"""

import time

from conftest import DURATION_NS, WARMUP_NS, archive, archive_json

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.faults import FaultInjector, load_fault_plan, validate_faulty_run
from repro.workload.ycsb import WORKLOADS

SERVERS = 3
CLIENTS_PER_SERVER = 4
CRASH_NODE = 1

MODELS = [DdpModel(consistency, P.SYNCHRONOUS) for consistency in C]


def _crash_plan():
    # Crash at 40% of the measured window, restart after another 25%.
    return load_fault_plan({
        "seed": 7,
        "events": [{
            "kind": "crash",
            "node": CRASH_NODE,
            "at_us": (WARMUP_NS + 0.4 * DURATION_NS) / 1000.0,
            "restart_after_us": 0.25 * DURATION_NS / 1000.0,
        }],
    })


def _run(model, faulty):
    injector = FaultInjector(_crash_plan()) if faulty else None
    cluster = Cluster(model,
                      config=ClusterConfig(servers=SERVERS,
                                           clients_per_server=CLIENTS_PER_SERVER),
                      workload=WORKLOADS["A"], faults=injector)
    summary = cluster.run(DURATION_NS, warmup_ns=WARMUP_NS)
    return cluster, injector, summary


def test_chaos_availability(time_one_run):
    rows = {}
    wall_start = time.perf_counter()

    def run_all():
        for model in MODELS:
            _, _, baseline = _run(model, faulty=False)
            cluster, injector, faulty = _run(model, faulty=True)
            rows[model] = (baseline, faulty, cluster, injector)
        return rows

    time_one_run(run_all)
    wall_s = time.perf_counter() - wall_start

    lines = ["Chaos: 1-node crash mid-run (restart after detection), "
             "Synchronous persistency",
             f"{'model':<32} {'fault-free':>11} {'faulty':>11} "
             f"{'avail':>6} {'wr-lat x':>9}"]
    metrics = {}
    for model, (baseline, faulty, cluster, injector) in rows.items():
        availability = (faulty.throughput_ops_per_s
                        / baseline.throughput_ops_per_s)
        latency_ratio = faulty.mean_write_ns / baseline.mean_write_ns
        lines.append(
            f"{str(model):<32} "
            f"{baseline.throughput_ops_per_s / 1e6:>10.1f}M "
            f"{faulty.throughput_ops_per_s / 1e6:>10.1f}M "
            f"{availability:>6.2f} {latency_ratio:>8.2f}x")
        metrics[str(model)] = {
            "throughput_ops_per_s": faulty.throughput_ops_per_s,
            "fault_free_ops_per_s": baseline.throughput_ops_per_s,
            "availability": availability,
            "mean_write_ns": faulty.mean_write_ns,
            "fault_free_mean_write_ns": baseline.mean_write_ns,
            "round_resends": sum(e.round_resends for e in cluster.engines),
            "rounds_retargeted": sum(e.rounds_retargeted
                                     for e in cluster.engines),
        }
        # The crash-restart cycle completed and membership healed.
        assert injector.crashes == 1 and injector.restarts == 1, model
        assert sorted(cluster.membership.live) == list(range(SERVERS)), model
        # Durability contracts hold on the recovered state.
        for result in validate_faulty_run(cluster):
            assert result.ok, (str(model), result.name,
                               result.violations[:5])
        # Availability floor: losing 1/3 of nodes for ~28% of the run
        # must not cost more than half the throughput.
        assert availability > 0.5, (str(model), availability)

    archive("chaos_availability", "\n".join(lines))
    archive_json(
        "chaos_availability",
        config={"workload": "YCSB-A",
                "servers": SERVERS,
                "clients": SERVERS * CLIENTS_PER_SERVER,
                "persistency": P.SYNCHRONOUS.value,
                "crash_node": CRASH_NODE,
                "plan": _crash_plan().to_json(),
                "duration_ns": DURATION_NS},
        metrics=metrics,
        wall_clock_seconds=wall_s,
    )


def test_weak_models_ride_through_better(time_one_run):
    """Shape: consistency models whose writes don't wait on cluster-wide
    rounds (Causal, Eventual) retain at least as much relative
    throughput through the crash as Linearizable, whose every write
    must gather ACKs from the (re-formed) replica set."""
    availabilities = {}

    def run_two():
        for consistency in (C.LINEARIZABLE, C.EVENTUAL):
            model = DdpModel(consistency, P.SYNCHRONOUS)
            _, _, baseline = _run(model, faulty=False)
            _, _, faulty = _run(model, faulty=True)
            availabilities[consistency] = (faulty.throughput_ops_per_s
                                           / baseline.throughput_ops_per_s)
        return availabilities

    time_one_run(run_two)
    assert availabilities[C.EVENTUAL] >= \
        availabilities[C.LINEARIZABLE] * 0.9
