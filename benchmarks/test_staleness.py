"""Extension — read staleness by DDP model.

Quantifies Section 2.1's qualitative claim ("weak models permit reads
to return inconsistent, sometimes stale versions"): the VersionBoard
scores every read by how many versions it trails the globally latest
issued write.
"""

import pytest

from conftest import DURATION_NS, WARMUP_NS, archive, time_one_run

from repro.analysis.staleness import VersionBoard
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.workload.ycsb import WORKLOADS

MODELS = [
    DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS),
    DdpModel(C.READ_ENFORCED, P.SYNCHRONOUS),
    DdpModel(C.CAUSAL, P.SYNCHRONOUS),
    DdpModel(C.CAUSAL, P.EVENTUAL),
    DdpModel(C.EVENTUAL, P.SYNCHRONOUS),
    DdpModel(C.EVENTUAL, P.EVENTUAL),
]


def run_with_board(model):
    board = VersionBoard()
    cluster = Cluster(model, config=ClusterConfig(),
                      workload=WORKLOADS["A"], version_board=board)
    cluster.run(duration_ns=DURATION_NS, warmup_ns=WARMUP_NS)
    return board.summarize()


@pytest.fixture(scope="module")
def staleness():
    return {model: run_with_board(model) for model in MODELS}


def test_generate(staleness, time_one_run):
    time_one_run(lambda: run_with_board(MODELS[0]))
    lines = ["Read staleness by DDP model (versions behind the latest "
             "issued write)",
             f"{'model':<40} {'stale reads':>12} {'mean behind':>12} "
             f"{'max behind':>11}"]
    for model, summary in staleness.items():
        lines.append(f"{str(model):<40} {summary.stale_fraction:>11.1%} "
                     f"{summary.mean_versions_behind:>12.3f} "
                     f"{summary.max_versions_behind:>11}")
    archive("staleness", "\n".join(lines))


def test_strong_consistency_freshest(staleness):
    lin = staleness[DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)]
    eventual = staleness[DdpModel(C.EVENTUAL, P.EVENTUAL)]
    assert lin.mean_versions_behind <= eventual.mean_versions_behind


def test_causal_sync_staler_than_causal_eventual(staleness):
    """Reads under <Causal, Synchronous> return the *persisted* version,
    so NVM lag becomes visible staleness — the durability price of
    recoverable reads."""
    sync = staleness[DdpModel(C.CAUSAL, P.SYNCHRONOUS)]
    lazy = staleness[DdpModel(C.CAUSAL, P.EVENTUAL)]
    assert sync.mean_versions_behind >= lazy.mean_versions_behind


def test_weak_models_have_real_staleness(staleness):
    eventual = staleness[DdpModel(C.EVENTUAL, P.EVENTUAL)]
    assert eventual.stale_reads > 0
