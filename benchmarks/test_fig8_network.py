"""Figure 8 — NIC-to-NIC round-trip latency sensitivity (0.5/1/2 us).

Asserted shapes (paper Section 8.2):
* Linearizable-consistency models slow down as the RTT grows (network
  rounds are on the critical path) — ~12% from 1 us to 2 us for
  <Linearizable, Synchronous>.
* Causal-consistency models are barely affected (updates propagate in
  the background).
"""

import pytest

from conftest import archive, run_cached, time_one_run

from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.net.network import NetworkConfig

RTTS_NS = [500.0, 1000.0, 2000.0]
CONSISTENCIES = [C.LINEARIZABLE, C.CAUSAL]


def config_for(rtt_ns):
    return ClusterConfig(network=NetworkConfig(round_trip_ns=rtt_ns))


@pytest.fixture(scope="module")
def fig8():
    results = {}
    for rtt in RTTS_NS:
        for consistency in CONSISTENCIES:
            for persistency in P:
                model = DdpModel(consistency, persistency)
                results[(rtt, model)] = run_cached(model,
                                                   config=config_for(rtt))
    return results


def thr(fig8, rtt, consistency, persistency):
    return fig8[(rtt, DdpModel(consistency, persistency))].throughput_ops_per_s


def test_fig8_generate(fig8, time_one_run):
    time_one_run(lambda: run_cached(DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS),
                                    config=config_for(1000.0)))
    base = thr(fig8, 1000.0, C.LINEARIZABLE, P.SYNCHRONOUS)
    lines = ["Figure 8: throughput vs NIC-to-NIC RTT "
             "(normalized to <Linear, Synchronous> @ 1us)"]
    for rtt in RTTS_NS:
        for consistency in CONSISTENCIES:
            cells = [f"{p.short_name}={thr(fig8, rtt, consistency, p) / base:5.2f}"
                     for p in P]
            lines.append(f"{rtt / 1000:.1f}us {consistency.short_name:<12} "
                         + "  ".join(cells))
    archive("fig8_network", "\n".join(lines))


def test_fig8_linearizable_sensitive_to_rtt(fig8):
    fast = thr(fig8, 500.0, C.LINEARIZABLE, P.SYNCHRONOUS)
    default = thr(fig8, 1000.0, C.LINEARIZABLE, P.SYNCHRONOUS)
    slow = thr(fig8, 2000.0, C.LINEARIZABLE, P.SYNCHRONOUS)
    assert fast > default > slow
    drop = 1 - slow / default
    assert drop > 0.05, f"1us->2us drop only {drop:.1%} (paper: ~12%)"


def test_fig8_causal_insensitive_to_rtt(fig8):
    for persistency in (P.SYNCHRONOUS, P.EVENTUAL):
        values = [thr(fig8, rtt, C.CAUSAL, persistency) for rtt in RTTS_NS]
        spread = max(values) / min(values)
        assert spread < 1.10, (
            f"causal/{persistency.value} varies {spread:.2f}x with RTT")


def test_fig8_causal_less_sensitive_than_linearizable(fig8):
    def sensitivity(consistency, persistency):
        values = [thr(fig8, rtt, consistency, persistency)
                  for rtt in RTTS_NS]
        return max(values) / min(values)

    for persistency in P:
        assert (sensitivity(C.CAUSAL, persistency)
                <= sensitivity(C.LINEARIZABLE, persistency) + 0.02), persistency
