"""Ablation — leaderless broadcast vs sequential (chain) propagation.

The paper's protocols broadcast coordinator messages to all followers
"instead of sending a message that sequentially visits all the other
replica nodes" (Section 5).  This ablation runs <Linearizable,
Synchronous> both ways: the chain adds one network hop per extra
follower to the critical path, so broadcast must win and the gap must
grow with the replication factor.
"""

import dataclasses

import pytest

from conftest import (DURATION_NS, archive, archive_json, run_cached,
                      time_one_run, wall_clock_s)

from repro.cluster.config import ClusterConfig
from repro.core.engine import ProtocolConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P

MODEL = DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)


def config_for(chain, servers=5):
    protocol = ProtocolConfig(chain_propagation=chain)
    return ClusterConfig(servers=servers,
                         clients_per_server=100 // servers,
                         protocol=protocol)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for servers in (3, 5):
        for chain in (False, True):
            results[(servers, chain)] = run_cached(
                MODEL, config=config_for(chain, servers))
    return results


def test_ablation_generate(sweep, time_one_run):
    time_one_run(lambda: run_cached(MODEL, config=config_for(False)))
    lines = ["Ablation: broadcast vs sequential chain propagation "
             "(<Linearizable, Synchronous>)",
             f"{'servers':>8} {'topology':<11} {'thr(Mops/s)':>12} "
             f"{'write(ns)':>10}"]
    for servers in (3, 5):
        for chain in (False, True):
            summary = sweep[(servers, chain)]
            lines.append(f"{servers:>8} {'chain' if chain else 'broadcast':<11} "
                         f"{summary.throughput_ops_per_s / 1e6:>12.2f} "
                         f"{summary.mean_write_ns:>10.0f}")
    archive("ablation_topology", "\n".join(lines))
    archive_json(
        "ablation_topology",
        config={"workload": "YCSB-A", "model": str(MODEL),
                "server_counts": [3, 5],
                "topologies": ["broadcast", "chain"],
                "duration_ns": DURATION_NS},
        metrics={f"{'chain' if chain else 'broadcast'}@servers={servers}":
                 summary for (servers, chain), summary in sweep.items()},
        wall_clock_seconds=sum(
            wall_clock_s(MODEL, config=config_for(chain, servers))
            for servers in (3, 5) for chain in (False, True)),
    )


def test_broadcast_beats_chain(sweep):
    for servers in (3, 5):
        broadcast = sweep[(servers, False)]
        chain = sweep[(servers, True)]
        assert broadcast.throughput_ops_per_s > chain.throughput_ops_per_s
        assert broadcast.mean_write_ns < chain.mean_write_ns


def test_chain_penalty_grows_with_replicas(sweep):
    """Each extra follower adds a serial hop to the chain's write path."""
    def write_penalty(servers):
        return (sweep[(servers, True)].mean_write_ns
                - sweep[(servers, False)].mean_write_ns)

    assert write_penalty(5) > write_penalty(3)
