"""Ablation — NVM pressure and the Synchronous/Read-Enforced inversion.

The paper reports a counter-intuitive effect (Section 8.1.1): under
Linearizable consistency, *Synchronous* persistency shows LOWER read
latency than *Read-Enforced* persistency, because Read-Enforced lets
more writes be outstanding, deepening NVM queues, and reads stall on the
yet-to-persist writes.

The effect is a function of how close the NVM write bandwidth is to the
offered persist rate.  This ablation sweeps NVM write service time and
bank count and reports where the inversion appears; at the default
(Table 5) timing the two models are close, and slowing the media or
halving the banks makes the inversion pronounced.
"""

import pytest

from conftest import (DURATION_NS, archive, archive_json, run_cached,
                      time_one_run, wall_clock_s)

from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.memory.devices import MemoryTiming

LIN_SYNC = DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)
LIN_RE = DdpModel(C.LINEARIZABLE, P.READ_ENFORCED)

NVM_CONFIGS = [
    ("default 400ns x16 banks", MemoryTiming(140.0, 400.0, 2, 8)),
    ("slow media 800ns x16 banks", MemoryTiming(140.0, 800.0, 2, 8)),
    ("narrow 400ns x8 banks", MemoryTiming(140.0, 400.0, 2, 4)),
    ("slow+narrow 800ns x8 banks", MemoryTiming(140.0, 800.0, 2, 4)),
]


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for label, timing in NVM_CONFIGS:
        config = ClusterConfig(nvm_timing=timing)
        for model in (LIN_SYNC, LIN_RE):
            results[(label, model)] = run_cached(model, config=config)
    return results


def test_ablation_generate(sweep, time_one_run):
    time_one_run(lambda: run_cached(LIN_SYNC))
    lines = ["Ablation: NVM pressure vs the Sync/Read-Enforced read-latency "
             "inversion",
             f"{'NVM configuration':<30} {'Sync rd(ns)':>12} "
             f"{'RdEnf rd(ns)':>13} {'inverted?':>10}"]
    for label, _timing in NVM_CONFIGS:
        sync_rd = sweep[(label, LIN_SYNC)].mean_read_ns
        re_rd = sweep[(label, LIN_RE)].mean_read_ns
        lines.append(f"{label:<30} {sync_rd:>12.0f} {re_rd:>13.0f} "
                     f"{'yes' if re_rd > sync_rd else 'no':>10}")
    archive("ablation_nvm_pressure", "\n".join(lines))
    archive_json(
        "ablation_nvm_pressure",
        config={"workload": "YCSB-A",
                "models": [str(LIN_SYNC), str(LIN_RE)],
                "nvm_configs": {
                    label: {"read_ns": timing.read_ns,
                            "write_ns": timing.write_ns,
                            "total_banks": timing.total_banks}
                    for label, timing in NVM_CONFIGS},
                "duration_ns": DURATION_NS},
        metrics={f"{str(model)}@{label}": summary
                 for (label, model), summary in sweep.items()},
        wall_clock_seconds=sum(
            wall_clock_s(model, config=ClusterConfig(nvm_timing=timing))
            for label, timing in NVM_CONFIGS
            for model in (LIN_SYNC, LIN_RE)),
    )


def test_inversion_appears_under_pressure(sweep):
    """With NVM write bandwidth squeezed, Read-Enforced persistency's
    extra outstanding writes make its reads slower than Synchronous."""
    label = NVM_CONFIGS[-1][0]
    sync_rd = sweep[(label, LIN_SYNC)].mean_read_ns
    re_rd = sweep[(label, LIN_RE)].mean_read_ns
    assert re_rd > sync_rd, (
        f"expected inversion under pressure: RdEnf {re_rd:.0f}ns vs "
        f"Sync {sync_rd:.0f}ns")


def test_pressure_slows_everyone(sweep):
    default_label = NVM_CONFIGS[0][0]
    squeezed_label = NVM_CONFIGS[-1][0]
    for model in (LIN_SYNC, LIN_RE):
        assert (sweep[(squeezed_label, model)].throughput_ops_per_s
                < sweep[(default_label, model)].throughput_ops_per_s)


def test_read_stall_fraction_grows_with_pressure(sweep):
    """The >30% read-conflict statistic scales with NVM pressure."""
    def blocked_fraction(label):
        summary = sweep[(label, LIN_RE)]
        return summary.reads_blocked_by_unpersisted / max(summary.requests * 0.5, 1)

    assert blocked_fraction(NVM_CONFIGS[-1][0]) >= \
        blocked_fraction(NVM_CONFIGS[0][0]) * 0.9
