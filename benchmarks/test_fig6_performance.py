"""Figure 6 — performance of all 25 DDP models under YCSB-A.

Panels (all normalized to <Linearizable, Synchronous>):
  (a) throughput  (b) mean read latency  (c) mean write latency
  (d) mean latency  (e) p95 read latency  (f) p95 write latency

Asserted shapes (paper Section 8.1):
* Linearizable consistency is the slowest group; Causal and Eventual
  the fastest, often 2-3x higher throughput.
* <Eventual, Eventual> tops out around 3.3x <Linearizable, Synchronous>.
* Within each consistency group, Strict persistency is slowest and
  Eventual persistency fastest.
* Read-Enforced consistency is only modestly above Linearizable
  (read stalls on unpersisted writes: >30% of reads conflict in
  <Read-Enforced, Read-Enforced>).
* Transactional consistency is held back by transaction conflicts.
* Causal+Synchronous buffers orders of magnitude more writes than
  Causal+Eventual.
"""

import pytest

from conftest import (DURATION_NS, WARMUP_NS, archive, archive_json,
                      orchestrator_wall_s, prefetch_matrix, run_cached,
                      time_one_run, wall_clock_s)

from repro.analysis.report import format_figure6_table, format_grid
from repro.core.model import Consistency as C, DdpModel, Persistency as P, all_ddp_models

BASELINE = DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)


@pytest.fixture(scope="module")
def fig6():
    # Fill the cache up front — in parallel when REPRO_BENCH_WORKERS
    # is set — so the per-test run_cached calls below are always hits.
    prefetch_matrix(all_ddp_models())
    return {model: run_cached(model) for model in all_ddp_models()}


def thr(fig6, consistency, persistency):
    return fig6[DdpModel(consistency, persistency)].throughput_ops_per_s


def test_fig6_generate_all_panels(fig6, time_one_run):
    # Time one representative extra run; the sweep itself is cached.
    time_one_run(lambda: run_cached(BASELINE))
    archive("fig6_performance", format_figure6_table(fig6))


def test_fig6a_consistency_group_ordering(fig6):
    """Linearizable lowest; Causal/Eventual highest (2-3x)."""
    base = thr(fig6, C.LINEARIZABLE, P.SYNCHRONOUS)
    for persistency in (P.SYNCHRONOUS, P.EVENTUAL):
        assert thr(fig6, C.CAUSAL, persistency) > 1.8 * base
        assert thr(fig6, C.EVENTUAL, persistency) > 1.8 * base


def test_fig6a_eventual_eventual_headline_ratio(fig6):
    """The paper's 3.3x extreme case (we accept the 2.5x-4.5x band)."""
    ratio = (thr(fig6, C.EVENTUAL, P.EVENTUAL)
             / thr(fig6, C.LINEARIZABLE, P.SYNCHRONOUS))
    assert 2.5 <= ratio <= 4.5, f"got {ratio:.2f}x (paper: 3.3x)"


def test_fig6a_strict_slowest_eventual_fastest_within_groups(fig6):
    """In aggregate, Strict persistency slowest; Eventual fastest."""
    for consistency in C:
        strict = thr(fig6, consistency, P.STRICT)
        eventual = thr(fig6, consistency, P.EVENTUAL)
        sync = thr(fig6, consistency, P.SYNCHRONOUS)
        assert strict <= sync * 1.05, consistency
        assert eventual >= strict, consistency


def test_fig6a_read_enforced_consistency_modest(fig6):
    """Read-Enforced consistency gains over Linearizable are limited by
    read stalls — well below the Causal group."""
    re_sync = thr(fig6, C.READ_ENFORCED, P.SYNCHRONOUS)
    lin_sync = thr(fig6, C.LINEARIZABLE, P.SYNCHRONOUS)
    causal_sync = thr(fig6, C.CAUSAL, P.SYNCHRONOUS)
    assert lin_sync < re_sync < causal_sync


def test_fig6_read_conflict_fraction_re_re(fig6):
    """Paper: >30% of reads conflict with a yet-to-persist write in
    <Read-Enforced, Read-Enforced> (vs 5.1% in Ganesan's 10-client
    setup)."""
    summary = fig6[DdpModel(C.READ_ENFORCED, P.READ_ENFORCED)]
    reads = summary.requests * 0.5
    fraction = summary.reads_blocked_by_unpersisted / reads
    assert fraction > 0.25, f"got {fraction:.1%} (paper: >30%)"


def test_fig6bc_latency_inverse_to_throughput(fig6):
    """Throughput is inversely correlated with mean latencies: the
    Causal/Eventual groups have the lowest read+write latencies."""
    lin = fig6[DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)]
    causal = fig6[DdpModel(C.CAUSAL, P.SYNCHRONOUS)]
    assert causal.mean_read_ns < lin.mean_read_ns
    assert causal.mean_write_ns < lin.mean_write_ns


def test_fig6c_transactional_write_latency_high(fig6):
    """Conflict squashes and ENDX bunching give Transactional the worst
    write latencies (and tails, panel f)."""
    txn = fig6[DdpModel(C.TRANSACTIONAL, P.SYNCHRONOUS)]
    lin = fig6[DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)]
    assert txn.txn_conflicts > 0
    if txn.duration_ns < 100_000:
        pytest.skip("window too short for squashed transactions to retire "
                    "(raise REPRO_BENCH_DURATION_NS)")
    assert txn.mean_write_ns > lin.mean_write_ns
    assert txn.p95_write_ns > lin.p95_write_ns


def test_fig6_causal_buffering_orders_of_magnitude(fig6):
    """Section 8.1.2: Causal+Synchronous needs ~1-2 orders of magnitude
    more buffered writes than Causal+Eventual."""
    sync_peak = fig6[DdpModel(C.CAUSAL, P.SYNCHRONOUS)].causal_buffer_peak
    evt_peak = fig6[DdpModel(C.CAUSAL, P.EVENTUAL)].causal_buffer_peak
    assert sync_peak >= 10 * max(evt_peak, 1)


def test_fig6_traffic_shapes(fig6):
    """Causal carries cauhists and Transactional adds begin/end rounds:
    both move more bytes per request than plain Eventual consistency."""
    def bytes_per_request(model):
        summary = fig6[model]
        return summary.total_bytes / max(summary.requests, 1)

    causal = bytes_per_request(DdpModel(C.CAUSAL, P.SYNCHRONOUS))
    eventual = bytes_per_request(DdpModel(C.EVENTUAL, P.SYNCHRONOUS))
    assert causal > eventual


def test_fig6_emit_bench_json(fig6):
    archive_json(
        "fig6",
        config={
            "workload": "YCSB-A",
            "duration_ns": DURATION_NS,
            "warmup_ns": WARMUP_NS,
            "models": [str(model) for model in fig6],
        },
        metrics={str(model): summary for model, summary in fig6.items()},
        wall_clock_seconds=sum(wall_clock_s(model) for model in fig6),
        orchestrator_wall_seconds=orchestrator_wall_s(),
    )


def test_fig6_archive_raw_numbers(fig6):
    rows = []
    for model, summary in fig6.items():
        rows.append(
            f"{str(model):<44} thr={summary.throughput_ops_per_s/1e6:8.2f}M "
            f"rd={summary.mean_read_ns:7.0f} wr={summary.mean_write_ns:7.0f} "
            f"p95rd={summary.p95_read_ns:7.0f} p95wr={summary.p95_write_ns:7.0f} "
            f"msgs={summary.total_messages:>8} bytes={summary.total_bytes:>10}")
    archive("fig6_raw", "\n".join(rows))
