"""Ablation — workload skew vs transaction conflicts and read conflicts.

The paper reports ~30% of transactions conflicting at 100 clients and
>30% of reads conflicting with unpersisted writes in <Read-Enforced,
Read-Enforced>.  Both statistics are driven by key skew; this ablation
sweeps the zipfian theta to locate those operating points and shows
both statistics are monotone in skew.
"""

import pytest

from conftest import (DURATION_NS, archive, archive_json, run_cached,
                      time_one_run, wall_clock_s)

from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.workload.ycsb import WORKLOADS

THETAS = [0.50, 0.70, 0.90, 0.99]
TXN_MODEL = DdpModel(C.TRANSACTIONAL, P.SYNCHRONOUS)
RE_RE = DdpModel(C.READ_ENFORCED, P.READ_ENFORCED)


def workload(theta):
    return WORKLOADS["A"].with_overrides(zipf_theta=theta)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for theta in THETAS:
        results[("txn", theta)] = run_cached(TXN_MODEL,
                                             workload=workload(theta))
        results[("rere", theta)] = run_cached(RE_RE,
                                              workload=workload(theta))
    return results


def txn_conflict_rate(summary):
    attempts = summary.txn_commits + summary.txn_conflicts
    return summary.txn_conflicts / max(attempts, 1)


def read_conflict_rate(summary):
    return summary.reads_blocked_by_unpersisted / max(summary.requests * 0.5, 1)


def test_ablation_generate(sweep, time_one_run):
    time_one_run(lambda: run_cached(TXN_MODEL, workload=workload(0.99)))
    lines = ["Ablation: zipfian skew vs conflicts",
             f"{'theta':>6} {'txn conflict rate':>18} "
             f"{'RE-RE read conflicts':>21}"]
    for theta in THETAS:
        lines.append(f"{theta:>6.2f} "
                     f"{txn_conflict_rate(sweep[('txn', theta)]):>17.1%} "
                     f"{read_conflict_rate(sweep[('rere', theta)]):>20.1%}")
    lines.append("")
    lines.append("Paper operating points: ~30% of transactions conflict; "
                 ">30% of reads conflict in <Read-Enforced, Read-Enforced>.")
    archive("ablation_conflict_skew", "\n".join(lines))
    archive_json(
        "ablation_conflict_skew",
        config={"workload": "YCSB-A", "zipf_thetas": THETAS,
                "models": [str(TXN_MODEL), str(RE_RE)],
                "duration_ns": DURATION_NS},
        metrics={f"{label}@theta={theta}": summary
                 for (label, theta), summary in sweep.items()},
        wall_clock_seconds=sum(
            wall_clock_s(TXN_MODEL if label == "txn" else RE_RE,
                         workload=workload(theta))
            for (label, theta) in sweep),
    )


def test_txn_conflicts_monotone_in_skew(sweep):
    rates = [txn_conflict_rate(sweep[("txn", theta)]) for theta in THETAS]
    assert rates[-1] > rates[0]


def test_read_conflicts_monotone_in_skew(sweep):
    rates = [read_conflict_rate(sweep[("rere", theta)]) for theta in THETAS]
    assert rates[-1] > rates[0]


def test_paper_operating_points_are_reachable(sweep):
    """Some theta in the sweep yields the paper's ~30% for each
    statistic (the exact theta differs because the conflict definitions
    and client placement cannot be matched exactly)."""
    txn_rates = [txn_conflict_rate(sweep[("txn", theta)]) for theta in THETAS]
    read_rates = [read_conflict_rate(sweep[("rere", theta)])
                  for theta in THETAS]
    assert min(txn_rates) < 0.45 < max(txn_rates) or any(
        0.15 < rate < 0.50 for rate in txn_rates)
    assert max(read_rates) > 0.25
