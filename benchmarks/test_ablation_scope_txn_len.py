"""Ablation — scope and transaction lengths.

The paper fixes scopes at 10 client requests and transactions at 5
(Section 7).  This ablation sweeps both:

* Longer scopes amortize the Persist round over more requests, so
  <Linearizable, Scope> throughput rises with scope length (durability
  lag rises with it — that is the trade).
* Longer transactions amortize INITX/ENDX but widen the conflict
  window; with the default zipfian contention the conflict-rate increase
  dominates beyond a point.
"""

import dataclasses

import pytest

from conftest import (DURATION_NS, archive, archive_json, run_cached,
                      time_one_run, wall_clock_s)

from repro.cluster.config import ClusterConfig
from repro.core.engine import ProtocolConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P

SCOPE_MODEL = DdpModel(C.LINEARIZABLE, P.SCOPE)
TXN_MODEL = DdpModel(C.TRANSACTIONAL, P.SYNCHRONOUS)

SCOPE_LENGTHS = [5, 10, 20]
TXN_LENGTHS = [2, 5, 10]


def scope_config(length):
    return ClusterConfig(protocol=ProtocolConfig(scope_length=length))


def txn_config(length):
    return ClusterConfig(protocol=ProtocolConfig(txn_length=length))


@pytest.fixture(scope="module")
def scope_sweep():
    return {length: run_cached(SCOPE_MODEL, config=scope_config(length))
            for length in SCOPE_LENGTHS}


@pytest.fixture(scope="module")
def txn_sweep():
    return {length: run_cached(TXN_MODEL, config=txn_config(length))
            for length in TXN_LENGTHS}


def test_ablation_generate(scope_sweep, txn_sweep, time_one_run):
    time_one_run(lambda: run_cached(SCOPE_MODEL, config=scope_config(10)))
    lines = ["Ablation: scope length (<Linearizable, Scope>)",
             f"{'scope len':>10} {'thr(Mops/s)':>12} {'persists':>9}"]
    for length, summary in scope_sweep.items():
        lines.append(f"{length:>10} {summary.throughput_ops_per_s / 1e6:>12.2f} "
                     f"{summary.persists:>9}")
    lines.append("")
    lines.append("Ablation: transaction length (<Transactional, Synchronous>)")
    lines.append(f"{'txn len':>10} {'thr(Mops/s)':>12} {'conflict rate':>14}")
    for length, summary in txn_sweep.items():
        attempts = summary.txn_commits + summary.txn_conflicts
        rate = summary.txn_conflicts / max(attempts, 1)
        lines.append(f"{length:>10} {summary.throughput_ops_per_s / 1e6:>12.2f} "
                     f"{rate:>13.1%}")
    archive("ablation_scope_txn_len", "\n".join(lines))
    archive_json(
        "ablation_scope_txn_len",
        config={"workload": "YCSB-A",
                "scope_model": str(SCOPE_MODEL),
                "scope_lengths": SCOPE_LENGTHS,
                "txn_model": str(TXN_MODEL),
                "txn_lengths": TXN_LENGTHS,
                "duration_ns": DURATION_NS},
        metrics={**{f"scope_len={length}": summary
                    for length, summary in scope_sweep.items()},
                 **{f"txn_len={length}": summary
                    for length, summary in txn_sweep.items()}},
        wall_clock_seconds=(
            sum(wall_clock_s(SCOPE_MODEL, config=scope_config(length))
                for length in SCOPE_LENGTHS)
            + sum(wall_clock_s(TXN_MODEL, config=txn_config(length))
                  for length in TXN_LENGTHS)),
    )


def test_longer_scopes_amortize_persist_rounds(scope_sweep):
    assert (scope_sweep[20].throughput_ops_per_s
            > scope_sweep[5].throughput_ops_per_s)


def test_scope_persist_traffic_drops_with_length(scope_sweep):
    """Fewer Persist rounds per request with longer scopes (persist
    count is per-update, so compare per-request round overhead via
    throughput instead of raw persists)."""
    per_request_persists_5 = (scope_sweep[5].persists
                              / max(scope_sweep[5].requests, 1))
    per_request_persists_20 = (scope_sweep[20].persists
                               / max(scope_sweep[20].requests, 1))
    assert per_request_persists_20 <= per_request_persists_5 * 1.1


def test_longer_txns_raise_conflict_rate(txn_sweep):
    def rate(length):
        summary = txn_sweep[length]
        attempts = summary.txn_commits + summary.txn_conflicts
        return summary.txn_conflicts / max(attempts, 1)

    assert rate(10) > rate(2)
