"""Adversarial histories for the black-box checkers.

Each test hand-builds a small client-observed history containing exactly
one class of contract violation and asserts that the matching checker
rejects it while the others stay silent — the checkers must separate
failure classes, not merely detect "something is wrong".  A second set
of hypothesis properties generates correct histories and asserts no
checker ever produces a false positive on them (the soundness
contract), and cross-validates the polynomial linearizability checker
against the exact Wing & Gong search.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.checkers import (CONSISTENCY_CHECKERS, PreparedHistory,
                                  check_causal, check_linearizable,
                                  check_no_phantom, check_read_enforced,
                                  check_transactional)
from repro.audit.durability import (check_completed_writes_durable,
                                    check_read_values_durable,
                                    check_recovered_no_phantom,
                                    check_scope_writes_durable)
from repro.obs.history import History, HistoryOpRecord


def _op(index, client, op, key, version, invoke, respond, node=0,
        session=0, **kw):
    return HistoryOpRecord(index=index, client=client, session=session,
                           node=node, op=op, key=key, value=kw.pop(
                               "value", None),
                           invoke_us=invoke, respond_us=respond,
                           version=version, **kw)


def _history(specs, recovered=None):
    """Build a History from (client, op, key, version, invoke, respond,
    {extras}) tuples."""
    ops = []
    for spec in specs:
        extras = spec[6] if len(spec) > 6 else {}
        ops.append(_op(len(ops), *spec[:6], **extras))
    rec = {}
    if recovered is not None:
        rec = {"merged": {str(k): {"version": list(v), "value": None}
                          for k, v in recovered.items()}}
    return History(meta={}, ops=ops, recovered=rec)


def _prep(specs, recovered=None):
    return PreparedHistory(_history(specs, recovered))


class TestPhantom:
    def test_unwritten_token_is_phantom(self):
        prep = _prep([
            (1, "write", 5, (1, 0), 0.0, 1.0),
            (2, "read", 5, (9, 3), 2.0, 3.0),
        ])
        res = check_no_phantom(prep)
        assert not res.ok
        assert res.details[0]["rule"] == "phantom-read"

    def test_future_read_detected(self):
        prep = _prep([
            (2, "read", 5, (1, 0), 0.0, 1.0),
            (1, "write", 5, (1, 0), 2.0, 3.0),
        ])
        res = check_no_phantom(prep)
        assert not res.ok
        assert res.details[0]["rule"] == "future-read"

    def test_unknown_token_key_excluded(self):
        # A crash-severed write with no recorded version may have minted
        # the token: unattributable, not a phantom.
        prep = _prep([
            (1, "write", 5, None, 0.0, None),
            (2, "read", 5, (9, 3), 2.0, 3.0),
        ])
        res = check_no_phantom(prep)
        assert res.ok
        assert res.stats["unattributable_reads"] == 1


class TestLinearizable:
    def test_stale_read_after_write_completes(self):
        prep = _prep([
            (1, "write", 5, (1, 0), 0.0, 1.0),
            (1, "write", 5, (2, 0), 2.0, 3.0),
            (2, "read", 5, (1, 0), 4.0, 5.0),
        ])
        res = check_linearizable(prep)
        assert not res.ok
        assert res.details[0]["rule"] == "not-linearizable"
        # The same history is legal for every weaker model.
        assert check_read_enforced(_prep([
            (1, "write", 5, (1, 0), 0.0, 1.0),
            (1, "write", 5, (2, 0), 2.0, 3.0),
            (2, "read", 5, (1, 0), 4.0, 5.0, {"node": 1}),
        ])).ok
        assert check_causal(prep).ok

    def test_concurrent_read_may_see_either(self):
        prep = _prep([
            (1, "write", 5, (1, 0), 0.0, 1.0),
            (1, "write", 5, (2, 0), 2.0, 5.0),
            (2, "read", 5, (1, 0), 3.0, 4.0),
        ])
        assert check_linearizable(prep).ok

    def test_reads_cannot_swap_write_order(self):
        prep = _prep([
            (1, "write", 5, (1, 0), 0.0, 1.0),
            (1, "write", 5, (2, 0), 2.0, 3.0),
            (2, "read", 5, (2, 0), 4.0, 5.0),
            (3, "read", 5, (1, 0), 6.0, 7.0),
        ])
        res = check_linearizable(prep)
        assert not res.ok

    def test_unmatched_token_excluded_not_violated(self):
        prep = _prep([
            (1, "write", 5, (1, 0), 0.0, 1.0),
            (2, "read", 5, (9, 3), 2.0, 3.0),
        ])
        res = check_linearizable(prep)
        assert res.ok
        assert res.stats["excluded_observations"] == 1


class TestReadEnforced:
    def test_same_node_step_back(self):
        prep = _prep([
            (1, "write", 5, (1, 0), 0.0, 0.5),
            (1, "write", 5, (2, 0), 0.6, 1.0),
            (2, "read", 5, (2, 0), 2.0, 3.0, {"node": 1}),
            (3, "read", 5, (1, 0), 4.0, 5.0, {"node": 1}),
        ])
        res = check_read_enforced(prep)
        assert not res.ok
        assert res.details[0]["rule"] == "stale-read"

    def test_cross_node_staleness_is_legal(self):
        # Enforcement is local to the serving node; node 2's lagging
        # replica passes here (and fails the linearizable checker —
        # the cross-model witness separating the rows).
        specs = [
            (1, "write", 5, (1, 0), 0.0, 1.0),
            (1, "write", 5, (2, 0), 2.0, 3.0),
            (2, "read", 5, (1, 0), 4.0, 5.0, {"node": 2}),
        ]
        assert check_read_enforced(_prep(specs)).ok
        assert not check_linearizable(_prep(specs)).ok

    def test_read_your_writes(self):
        prep = _prep([
            (1, "write", 5, (3, 0), 0.0, 1.0),
            (1, "read", 5, (2, 0), 2.0, 3.0),
            (2, "write", 5, (2, 0), 0.0, 0.5),
        ])
        res = check_read_enforced(prep)
        assert not res.ok
        assert res.details[0]["rule"] == "read-your-writes"


class TestTransactional:
    def test_committed_attempt_keeps_own_writes(self):
        prep = _prep([
            (1, "write", 5, (4, 0), 0.0, 1.0,
             {"txn_id": 7, "committed": True}),
            (1, "read", 5, (2, 0), 2.0, 3.0,
             {"txn_id": 7, "committed": True}),
            (2, "write", 5, (2, 0), 0.0, 0.5),
        ])
        res = check_transactional(prep)
        assert not res.ok
        assert res.details[0]["rule"] == "own-write-lost"

    def test_squashed_attempt_reads_excluded(self):
        prep = _prep([
            (1, "write", 5, (4, 0), 0.0, 1.0,
             {"txn_id": 7, "committed": False}),
            (2, "read", 5, (4, 0), 2.0, 3.0),
        ])
        assert check_transactional(prep).ok
        assert check_linearizable(prep).ok


class TestCausal:
    def test_monotonic_reads_violation(self):
        prep = _prep([
            (1, "write", 5, (1, 0), 0.0, 1.0),
            (1, "write", 5, (2, 0), 2.0, 3.0),
            (2, "read", 5, (2, 0), 4.0, 5.0),
            (2, "read", 5, (1, 0), 6.0, 7.0),
        ])
        res = check_causal(prep)
        assert not res.ok
        assert res.details[0]["rule"] == "monotonic-reads"

    def test_writes_follow_reads_one_hop(self):
        # Writer session 1 reads key 2 = (5,1) then writes key 1, so the
        # write's nearest dependencies carry key 2 at (5,1).  Session 3
        # reads that write, then sees key 2 at an older version.
        prep = _prep([
            (9, "write", 2, (5, 1), 0.0, 0.5, {"node": 1}),
            (9, "write", 2, (3, 2), 0.0, 0.4, {"node": 1}),
            (1, "read", 2, (5, 1), 1.0, 2.0, {"node": 1}),
            (1, "write", 1, (7, 0), 3.0, 4.0, {"node": 1}),
            (3, "read", 1, (7, 0), 5.0, 6.0, {"node": 0}),
            (3, "read", 2, (3, 2), 7.0, 8.0, {"node": 0}),
        ])
        res = check_causal(prep)
        assert not res.ok
        assert res.details[0]["rule"] == "writes-follow-reads"

    def test_transitive_chain_not_owed(self):
        # The dependency chain reaches (9,1) on key 1 only through the
        # writer's *earlier* write: per-key version dominance under
        # last-writer-wins legitimately severs such chains (a concurrent
        # overwrite satisfies the dependency check without carrying the
        # intermediate write's history), so one hop is all the protocol
        # guarantees and the checker must not flag deeper ancestors.
        prep = _prep([
            (9, "write", 1, (9, 1), 0.0, 0.5, {"node": 1}),
            (9, "write", 1, (2, 0), 0.0, 0.4, {"node": 1}),
            (1, "read", 1, (9, 1), 1.0, 2.0, {"node": 1}),
            (1, "write", 2, (4, 2), 3.0, 4.0, {"node": 1}),
            (1, "write", 3, (6, 2), 5.0, 6.0, {"node": 1}),
            (3, "read", 3, (6, 2), 7.0, 8.0, {"node": 0}),
            (3, "read", 1, (2, 0), 9.0, 10.0, {"node": 0}),
        ])
        assert check_causal(prep).ok

    def test_origin_node_dependency_excluded(self):
        # The expected dependency was coordinated at the reader's own
        # node, where local writes apply without a dependency check:
        # under persisted-frontier reads the per-key persist queues can
        # expose the dependent write first.  Excluded, not violated.
        prep = _prep([
            (9, "write", 2, (5, 1), 0.0, 0.5, {"node": 1}),
            (9, "write", 2, (3, 2), 0.0, 0.4, {"node": 1}),
            (1, "read", 2, (5, 1), 1.0, 2.0, {"node": 1}),
            (1, "write", 1, (7, 0), 3.0, 4.0, {"node": 1}),
            (3, "read", 1, (7, 0), 5.0, 6.0, {"node": 1}),
            (3, "read", 2, (3, 2), 7.0, 8.0, {"node": 1}),
        ])
        res = check_causal(prep)
        assert res.ok
        assert res.stats["excluded_observations"] == 1

    def test_degraded_sessions_excluded(self):
        prep = _prep([
            (1, "write", 5, (1, 0), 0.0, 1.0),
            (1, "write", 5, (2, 0), 2.0, 3.0),
            (2, "read", 5, (2, 0), 4.0, 5.0, {"degraded": True,
                                              "session": 1}),
            (2, "read", 5, (1, 0), 6.0, 7.0, {"degraded": True,
                                              "session": 1}),
        ])
        assert check_causal(prep).ok


class TestDurability:
    def test_lost_durable_write(self):
        prep = _prep([
            (1, "write", 5, (2, 0), 0.0, 1.0),
        ], recovered={5: (1, 0)})
        res = check_completed_writes_durable(prep)
        assert not res.ok
        assert res.details[0]["rule"] == "lost-durable-write"

    def test_lost_read_value(self):
        prep = _prep([
            (1, "write", 5, (2, 0), 0.0, 1.0),
            (2, "read", 5, (2, 0), 2.0, 3.0),
        ], recovered={5: (1, 0)})
        res = check_read_values_durable(prep)
        assert not res.ok
        assert res.details[0]["rule"] == "lost-read-value"

    def test_torn_scope(self):
        prep = _prep([
            (1, "write", 5, (2, 0), 0.0, 1.0, {"scope_id": 1_000_000}),
            (1, "persist", None, None, 2.0, 3.0,
             {"scope_id": 1_000_000, "committed": True}),
        ], recovered={5: (1, 0)})
        res = check_scope_writes_durable(prep)
        assert not res.ok
        assert res.details[0]["rule"] == "torn-scope"

    def test_uncommitted_scope_not_owed(self):
        prep = _prep([
            (1, "write", 5, (2, 0), 0.0, 1.0, {"scope_id": 1_000_000}),
        ], recovered={5: (1, 0)})
        assert check_scope_writes_durable(prep).ok

    def test_scope_id_reuse_across_sessions_not_conflated(self):
        # A post-restart session reuses a client-local scope id; the
        # pre-crash session's committed Persist must not vouch for the
        # new session's writes.
        prep = _prep([
            (1, "write", 5, (2, 0), 0.0, 1.0, {"scope_id": 1_000_000}),
            (1, "persist", None, None, 2.0, 3.0,
             {"scope_id": 1_000_000, "committed": True}),
            (1, "write", 5, (9, 0), 4.0, 5.0,
             {"scope_id": 1_000_000, "session": 1, "degraded": True}),
        ], recovered={5: (2, 0)})
        assert check_scope_writes_durable(prep).ok

    def test_recovered_phantom(self):
        prep = _prep([
            (1, "write", 5, (2, 0), 0.0, 1.0),
        ], recovered={5: (7, 3)})
        res = check_recovered_no_phantom(prep)
        assert not res.ok
        assert res.details[0]["rule"] == "recovered-phantom"

    def test_severed_write_key_skipped(self):
        prep = _prep([
            (1, "write", 5, None, 0.0, None, {"severed": True}),
        ], recovered={5: (7, 3)})
        res = check_recovered_no_phantom(prep)
        assert res.ok
        assert res.stats["skipped_keys"] == 1


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

@st.composite
def sequential_history(draw):
    """A correct single-copy history: per key, writes happen strictly in
    sequence and every read returns the latest completed write."""
    keys = draw(st.integers(min_value=1, max_value=3))
    steps = draw(st.integers(min_value=1, max_value=25))
    specs = []
    latest = {}
    clock = 0.0
    for _ in range(steps):
        key = draw(st.integers(min_value=0, max_value=keys - 1))
        client = draw(st.integers(min_value=1, max_value=4))
        node = client % 2
        dur = draw(st.floats(min_value=0.1, max_value=2.0,
                             allow_nan=False))
        if draw(st.booleans()) or key not in latest:
            version = (latest.get(key, (0, -1))[0] + 1, node)
            specs.append((client, "write", key, version, clock,
                          clock + dur, {"node": node}))
            latest[key] = version
        else:
            specs.append((client, "read", key, latest[key], clock,
                          clock + dur, {"node": node}))
        clock += dur + 0.01
    return specs


@given(sequential_history())
@settings(max_examples=60, deadline=None)
def test_no_false_positives_on_sequential_histories(specs):
    prep = _prep(specs)
    for name, checker in CONSISTENCY_CHECKERS.items():
        assert checker(prep).ok, name
    assert check_no_phantom(prep).ok


@st.composite
def concurrent_single_key_history(draw):
    """Small random single-key histories with unique tokens and
    arbitrary overlap, for cross-checking against Wing & Gong."""
    writes = draw(st.integers(min_value=1, max_value=4))
    reads = draw(st.integers(min_value=0, max_value=4))
    specs = []
    for i in range(writes):
        invoke = draw(st.floats(min_value=0.0, max_value=10.0,
                                allow_nan=False))
        dur = draw(st.floats(min_value=0.1, max_value=5.0,
                             allow_nan=False))
        specs.append((i + 1, "write", 0, (i + 1, 0), invoke,
                      invoke + dur))
    for j in range(reads):
        invoke = draw(st.floats(min_value=0.0, max_value=10.0,
                                allow_nan=False))
        dur = draw(st.floats(min_value=0.1, max_value=5.0,
                             allow_nan=False))
        token = draw(st.integers(min_value=0, max_value=writes))
        version = (token, 0) if token else (0, -1)
        specs.append((writes + j + 1, "read", 0, version, invoke,
                      invoke + dur))
    return specs


@given(concurrent_single_key_history())
@settings(max_examples=150, deadline=None)
def test_cluster_graph_matches_wing_gong(specs):
    from repro.analysis.linearizability import (HistoryOp,
                                                check_linearizable as _wg)
    prep = _prep(specs)
    fast = check_linearizable(prep)
    exact = _wg([HistoryOp(op_type=s[1], value=tuple(s[3]),
                           invoke=s[4], respond=s[5]) for s in specs],
                initial_value=(0, -1), max_states=500_000)
    assert fast.ok == exact.ok, specs
