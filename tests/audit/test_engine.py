"""End-to-end audit: every model passes its own contract, weaker models
fail stronger cells, and the report machinery behaves.

The full 25-model clean + crash-restart sweep lives in the CI audit
smoke job; here a representative subset keeps the tier-1 suite fast
while still covering every consistency row and persistency column.
"""

import time

import pytest

from repro.audit import (AUDIT_SCHEMA, audit_exit_code, audit_history,
                         format_audit_table)
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency, DdpModel, Persistency
from repro.faults import FaultInjector, load_fault_plan
from repro.obs.history import History, HistoryOpRecord, HistoryRecorder, \
    recovered_from_cluster
from repro.workload.ycsb import WORKLOADS

# Every consistency row and every persistency column appears at least
# once (the diagonal plus the strongest and weakest corners).
MODELS = [
    DdpModel(Consistency.LINEARIZABLE, Persistency.STRICT),
    DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS),
    DdpModel(Consistency.READ_ENFORCED, Persistency.READ_ENFORCED),
    DdpModel(Consistency.TRANSACTIONAL, Persistency.SCOPE),
    DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS),
    DdpModel(Consistency.EVENTUAL, Persistency.EVENTUAL),
]


def _audited_run(model, crash=False, duration=200_000.0):
    recorder = HistoryRecorder()
    faults = None
    if crash:
        plan = load_fault_plan({"events": [
            {"kind": "crash", "node": 1, "at_us": 80,
             "restart_after_us": 40}]})
        faults = FaultInjector(plan)
    cluster = Cluster(model,
                      config=ClusterConfig(servers=3, clients_per_server=4,
                                           seed=2021),
                      workload=WORKLOADS["A"].with_overrides(key_space=64),
                      faults=faults, history=recorder)
    cluster.run(duration, warmup_ns=0.0)
    recorder.recovered = recovered_from_cluster(cluster)
    recorder.meta = {"model": {"consistency": model.consistency.value,
                               "persistency": model.persistency.value}}
    return recorder.history()


class TestOwnContract:
    @pytest.mark.parametrize("model", MODELS, ids=str)
    def test_clean_run_passes_own_cell(self, model):
        report = audit_history(_audited_run(model))
        assert report["usable"]
        assert report["target"]["ok"], format_audit_table(report)
        assert audit_exit_code(report) == 0

    @pytest.mark.parametrize("model", MODELS, ids=str)
    def test_crash_restart_run_passes_own_cell(self, model):
        report = audit_history(_audited_run(model, crash=True))
        assert report["usable"]
        assert report["history"]["severed"] >= 0
        assert report["target"]["ok"], format_audit_table(report)


class TestCrossModel:
    def test_weak_run_fails_strong_cells(self):
        history = _audited_run(
            DdpModel(Consistency.EVENTUAL, Persistency.EVENTUAL))
        report = audit_history(history, consistency="linearizable",
                               persistency="strict")
        assert not report["target"]["ok"]
        assert audit_exit_code(report) == 1
        # The table still renders with the failing target marked.
        assert "*FAIL" in format_audit_table(report)

    def test_strong_run_passes_weaker_cells(self):
        history = _audited_run(
            DdpModel(Consistency.LINEARIZABLE, Persistency.STRICT))
        report = audit_history(history)
        assert report["totals"]["cells_failed"] == 0

    def test_sync_run_fails_strict_durability_column(self):
        history = _audited_run(
            DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS))
        report = audit_history(history, persistency="strict")
        cell = next(c for c in report["matrix"]
                    if c["consistency"] == "causal"
                    and c["persistency"] == "strict")
        assert not cell["ok"]
        assert "completed_writes_durable" in cell["failed_checks"]


class TestReportMechanics:
    def test_schema_and_totals(self):
        report = audit_history(_audited_run(MODELS[1]))
        assert report["schema"] == AUDIT_SCHEMA
        assert report["totals"]["cells"] == 25
        assert len(report["matrix"]) == 25
        assert report["totals"]["checker_wall_seconds"] >= 0.0

    def test_truncated_history_is_unusable(self):
        history = History(meta={}, ops=[HistoryOpRecord(
            index=0, client=1, session=0, node=0, op="write", key=5,
            value=1, invoke_us=0.0, respond_us=1.0, version=(1, 0))],
            recovered={}, dropped=3)
        report = audit_history(history, consistency="causal",
                               persistency="synchronous")
        assert not report["usable"]
        assert "truncated" in report["reason"]
        assert audit_exit_code(report) == 2
        assert "UNUSABLE" in format_audit_table(report)

    def test_empty_history_is_unusable(self):
        report = audit_history(History(meta={}, ops=[], recovered={}))
        assert not report["usable"]
        assert audit_exit_code(report) == 2

    def test_no_target_exit_code(self):
        history = _audited_run(MODELS[1])
        history.meta = {}
        report = audit_history(history)
        assert report["usable"]
        assert report["target"] is None
        assert audit_exit_code(report) == 2

    def test_cli_style_flat_meta_target(self):
        # The CLI run metadata carries the model label as a string and
        # the component values at the top level.
        history = _audited_run(MODELS[1])
        history.meta = {"model": "<Linearizable, Synchronous>",
                        "consistency": "linearizable",
                        "persistency": "synchronous"}
        report = audit_history(history)
        assert report["target"]["consistency"] == "linearizable"
        assert report["target"]["persistency"] == "synchronous"

    def test_missing_recovered_state_skips_durability(self):
        history = _audited_run(MODELS[1])
        history.recovered = {}
        report = audit_history(history)
        assert report["durability"]["skipped"]
        assert report["target"]["durability_skipped"]
        # Consistency verdicts still stand.
        assert report["target"]["ok"]


def test_audit_speed_on_large_history():
    """Acceptance floor: a multi-thousand-op history audits in well
    under ten seconds."""
    history = _audited_run(
        DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS),
        duration=600_000.0)
    assert len(history.ops) >= 5_000, len(history.ops)
    start = time.perf_counter()
    report = audit_history(history)
    elapsed = time.perf_counter() - start
    assert report["usable"]
    assert elapsed < 10.0, f"audit took {elapsed:.1f}s"
