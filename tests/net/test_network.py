"""Tests for the network fabric and NIC model."""

import pytest

from repro.net.network import Network, NetworkConfig
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


def make_net(sim, **kwargs):
    network = Network(sim, NetworkConfig(**kwargs))
    for node in range(3):
        network.attach(node)
    return network


class TestConfig:
    def test_defaults_match_table5(self):
        config = NetworkConfig()
        assert config.round_trip_ns == 1000.0
        assert config.bandwidth_bytes_per_ns == 25.0  # 200 Gb/s
        assert config.queue_pairs == 400

    def test_one_way(self):
        assert NetworkConfig(round_trip_ns=500).one_way_ns == 250.0


class TestSend:
    def test_delivery_latency(self, sim):
        network = make_net(sim)
        delivered = network.send(0, 1, "hello", size_bytes=100)
        sim.run()
        assert delivered.ok
        # serialization (100/25 = 4 ns) + one way (500 ns)
        assert sim.now == pytest.approx(504.0)

    def test_message_lands_in_inbox(self, sim):
        network = make_net(sim)
        received = []

        def receiver():
            message = yield network.nic(1).receive()
            received.append((sim.now, message))

        sim.process(receiver())
        network.send(0, 1, "payload", size_bytes=25)
        sim.run()
        assert received == [(pytest.approx(501.0), "payload")]

    def test_loopback_rejected(self, sim):
        network = make_net(sim)
        with pytest.raises(ValueError):
            network.send(0, 0, "x", 10)

    def test_byte_accounting(self, sim):
        network = make_net(sim)
        network.send(0, 1, "a", 100)
        network.send(0, 2, "b", 50)
        sim.run()
        assert network.total_messages == 2
        assert network.total_bytes == 150
        assert network.nic(0).bytes_sent == 150
        assert network.nic(1).bytes_received == 100

    def test_filter_drops(self, sim):
        network = make_net(sim)
        network.filter = lambda src, dst, msg: dst != 1
        dropped = network.send(0, 1, "x", 10)
        passed = network.send(0, 2, "y", 10)
        sim.run()
        assert not dropped.triggered
        assert passed.ok

    def test_broadcast_reaches_all(self, sim):
        network = make_net(sim)
        events = network.broadcast(0, [1, 2], "b", 64)
        sim.run()
        assert len(events) == 2
        assert network.nic(1).messages_received == 1
        assert network.nic(2).messages_received == 1

    def test_duplicate_attach_rejected(self, sim):
        network = make_net(sim)
        with pytest.raises(ValueError):
            network.attach(0)


class TestQueuePairs:
    def test_queue_pair_throttling(self, sim):
        """With a single queue pair, serializations pipeline."""
        network = Network(sim, NetworkConfig(queue_pairs=1,
                                             bandwidth_bytes_per_ns=1.0,
                                             round_trip_ns=0.0))
        network.attach(0)
        network.attach(1)
        arrivals = []

        def receiver():
            while True:
                yield network.nic(1).receive()
                arrivals.append(sim.now)
                if len(arrivals) == 2:
                    return

        sim.process(receiver())
        network.send(0, 1, "a", 100)   # 100 ns serialization
        network.send(0, 1, "b", 100)
        sim.run()
        assert arrivals == [pytest.approx(100.0), pytest.approx(200.0)]

    def test_parallel_queue_pairs(self, sim):
        network = Network(sim, NetworkConfig(queue_pairs=2,
                                             bandwidth_bytes_per_ns=1.0,
                                             round_trip_ns=0.0))
        network.attach(0)
        network.attach(1)
        arrivals = []

        def receiver():
            while True:
                yield network.nic(1).receive()
                arrivals.append(sim.now)
                if len(arrivals) == 2:
                    return

        sim.process(receiver())
        network.send(0, 1, "a", 100)
        network.send(0, 1, "b", 100)
        sim.run()
        assert arrivals == [pytest.approx(100.0), pytest.approx(100.0)]
