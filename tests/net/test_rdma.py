"""Tests for the RDMA verbs (including SNIA NVM extensions)."""

import pytest

from repro.memory.hierarchy import MemoryHierarchy
from repro.net.network import Network, NetworkConfig
from repro.net.rdma import RdmaFabric
from repro.sim.engine import Simulator
from repro.sim.rng import SeededStream


@pytest.fixture
def setup():
    sim = Simulator()
    network = Network(sim, NetworkConfig())
    fabric = RdmaFabric(sim, network)
    memories = {}
    for node in range(2):
        network.attach(node)
        memory = MemoryHierarchy(sim, SeededStream(node), name=f"n{node}")
        fabric.register(node, memory)
        memories[node] = memory
    return sim, fabric, memories


class TestRdmaVerbs:
    def test_write_updates_remote_volatile(self, setup):
        sim, fabric, memories = setup

        def proc():
            yield from fabric.endpoint(0).write(1, address=7, size_bytes=64)

        sim.process(proc())
        sim.run()
        assert memories[1].caches.llc.ddio_deposits == 1
        # serialization (64/25) + one-way (500) + LLC (19) + ack (500)
        assert sim.now == pytest.approx(64 / 25 + 500 + 19 + 500)

    def test_write_persist_reaches_remote_nvm(self, setup):
        sim, fabric, memories = setup

        def proc():
            yield from fabric.endpoint(0).write_persist(1, address=7)

        sim.process(proc())
        sim.run()
        assert memories[1].nvm.persists == 1
        assert sim.now == pytest.approx(64 / 25 + 500 + 400 + 500)

    def test_flush_persists_remote(self, setup):
        sim, fabric, memories = setup

        def proc():
            yield from fabric.endpoint(0).flush(1, address=7)

        sim.process(proc())
        sim.run()
        assert memories[1].nvm.persists == 1

    def test_verb_counters(self, setup):
        sim, fabric, memories = setup
        endpoint = fabric.endpoint(0)

        def proc():
            yield from endpoint.write(1, 1)
            yield from endpoint.write_persist(1, 2)
            yield from endpoint.flush(1, 2)

        sim.process(proc())
        sim.run()
        assert endpoint.writes == 1
        assert endpoint.persist_writes == 1
        assert endpoint.flushes == 1

    def test_duplicate_register_rejected(self, setup):
        sim, fabric, memories = setup
        with pytest.raises(ValueError):
            fabric.register(0, memories[0])
