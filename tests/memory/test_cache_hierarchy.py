"""Tests for the cache hierarchy and the per-node memory facade."""

import pytest

from repro.memory.cache import CacheHierarchy, CacheLevel, CacheTiming, Llc
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.engine import Simulator
from repro.sim.rng import SeededStream


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rng():
    return SeededStream(1)


class TestCacheLevel:
    def test_hit_ratio_bounds(self, sim, rng):
        with pytest.raises(ValueError):
            CacheLevel(sim, CacheTiming(64, 8, 2), 1.5, rng, "bad")

    def test_hit_ratio_converges(self, sim, rng):
        level = CacheLevel(sim, CacheTiming(64, 8, 2), 0.8, rng, "l1")
        for _ in range(5000):
            level.lookup()
        ratio = level.hits / (level.hits + level.misses)
        assert abs(ratio - 0.8) < 0.03

    def test_round_trip_ns_from_cycles(self):
        timing = CacheTiming(size_bytes=64, ways=8, round_trip_cycles=38)
        assert timing.round_trip_ns == pytest.approx(19.0)  # 2 GHz clock


class TestLlc:
    def test_ddio_region_is_ten_percent(self, sim, rng):
        llc = Llc(sim, cores=20, rng=rng)
        assert llc.ddio_capacity == int(llc.timing.size_bytes * 0.10)

    def test_ddio_deposit_and_spill(self, sim, rng):
        llc = Llc(sim, cores=1, rng=rng)
        chunk = llc.ddio_capacity
        assert llc.ddio_deposit(chunk)          # fills the region
        assert not llc.ddio_deposit(1)          # spills
        assert llc.ddio_spills == 1

    def test_ddio_consume_frees_space(self, sim, rng):
        llc = Llc(sim, cores=1, rng=rng)
        llc.ddio_deposit(llc.ddio_capacity)
        llc.ddio_consume(llc.ddio_capacity)
        assert llc.ddio_used == 0
        assert llc.ddio_deposit(64)

    def test_consume_never_negative(self, sim, rng):
        llc = Llc(sim, cores=1, rng=rng)
        llc.ddio_consume(1000)
        assert llc.ddio_used == 0


class TestCacheHierarchy:
    def test_access_latency_levels(self, sim, rng):
        hierarchy = CacheHierarchy(sim, rng, cores=20,
                                   l1_hit=1.0, l2_hit=0.0, llc_hit=0.0)
        latency, needs_dram = hierarchy.access_latency()
        assert latency == pytest.approx(1.0)
        assert not needs_dram

    def test_full_miss_requests_dram(self, sim, rng):
        hierarchy = CacheHierarchy(sim, rng, cores=20,
                                   l1_hit=0.0, l2_hit=0.0, llc_hit=0.0)
        latency, needs_dram = hierarchy.access_latency()
        assert latency == pytest.approx(19.0)
        assert needs_dram


class TestMemoryHierarchy:
    def test_persist_uses_nvm(self, sim, rng):
        memory = MemoryHierarchy(sim, rng)

        def proc():
            yield from memory.persist(5)

        sim.process(proc())
        sim.run()
        assert memory.nvm.persists == 1
        assert sim.now == pytest.approx(400.0)

    def test_volatile_update_via_ddio(self, sim, rng):
        memory = MemoryHierarchy(sim, rng)

        def proc():
            yield from memory.volatile_update(5, 64, via_ddio=True)

        sim.process(proc())
        sim.run()
        assert memory.caches.llc.ddio_deposits == 1
        assert sim.now == pytest.approx(19.0)

    def test_consume_ddio(self, sim, rng):
        memory = MemoryHierarchy(sim, rng)

        def proc():
            yield from memory.volatile_update(5, 64, via_ddio=True)

        sim.process(proc())
        sim.run()
        memory.consume_ddio(64)
        assert memory.caches.llc.ddio_used == 0

    def test_nvm_pressure_reflects_outstanding(self, sim, rng):
        memory = MemoryHierarchy(sim, rng)

        def proc():
            yield from memory.persist(1)

        sim.process(proc())
        sim.process(proc())
        sim.run(until=10)
        assert memory.nvm_pressure == 2

    def test_nvm_read_for_recovery(self, sim, rng):
        memory = MemoryHierarchy(sim, rng)

        def proc():
            yield from memory.nvm_read(9)

        sim.process(proc())
        sim.run()
        assert memory.nvm.reads == 1
