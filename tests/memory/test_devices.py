"""Tests for DRAM/NVM device models."""

import pytest

from repro.memory.devices import (
    DRAM_TIMING,
    NVM_TIMING,
    DramDevice,
    MemoryTiming,
    NvmDevice,
)
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestTimingDefaults:
    def test_table5_values(self):
        assert NVM_TIMING.read_ns == 140.0
        assert NVM_TIMING.write_ns == 400.0
        assert NVM_TIMING.channels == 2
        assert DRAM_TIMING.read_ns == 100.0
        assert DRAM_TIMING.write_ns == 100.0
        assert DRAM_TIMING.channels == 4

    def test_total_banks(self):
        assert NVM_TIMING.total_banks == NVM_TIMING.channels * NVM_TIMING.banks_per_channel


class TestAccessTiming:
    def test_single_read_latency(self, sim):
        nvm = NvmDevice(sim)

        def proc():
            yield from nvm.read(1)

        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(140.0)
        assert nvm.reads == 1

    def test_single_persist_latency(self, sim):
        nvm = NvmDevice(sim)

        def proc():
            yield from nvm.persist(1)

        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(400.0)
        assert nvm.persists == 1

    def test_same_bank_serializes(self, sim):
        nvm = NvmDevice(sim)
        done = []

        def proc():
            yield from nvm.persist(1)
            done.append(sim.now)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(400.0), pytest.approx(800.0)]

    def test_different_banks_parallel(self, sim):
        # Two banks in a tiny device; banks interleave by address % banks,
        # so adjacent addresses land on different banks.
        timing = MemoryTiming(read_ns=100, write_ns=100, channels=1,
                              banks_per_channel=2)
        device = DramDevice(sim, timing)
        addr_a = 0
        addr_b = 1
        done = []

        def proc(addr):
            yield from device.write(addr)
            done.append(sim.now)

        sim.process(proc(addr_a))
        sim.process(proc(addr_b))
        sim.run()
        assert done == [pytest.approx(100.0), pytest.approx(100.0)]

    def test_outstanding_counts_queue(self, sim):
        nvm = NvmDevice(sim)

        def proc():
            yield from nvm.persist(1)

        sim.process(proc())
        sim.process(proc())
        sim.process(proc())
        sim.run(until=100)
        # One in service, two queued on the same bank.
        assert nvm.outstanding == 3

    def test_busy_and_queued_accounting(self, sim):
        nvm = NvmDevice(sim)

        def proc():
            yield from nvm.persist(1)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert nvm.busy_ns == pytest.approx(800.0)
        assert nvm.queued_ns == pytest.approx(400.0)
        assert nvm.peak_queue_len == 1
