"""Property-based tests of causal delivery (happens-before safety).

A follower receiving UPD messages in *arbitrary* order must only apply
an update after every update in its causal history is visible (and,
under Synchronous persistency, durable).  Hypothesis generates random
dependency chains/DAGs and random delivery permutations; a replica
observer records the actual apply/persist order for checking.
"""

# repro: lint-ok[rng-discipline] hypothesis draws the seed; the local Random is derived deterministically from it
import random as stdlib_random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.messages import Message, MsgType
from repro.core.model import Consistency as C, DdpModel, Persistency as P


class OrderRecorder:
    """Tracer capturing apply/persist order at every node."""

    enabled = True

    def __init__(self):
        self.events = []  # (time, kind, node, key, version)

    def emit(self, time, category, node=None, **details):
        if category in ("apply", "persist"):
            self.events.append((time, category, node,
                                details["key"], details["version"]))

    def time_of(self, kind, node, key, version):
        for time, k, n, ky, v in self.events:
            if k == kind and n == node and ky == key and v == version:
                return time
        return None


def build_updates(num_writes, num_keys, extra_dep_seed):
    """A chain of writes (each depending on its predecessor) plus random
    extra dependencies on earlier writes."""
    rng = stdlib_random.Random(extra_dep_seed)
    updates = []
    versions = {}
    for i in range(num_writes):
        key = i % num_keys
        versions[key] = versions.get(key, 0) + 1
        version = (versions[key], 0)
        deps = []
        if updates:
            prev = updates[-1]
            deps.append((prev.key, prev.version))
            if len(updates) > 1 and rng.random() < 0.4:
                other = rng.choice(updates[:-1])
                if other.key != key:
                    deps.append((other.key, other.version))
        updates.append(Message(MsgType.UPD, src=0, op_id=100 + i, key=key,
                               version=version, value=f"w{i}",
                               cauhist=tuple(deps)))
    return updates


def deliver_and_check(persistency, num_writes, num_keys, perm_seed,
                      extra_dep_seed):
    recorder = OrderRecorder()
    cluster = Cluster(DdpModel(C.CAUSAL, persistency),
                      config=ClusterConfig(servers=3, clients_per_server=0,
                                           store_type=None),
                      tracer=recorder)
    cluster.start()
    follower = cluster.engines[1]
    updates = build_updates(num_writes, num_keys, extra_dep_seed)
    order = list(updates)
    stdlib_random.Random(perm_seed).shuffle(order)
    for message in order:
        cluster.sim.process(follower._handle_message(message))
        cluster.sim.run(until=cluster.sim.now + 200)
    cluster.sim.run(until=cluster.sim.now + 1_000_000)

    # Everything applied, nothing left buffered.
    assert follower.causal_buffer_len == 0
    for message in updates:
        applied_at = recorder.time_of("apply", 1, message.key,
                                      message.version)
        assert applied_at is not None, f"{message} never applied"
        for dep_key, dep_version in message.cauhist:
            dep_applied = recorder.time_of("apply", 1, dep_key, dep_version)
            assert dep_applied is not None
            assert dep_applied <= applied_at, (
                f"{message} applied before dependency "
                f"({dep_key}, {dep_version})")
            if persistency is P.SYNCHRONOUS:
                dep_persisted = recorder.time_of("persist", 1, dep_key,
                                                 dep_version)
                assert dep_persisted is not None
                assert dep_persisted <= applied_at, (
                    f"{message} applied before dependency persisted")


@given(num_writes=st.integers(min_value=1, max_value=12),
       num_keys=st.integers(min_value=1, max_value=4),
       perm_seed=st.integers(min_value=0, max_value=10_000),
       extra_dep_seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_causal_eventual_respects_happens_before(num_writes, num_keys,
                                                 perm_seed, extra_dep_seed):
    deliver_and_check(P.EVENTUAL, num_writes, num_keys, perm_seed,
                      extra_dep_seed)


@given(num_writes=st.integers(min_value=1, max_value=10),
       num_keys=st.integers(min_value=1, max_value=3),
       perm_seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_causal_synchronous_deps_persist_first(num_writes, num_keys,
                                               perm_seed):
    deliver_and_check(P.SYNCHRONOUS, num_writes, num_keys, perm_seed,
                      extra_dep_seed=0)


def test_reverse_delivery_of_long_chain():
    """Worst case: the whole chain arrives in exactly reverse order."""
    recorder = OrderRecorder()
    cluster = Cluster(DdpModel(C.CAUSAL, P.SYNCHRONOUS),
                      config=ClusterConfig(servers=3, clients_per_server=0,
                                           store_type=None),
                      tracer=recorder)
    cluster.start()
    follower = cluster.engines[1]
    updates = build_updates(num_writes=15, num_keys=3, extra_dep_seed=0)
    peak = 0
    for message in reversed(updates):
        cluster.sim.process(follower._handle_message(message))
        cluster.sim.run(until=cluster.sim.now + 200)
        peak = max(peak, follower.causal_buffer_len)
    cluster.sim.run(until=cluster.sim.now + 1_000_000)
    assert peak >= 10          # nearly the whole chain had to buffer
    assert follower.causal_buffer_len == 0
    last = updates[-1]
    assert follower.replicas.get(last.key).applied_value == last.value
