"""Tests that the behavioral policies encode the paper's protocols."""

from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.core.policies import (
    CONSISTENCY_POLICIES,
    PERSISTENCY_POLICIES,
    PersistMode,
    policy_for,
)


class TestConsistencyPolicies:
    def test_only_linearizable_blocks_writes_on_acks(self):
        for c, policy in CONSISTENCY_POLICIES.items():
            assert policy.write_waits_for_acks == (c is C.LINEARIZABLE)

    def test_invalidation_models(self):
        for c, policy in CONSISTENCY_POLICIES.items():
            assert policy.uses_inv == (c in (C.LINEARIZABLE, C.READ_ENFORCED,
                                             C.TRANSACTIONAL))

    def test_read_stall_models(self):
        """Linearizable and Read-Enforced reads stall until validation."""
        stalling = {c for c, p in CONSISTENCY_POLICIES.items()
                    if p.read_stalls_on_transient}
        assert stalling == {C.LINEARIZABLE, C.READ_ENFORCED}

    def test_flags_exclusive(self):
        causal = CONSISTENCY_POLICIES[C.CAUSAL]
        assert causal.causal and not causal.transactional
        txn = CONSISTENCY_POLICIES[C.TRANSACTIONAL]
        assert txn.transactional and not txn.causal
        eventual = CONSISTENCY_POLICIES[C.EVENTUAL]
        assert eventual.lazy_propagation


class TestPersistencyPolicies:
    def test_persist_modes(self):
        assert PERSISTENCY_POLICIES[P.STRICT].persist_mode is PersistMode.INLINE
        assert PERSISTENCY_POLICIES[P.SYNCHRONOUS].persist_mode is PersistMode.INLINE
        assert (PERSISTENCY_POLICIES[P.READ_ENFORCED].persist_mode
                is PersistMode.EAGER_BACKGROUND)
        assert PERSISTENCY_POLICIES[P.SCOPE].persist_mode is PersistMode.ON_SCOPE_END
        assert (PERSISTENCY_POLICIES[P.EVENTUAL].persist_mode
                is PersistMode.LAZY_BACKGROUND)

    def test_only_strict_blocks_writes_on_durability(self):
        for p, policy in PERSISTENCY_POLICIES.items():
            assert (policy.write_waits_for_persist_everywhere
                    == (p is P.STRICT))

    def test_only_read_enforced_stalls_reads_on_persist(self):
        for p, policy in PERSISTENCY_POLICIES.items():
            assert (policy.read_requires_applied_persisted
                    == (p is P.READ_ENFORCED))

    def test_dual_acks_only_read_enforced(self):
        for p, policy in PERSISTENCY_POLICIES.items():
            assert policy.dual_acks == (p is P.READ_ENFORCED)

    def test_sync_reads_return_persisted(self):
        assert PERSISTENCY_POLICIES[P.SYNCHRONOUS].read_returns_persisted
        assert not PERSISTENCY_POLICIES[P.EVENTUAL].read_returns_persisted

    def test_deps_require_persist(self):
        """Figure 2(f): under Synchronous persistency a causal update's
        dependencies must be durable before it applies."""
        assert PERSISTENCY_POLICIES[P.SYNCHRONOUS].deps_require_persist
        assert PERSISTENCY_POLICIES[P.STRICT].deps_require_persist
        assert not PERSISTENCY_POLICIES[P.EVENTUAL].deps_require_persist


def test_policy_for_returns_pair():
    cpolicy, ppolicy = policy_for(DdpModel(C.CAUSAL, P.SCOPE))
    assert cpolicy.model is C.CAUSAL
    assert ppolicy.model is P.SCOPE
