"""Tests for DDP model definitions (paper Table 2 semantics)."""

import pytest

from repro.core.model import Consistency, DdpModel, Persistency, all_ddp_models


class TestConsistency:
    def test_five_models(self):
        assert len(list(Consistency)) == 5

    def test_strictness_order_matches_table2(self):
        order = sorted(Consistency, key=lambda c: c.strictness_rank)
        assert order == [
            Consistency.LINEARIZABLE,
            Consistency.READ_ENFORCED,
            Consistency.TRANSACTIONAL,
            Consistency.CAUSAL,
            Consistency.EVENTUAL,
        ]

    def test_visibility_points_verbatim(self):
        assert ("when the update takes place"
                in Consistency.LINEARIZABLE.visibility_point)
        assert ("before the update is read"
                in Consistency.READ_ENFORCED.visibility_point)
        assert ("transaction end"
                in Consistency.TRANSACTIONAL.visibility_point)
        assert ("happens-before" in Consistency.CAUSAL.visibility_point)
        assert ("future" in Consistency.EVENTUAL.visibility_point)

    def test_invalidation_based_models(self):
        assert Consistency.LINEARIZABLE.uses_invalidation
        assert Consistency.READ_ENFORCED.uses_invalidation
        assert Consistency.TRANSACTIONAL.uses_invalidation
        assert not Consistency.CAUSAL.uses_invalidation
        assert not Consistency.EVENTUAL.uses_invalidation


class TestPersistency:
    def test_five_models(self):
        assert len(list(Persistency)) == 5

    def test_strictness_order_matches_table2(self):
        order = sorted(Persistency, key=lambda p: p.strictness_rank)
        assert order == [
            Persistency.STRICT,
            Persistency.SYNCHRONOUS,
            Persistency.READ_ENFORCED,
            Persistency.SCOPE,
            Persistency.EVENTUAL,
        ]

    def test_durability_points_verbatim(self):
        assert Persistency.STRICT.durability_point == \
            "when the update takes place"
        assert Persistency.SYNCHRONOUS.durability_point == \
            "at the visibility point of the update"
        assert Persistency.READ_ENFORCED.durability_point == \
            "before the update is read"
        assert Persistency.SCOPE.durability_point == \
            "before or at the scope end"
        assert Persistency.EVENTUAL.durability_point == \
            "sometime in the future"

    def test_inline_persistency_models(self):
        assert Persistency.STRICT.persists_inline
        assert Persistency.SYNCHRONOUS.persists_inline
        assert not Persistency.READ_ENFORCED.persists_inline
        assert not Persistency.SCOPE.persists_inline
        assert not Persistency.EVENTUAL.persists_inline


class TestDdpModel:
    def test_all_25_combinations(self):
        models = all_ddp_models()
        assert len(models) == 25
        assert len(set(models)) == 25

    def test_str_format(self):
        model = DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS)
        assert str(model) == "<Causal, Synchronous>"

    def test_baseline_detection(self):
        baseline = DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS)
        assert baseline.is_baseline
        other = DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS)
        assert not other.is_baseline

    def test_hashable_and_usable_as_key(self):
        d = {m: i for i, m in enumerate(all_ddp_models())}
        assert len(d) == 25

    def test_key_property(self):
        model = DdpModel(Consistency.EVENTUAL, Persistency.SCOPE)
        assert model.key == ("eventual", "scope")
