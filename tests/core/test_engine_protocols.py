"""Protocol-semantics tests for the DDP engine (paper Figures 2-5).

Each test builds a small cluster with no workload clients and drives
client operations by hand, then asserts the visibility/durability
contracts of the model: when writes complete, what reads stall on, what
is persisted when, and which messages flow.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.context import ClientContext
from repro.core.engine import ProtocolConfig
from repro.core.messages import Message, MsgType
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.core.replica import ZERO_VERSION
from repro.txn.manager import TxnConflict

RTT = 1000.0
NVM_WRITE = 400.0


def make_cluster(consistency, persistency, servers=3):
    model = DdpModel(consistency, persistency)
    config = ClusterConfig(servers=servers, clients_per_server=0,
                           store_type=None)
    cluster = Cluster(model, config=config)
    cluster.start()
    return cluster


def run_op(cluster, generator):
    """Drive one client operation to completion; return (value, latency)."""
    sim = cluster.sim
    start = sim.now
    process = sim.process(generator)
    value = sim.run_until_complete(process)
    return value, sim.now - start


def quiesce(cluster, horizon=200_000.0):
    """Let all background protocol activity finish."""
    cluster.sim.run(until=cluster.sim.now + horizon)


class TestLinearizableSynchronous:
    """Figure 2(a)/(b)."""

    def test_write_completes_after_all_replicas_durable(self):
        cluster = make_cluster(C.LINEARIZABLE, P.SYNCHRONOUS)
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        # At completion every node has applied AND persisted the update.
        for engine in cluster.engines:
            replica = engine.replicas.get(7)
            assert replica.applied_value == "v1"
            assert replica.persisted_value == "v1"

    def test_write_latency_includes_round_and_persist(self):
        cluster = make_cluster(C.LINEARIZABLE, P.SYNCHRONOUS)
        ctx = ClientContext(0, 0)
        _, latency = run_op(cluster,
                            cluster.engines[0].client_write(ctx, 7, "v1"))
        assert latency >= RTT + NVM_WRITE

    def test_follower_read_stalls_until_val(self):
        cluster = make_cluster(C.LINEARIZABLE, P.SYNCHRONOUS)
        sim = cluster.sim
        writer_ctx = ClientContext(0, 0)
        reader_ctx = ClientContext(1, 1)
        write = sim.process(
            cluster.engines[0].client_write(writer_ctx, 7, "v1"))
        # Give the INV time to reach the follower and make key 7 transient.
        sim.run(until=RTT / 2 + 300)
        read = sim.process(cluster.engines[1].client_read(reader_ctx, 7))
        value = sim.run_until_complete(read)
        assert write.triggered
        assert value == "v1"           # never the stale value
        assert cluster.metrics.read_stalls >= 1

    def test_read_without_conflict_is_fast(self):
        cluster = make_cluster(C.LINEARIZABLE, P.SYNCHRONOUS)
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        quiesce(cluster)
        _, latency = run_op(cluster, cluster.engines[1].client_read(ctx, 7))
        assert latency < RTT  # no network round needed for a quiet key

    def test_message_flow_counts(self):
        cluster = make_cluster(C.LINEARIZABLE, P.SYNCHRONOUS, servers=3)
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        quiesce(cluster)
        by_type = cluster.metrics.messages_by_type
        assert by_type[MsgType.INV.value] == 2   # one per follower
        assert by_type[MsgType.ACK.value] == 2
        assert by_type[MsgType.VAL.value] == 2
        assert MsgType.UPD.value not in by_type

    def test_concurrent_writers_serialize(self):
        """Two coordinators writing the same key: both complete, and all
        replicas converge on the same final version."""
        cluster = make_cluster(C.LINEARIZABLE, P.SYNCHRONOUS)
        sim = cluster.sim
        w0 = sim.process(cluster.engines[0].client_write(
            ClientContext(0, 0), 7, "from0"))
        w1 = sim.process(cluster.engines[1].client_write(
            ClientContext(1, 1), 7, "from1"))
        sim.run_until_complete(w0)
        sim.run_until_complete(w1)
        quiesce(cluster)
        finals = {e.replicas.get(7).applied_value for e in cluster.engines}
        assert len(finals) == 1
        versions = {e.replicas.get(7).applied_version
                    for e in cluster.engines}
        assert len(versions) == 1


class TestReadEnforcedConsistency:
    """Figure 2(c)/(d): writes return immediately; reads wait."""

    def test_write_returns_before_followers_apply(self):
        cluster = make_cluster(C.READ_ENFORCED, P.SYNCHRONOUS)
        ctx = ClientContext(0, 0)
        _, latency = run_op(cluster,
                            cluster.engines[0].client_write(ctx, 7, "v1"))
        assert latency < RTT  # did not wait for the round trip
        follower = cluster.engines[1].replicas.get(7)
        assert follower.applied_version == ZERO_VERSION
        quiesce(cluster)
        assert cluster.engines[1].replicas.get(7).applied_value == "v1"

    def test_read_waits_for_propagation_and_persist(self):
        cluster = make_cluster(C.READ_ENFORCED, P.SYNCHRONOUS)
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        value, latency = run_op(
            cluster, cluster.engines[0].client_read(ClientContext(1, 0), 7))
        assert value == "v1"
        assert latency >= RTT / 2  # stalled for the round to finish
        # By read completion, everything is durable everywhere.
        for engine in cluster.engines:
            assert engine.replicas.get(7).persisted_value == "v1"


class TestLinearizableReadEnforcedPersistency:
    """Figure 3(a)/(b): dual ACKs, reads wait for VAL_p."""

    def test_write_completes_before_cluster_durable(self):
        cluster = make_cluster(C.LINEARIZABLE, P.READ_ENFORCED)
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        # All volatile replicas updated (Linearizable requirement) ...
        for engine in cluster.engines:
            assert engine.replicas.get(7).applied_value == "v1"
        # ... but durability everywhere is NOT yet guaranteed.
        coordinator = cluster.engines[0].replicas.get(7)
        assert coordinator.cluster_persisted_version < coordinator.applied_version

    def test_read_stalls_until_cluster_persisted(self):
        cluster = make_cluster(C.LINEARIZABLE, P.READ_ENFORCED)
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        value, _ = run_op(cluster,
                          cluster.engines[1].client_read(ClientContext(1, 1), 7))
        assert value == "v1"
        replica = cluster.engines[1].replicas.get(7)
        assert replica.cluster_persisted_version >= replica.applied_version
        assert cluster.metrics.reads_blocked_by_unpersisted >= 1

    def test_dual_ack_message_flow(self):
        cluster = make_cluster(C.LINEARIZABLE, P.READ_ENFORCED, servers=3)
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        quiesce(cluster)
        by_type = cluster.metrics.messages_by_type
        assert by_type[MsgType.ACK_C.value] == 2
        assert by_type[MsgType.ACK_P.value] == 2
        assert by_type[MsgType.VAL_P.value] == 2


class TestCausal:
    """Figures 2(e)/(f) and 3(c)/(d)."""

    def test_write_is_local_latency(self):
        cluster = make_cluster(C.CAUSAL, P.SYNCHRONOUS)
        ctx = ClientContext(0, 0)
        _, latency = run_op(cluster,
                            cluster.engines[0].client_write(ctx, 7, "v1"))
        assert latency < RTT

    def test_upd_carries_causal_history(self):
        cluster = make_cluster(C.CAUSAL, P.SYNCHRONOUS)
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 1, "a"))
        run_op(cluster, cluster.engines[0].client_write(ctx, 2, "b"))
        quiesce(cluster)
        by_type = cluster.metrics.messages_by_type
        assert by_type[MsgType.UPD.value] == 4  # 2 writes x 2 followers
        assert MsgType.INV.value not in by_type

    def test_out_of_order_update_buffers_until_dependency(self):
        """Figure 2(f): d2 (depending on d1) arrives first and buffers."""
        cluster = make_cluster(C.CAUSAL, P.SYNCHRONOUS)
        sim = cluster.sim
        follower = cluster.engines[1]
        d1 = Message(MsgType.UPD, src=0, op_id=101, key=1, version=(1, 0),
                     value="d1")
        d2 = Message(MsgType.UPD, src=0, op_id=102, key=2, version=(1, 0),
                     value="d2", cauhist=((1, (1, 0)),))
        # Deliver d2 first.
        sim.process(follower._handle_message(d2))
        sim.run(until=sim.now + 5_000)
        assert follower.replicas.get(2).applied_version == ZERO_VERSION
        assert follower.causal_buffer_len == 1
        # Now deliver d1: both apply, in causal order, both persisted.
        sim.process(follower._handle_message(d1))
        sim.run(until=sim.now + 20_000)
        assert follower.replicas.get(1).persisted_value == "d1"
        assert follower.replicas.get(2).persisted_value == "d2"
        assert follower.causal_buffer_len == 0

    def test_sync_read_returns_persisted_version(self):
        """<Causal, Synchronous>: a read returns the latest *persisted*
        version so that it is recoverable (Figure 2(f))."""
        cluster = make_cluster(C.CAUSAL, P.SYNCHRONOUS)
        engine = cluster.engines[0]
        replica = engine.replicas.get(7)
        replica.apply((5, 0), "applied-only")
        replica.mark_persisted((4, 0), "persisted")
        value, _ = run_op(cluster, engine.client_read(ClientContext(0, 0), 7))
        assert value == "persisted"

    def test_read_enforced_read_waits_for_local_persist(self):
        """<Causal, Read-Enforced> (Figure 3(c)): reads stall until the
        latest visible version is durable."""
        cluster = make_cluster(C.CAUSAL, P.READ_ENFORCED)
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run_op(cluster, engine.client_write(ctx, 7, "v1"))
        value, _ = run_op(cluster, engine.client_read(ClientContext(1, 0), 7))
        assert value == "v1"
        replica = engine.replicas.get(7)
        assert replica.persisted_version >= replica.applied_version

    def test_client_reads_own_write_in_causal_history(self):
        """A client that reads x then writes y produces y's cauhist
        containing x."""
        cluster = make_cluster(C.CAUSAL, P.EVENTUAL)
        ctx_a = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx_a, 1, "x"))
        quiesce(cluster)
        ctx_b = ClientContext(1, 1)
        run_op(cluster, cluster.engines[1].client_read(ctx_b, 1))
        assert ctx_b.dependency_count == 1


class TestEventualConsistency:
    def test_propagation_is_lazy(self):
        cluster = make_cluster(C.EVENTUAL, P.EVENTUAL)
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        delay = cluster.engines[0].config.lazy_propagation_delay_ns
        cluster.sim.run(until=cluster.sim.now + delay / 2)
        assert cluster.engines[1].replicas.get(7).applied_version == ZERO_VERSION
        quiesce(cluster)
        assert cluster.engines[1].replicas.get(7).applied_value == "v1"

    def test_eventual_persist_is_lazy(self):
        cluster = make_cluster(C.EVENTUAL, P.EVENTUAL)
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        replica = cluster.engines[0].replicas.get(7)
        assert replica.persisted_version == ZERO_VERSION
        quiesce(cluster)
        assert replica.persisted_value == "v1"
        for engine in cluster.engines:
            assert engine.replicas.get(7).persisted_value == "v1"


class TestStrictPersistency:
    def test_write_waits_for_durability_everywhere(self):
        for consistency in (C.LINEARIZABLE, C.CAUSAL, C.EVENTUAL):
            cluster = make_cluster(consistency, P.STRICT)
            ctx = ClientContext(0, 0)
            _, latency = run_op(cluster,
                                cluster.engines[0].client_write(ctx, 7, "v"))
            assert latency >= RTT, consistency
            for engine in cluster.engines:
                assert engine.replicas.get(7).persisted_value == "v", consistency


class TestTransactional:
    """Figure 4."""

    def _cluster(self, persistency=P.SYNCHRONOUS):
        return make_cluster(C.TRANSACTIONAL, persistency)

    def test_commit_flow_applies_and_persists_everywhere(self):
        cluster = self._cluster()
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run_op(cluster, engine.client_begin_txn(ctx))
        run_op(cluster, engine.client_write(ctx, 1, "a"))
        run_op(cluster, engine.client_write(ctx, 2, "b"))
        run_op(cluster, engine.client_end_txn(ctx))
        for e in cluster.engines:
            assert e.replicas.get(1).persisted_value == "a"
            assert e.replicas.get(2).persisted_value == "b"
        assert cluster.txn_table.committed == 1

    def test_writes_inside_txn_are_fast(self):
        cluster = self._cluster()
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run_op(cluster, engine.client_begin_txn(ctx))
        _, latency = run_op(cluster, engine.client_write(ctx, 1, "a"))
        assert latency < RTT
        run_op(cluster, engine.client_end_txn(ctx))

    def test_reads_inside_txn_do_not_stall(self):
        cluster = self._cluster()
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run_op(cluster, engine.client_begin_txn(ctx))
        run_op(cluster, engine.client_write(ctx, 1, "a"))
        value, latency = run_op(cluster, engine.client_read(ctx, 1))
        assert value == "a"
        assert latency < RTT
        run_op(cluster, engine.client_end_txn(ctx))

    def test_conflicting_txn_is_squashed(self):
        cluster = self._cluster()
        sim = cluster.sim
        e0, e1 = cluster.engines[0], cluster.engines[1]
        ctx_old = ClientContext(0, 0)
        ctx_young = ClientContext(1, 1)
        run_op(cluster, e0.client_begin_txn(ctx_old))
        run_op(cluster, e1.client_begin_txn(ctx_young))
        run_op(cluster, e0.client_write(ctx_old, 5, "old"))
        conflict = sim.process(e1.client_write(ctx_young, 5, "young"))
        with pytest.raises(TxnConflict):
            sim.run_until_complete(conflict)
        run_op(cluster, e1.client_abort_txn(ctx_young))
        run_op(cluster, e0.client_end_txn(ctx_old))
        assert cluster.txn_table.committed == 1
        assert cluster.txn_table.aborted == 1
        quiesce(cluster)
        for e in cluster.engines:
            assert e.replicas.get(5).applied_value == "old"

    def test_endx_message_flow(self):
        cluster = self._cluster()
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run_op(cluster, engine.client_begin_txn(ctx))
        run_op(cluster, engine.client_write(ctx, 1, "a"))
        run_op(cluster, engine.client_end_txn(ctx))
        quiesce(cluster)
        by_type = cluster.metrics.messages_by_type
        assert by_type[MsgType.INITX.value] == 2
        assert by_type[MsgType.ENDX.value] == 2
        assert by_type[MsgType.VAL.value] == 2

    def test_abort_leaves_no_transient_state(self):
        cluster = self._cluster()
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run_op(cluster, engine.client_begin_txn(ctx))
        run_op(cluster, engine.client_write(ctx, 1, "a"))
        cluster.txn_table.abort(ctx.txn)
        run_op(cluster, engine.client_abort_txn(ctx))
        quiesce(cluster)
        for e in cluster.engines:
            assert not e.replicas.get(1).transient

    def test_txn_eventual_persists_lazily(self):
        cluster = self._cluster(P.EVENTUAL)
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run_op(cluster, engine.client_begin_txn(ctx))
        run_op(cluster, engine.client_write(ctx, 1, "a"))
        run_op(cluster, engine.client_end_txn(ctx))
        quiesce(cluster)
        for e in cluster.engines:
            assert e.replicas.get(1).persisted_value == "a"


class TestScope:
    """Figure 5."""

    def test_writes_do_not_persist_until_scope_end(self):
        cluster = make_cluster(C.LINEARIZABLE, P.SCOPE)
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run_op(cluster, engine.client_write(ctx, 1, "a"))
        quiesce(cluster)
        for e in cluster.engines:
            assert e.replicas.get(1).applied_value == "a"
            assert e.replicas.get(1).persisted_version == ZERO_VERSION

    def test_persist_call_makes_scope_durable_everywhere(self):
        cluster = make_cluster(C.LINEARIZABLE, P.SCOPE)
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run_op(cluster, engine.client_write(ctx, 1, "a"))
        run_op(cluster, engine.client_write(ctx, 2, "b"))
        scope_id = ctx.current_scope_id
        run_op(cluster, engine.client_persist_scope(ctx))
        for node_id, e in enumerate(cluster.engines):
            assert e.replicas.get(1).persisted_value == "a"
            assert e.replicas.get(2).persisted_value == "b"
            assert cluster.nvm_log.is_scope_committed(node_id, scope_id)

    def test_empty_scope_persist_is_noop(self):
        cluster = make_cluster(C.LINEARIZABLE, P.SCOPE)
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run_op(cluster, engine.client_persist_scope(ctx))
        assert cluster.metrics.persists == 0

    def test_scope_messages_are_tagged(self):
        cluster = make_cluster(C.LINEARIZABLE, P.SCOPE)
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run_op(cluster, engine.client_write(ctx, 1, "a"))
        run_op(cluster, engine.client_persist_scope(ctx))
        quiesce(cluster)
        by_type = cluster.metrics.messages_by_type
        assert by_type[MsgType.PERSIST.value] == 2
        assert by_type[MsgType.ACK_P.value] == 2
        assert by_type[MsgType.VAL_P.value] == 2

    def test_causal_scope_persist(self):
        cluster = make_cluster(C.CAUSAL, P.SCOPE)
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run_op(cluster, engine.client_write(ctx, 1, "a"))
        run_op(cluster, engine.client_persist_scope(ctx))
        for e in cluster.engines:
            assert e.replicas.get(1).persisted_value == "a"

    def test_scopes_unsupported_elsewhere(self):
        cluster = make_cluster(C.LINEARIZABLE, P.SYNCHRONOUS)
        ctx = ClientContext(0, 0)
        with pytest.raises(RuntimeError):
            cluster.sim.run_until_complete(cluster.sim.process(
                cluster.engines[0].client_persist_scope(ctx)))


class TestTransactionsUnsupportedOutsideTxnModel:
    def test_begin_txn_rejected(self):
        cluster = make_cluster(C.CAUSAL, P.SYNCHRONOUS)
        ctx = ClientContext(0, 0)
        with pytest.raises(RuntimeError):
            cluster.sim.run_until_complete(cluster.sim.process(
                cluster.engines[0].client_begin_txn(ctx)))
